"""repro — the MCC fault information model for minimal routing in meshes.

Reproduction of Jiang, Wu & Wang, "A New Fault Information Model for
Fault-Tolerant Adaptive and Minimal Routing in 3-D Meshes" (ICPP 2005).

Quickstart::

    import numpy as np
    from repro import Mesh3D, label_grid, extract_mccs, AdaptiveRouter

    faults = np.zeros((10, 10, 10), dtype=bool)
    faults[5, 5, 5] = True
    router = AdaptiveRouter(faults, mode="mcc")
    result = router.route((0, 0, 0), (9, 9, 9))
    assert result.delivered and result.is_minimal()

Layers:

* ``repro.mesh`` — topology, direction classes, regions, fault sets;
* ``repro.core`` — labelling, MCC extraction, shadows, walls,
  existence conditions, detection (the paper's model, centralized);
* ``repro.routing`` — the oracle and the adaptive routing engine;
* ``repro.baselines`` — rectangular faulty blocks, e-cube, greedy;
* ``repro.simkit`` / ``repro.distributed`` — the message-passing
  realization of the whole pipeline on a discrete-event network;
* ``repro.online`` — dynamic-fault serving: incremental labelling and
  epoch-versioned routing while faults arrive and heal;
* ``repro.service`` — the one construction facade over every routing
  service flavour (:func:`make_service`);
* ``repro.serve`` — the always-on asyncio front-end: batched concurrent
  ``await route()`` over the online model, fault-event preemption, SLO
  metrics, and the replayable load-generator harness;
* ``repro.parallel`` — multi-pattern sharding of experiment sweeps
  across processes (``SweepSpec`` / ``run_sweep``);
* ``repro.experiments`` — the evaluation (tables T1–T7s, figures).
"""

from repro.mesh import Box, Direction, FaultSet, Mesh, Mesh2D, Mesh3D, Orientation
from repro.core.labelling import (
    CANT_REACH,
    FAULTY,
    SAFE,
    USELESS,
    LabelledGrid,
    label_grid,
    label_mesh,
    unsafe_mask,
)
from repro.core.components import MCC, MCCSet, extract_mccs
from repro.core.shadows import shadow_masks
from repro.core.walls import Wall, build_walls
from repro.core.conditions import (
    ConditionEvaluator,
    minimal_path_exists_lemma1,
    minimal_path_exists_theorem,
)
from repro.core.detection import detect_canonical, detection_feasible
from repro.routing.oracle import (
    forward_reachable,
    minimal_path_exists,
    reverse_reachable,
)
from repro.routing.engine import AdaptiveRouter, RouteResult, route_adaptive
from repro.routing.batch import RoutingService, route_batch
from repro.routing.policies import (
    DiagonalPolicy,
    FixedOrderPolicy,
    RandomPolicy,
    make_policy,
)
from repro.baselines import ecube_path, ecube_succeeds, greedy_route, rfb_blocks, rfb_unsafe
from repro.simkit import MeshNetwork, Simulator
from repro.distributed import DistributedMCCPipeline
from repro.online import DynamicFaultModel, FaultEvent, OnlineRoutingService, Ticket
from repro.service import make_service
from repro.serve import AsyncRoutingService, VirtualClock, WallClock
from repro.parallel import SweepSpec, run_sweep

__version__ = "1.1.0"

__all__ = [
    "Box",
    "Direction",
    "FaultSet",
    "Mesh",
    "Mesh2D",
    "Mesh3D",
    "Orientation",
    "SAFE",
    "FAULTY",
    "USELESS",
    "CANT_REACH",
    "LabelledGrid",
    "label_grid",
    "label_mesh",
    "unsafe_mask",
    "MCC",
    "MCCSet",
    "extract_mccs",
    "shadow_masks",
    "Wall",
    "build_walls",
    "ConditionEvaluator",
    "minimal_path_exists_lemma1",
    "minimal_path_exists_theorem",
    "detect_canonical",
    "detection_feasible",
    "forward_reachable",
    "reverse_reachable",
    "minimal_path_exists",
    "AdaptiveRouter",
    "RouteResult",
    "route_adaptive",
    "RoutingService",
    "route_batch",
    "FixedOrderPolicy",
    "RandomPolicy",
    "DiagonalPolicy",
    "make_policy",
    "ecube_path",
    "ecube_succeeds",
    "greedy_route",
    "rfb_blocks",
    "rfb_unsafe",
    "MeshNetwork",
    "Simulator",
    "DistributedMCCPipeline",
    "DynamicFaultModel",
    "FaultEvent",
    "OnlineRoutingService",
    "Ticket",
    "make_service",
    "AsyncRoutingService",
    "VirtualClock",
    "WallClock",
    "SweepSpec",
    "run_sweep",
    "__version__",
]
