"""Epoch-counted batched routing over a mutating fault set.

:class:`OnlineRoutingService` is the online counterpart of
:class:`repro.routing.batch.RoutingService`: same batch decomposition,
same engine, but the per-class models alias the arrays of a
:class:`DynamicFaultModel`, so a fault event updates routing state in
place instead of forcing a cold rebuild.  The service then does three
things the static stack cannot:

* **scoped invalidation** — a cached per-destination reach mask floods
  through the open cells of ``[0, dest]`` only, so an event whose
  dirty cells all sit outside that cone cannot have changed it.  The
  event's :class:`~repro.online.dynamic_model.ClassDirt` carries the
  component-wise minimum corner of the changed cells per class, and
  only cached destinations ``dest >= lo`` are dropped (the cone test
  is conservative: it may drop a fresh mask, never keep a stale one);
* **epoch stamping** — every :class:`RouteResult` carries the
  fault-model epoch its verdict was computed against, so consumers of
  asynchronous results can tell pre- from post-event answers;
* **event-bounded batching** — queries arriving between fault events
  queue via :meth:`submit` and route through the existing
  ``route_batch`` machinery; ``inject``/``repair`` flush the queue
  first, so a queued query is always answered at the epoch it was
  submitted under.

The service also carries the paper's baseline fault-information model:
``mode="rfb"`` keeps a :class:`~repro.baselines.rfb.DynamicRFBState`
warm across events (block-local recompute, one shared block set for
all direction classes), so T6 can compare MCC and RFB under identical
churn histories.

Parity with a cold :class:`RoutingService` built on the current mask is
property-tested in ``tests/test_online_dynamic.py`` — element-wise
identical results after arbitrary inject/repair sequences, which is
exactly the statement that no stale cache entry survives invalidation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.sanitize import maybe_sanitize_online_service
from repro.baselines.rfb import DynamicRFBState
from repro.core.labelling import FAULTY, SAFE, LabelledGrid, label_grid
from repro.mesh.coords import Coord
from repro.mesh.orientation import Orientation
from repro.online.dynamic_model import (
    DEFAULT_FULL_RECOMPUTE_FRACTION,
    DynamicFaultModel,
    FaultEvent,
)
from repro.routing.batch import RoutingService
from repro.routing.engine import (
    DEFAULT_REACH_CACHE_SIZE,
    AdaptiveRouter,
    RouteResult,
    _ClassModel,
)
from repro.routing.policies import Policy


class Ticket(int):
    """A submitted query's handle: the ticket id plus submission epoch.

    Subclasses ``int`` so every pre-existing consumer — dict lookups
    keyed by the plain integer ticket, arithmetic on ids, JSON dumps —
    keeps working unchanged while new callers read ``ticket.epoch``
    instead of re-deriving the service epoch at submission time.
    """

    epoch: int

    def __new__(cls, ticket_id: int, epoch: int) -> "Ticket":
        self = super().__new__(cls, ticket_id)
        self.epoch = int(epoch)
        return self

    @property
    def id(self) -> int:
        return int(self)

    def __repr__(self) -> str:
        return f"Ticket(id={int(self)}, epoch={self.epoch})"


class _OnlineRouter(AdaptiveRouter):
    """An :class:`AdaptiveRouter` whose models track a dynamic fault set.

    In "mcc" mode each class model *aliases* the dynamic class's arrays
    (the blocked mask of the engine is the + closure mask, its
    complement the flood-open mask, the labelled grid the composed
    status), so every fault event updates routing state with no
    rebuild; only the per-destination caches need scoped eviction.  In
    "rfb" mode the class models alias orientation views of one shared
    :class:`~repro.baselines.rfb.DynamicRFBState` — the baseline's
    block set is direction-independent, so a single block-local
    recompute per event serves all 2^n classes.  In "oracle"/"blind"
    modes the labelled grids are live views of the fault mask itself.
    """

    def __init__(
        self,
        model: DynamicFaultModel,
        mode: str = "mcc",
        policy: Policy | None = None,
        max_hops: int | None = None,
        reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
    ):
        # The asarray in the base constructor keeps the model's own
        # array (no copy for a bool ndarray): router reads stay live.
        super().__init__(
            model.fault_mask,
            mode=mode,
            policy=policy,
            max_hops=max_hops,
            reach_cache_size=reach_cache_size,
            label_cache=False,  # cached labellings are immutable; ours mutate
        )
        assert self.fault_mask is model.fault_mask
        self.model = model
        # Live int8 view source for oracle/blind labelled grids.
        self._status_mesh = model.fault_mask.astype(np.int8) * FAULTY
        # Incrementally maintained RFB block state (rfb mode only).
        self._rfb = DynamicRFBState(model.fault_mask) if mode == "rfb" else None
        #: Reach/forbidden masks dropped by scoped invalidation, and
        #: entries that survived an event (cache-efficiency telemetry).
        self.evicted = 0
        self.retained = 0

    def _model_for(self, orientation: Orientation) -> _ClassModel:
        key = orientation.signs
        if key not in self._models:
            if self.mode == "mcc":
                cls = self.model.class_for(orientation)
                # Alias the dynamic arrays: events mutate them in place
                # and the engine sees the new model immediately.
                m = _ClassModel(
                    cls.labelled,
                    [],
                    label_grid,
                    self.reach_cache_size,
                    blocked=cls.useless_blocked,
                    open_mask=cls.open,
                    unsafe=cls.unsafe,
                )
            elif self.mode == "rfb":
                # Orientation views of the one shared block state: the
                # block-local recompute mutates the mesh-frame arrays
                # and every class model sees it immediately.
                status = orientation.to_canonical(self._rfb.status)
                labelled = LabelledGrid(status=status, orientation=orientation)
                m = _ClassModel(
                    labelled,
                    [],
                    label_grid,
                    self.reach_cache_size,
                    blocked=orientation.to_canonical(self._rfb.unsafe),
                    open_mask=orientation.to_canonical(self._rfb.open),
                    unsafe=orientation.to_canonical(self._rfb.unsafe),
                )
            else:
                status = orientation.to_canonical(self._status_mesh)
                labelled = LabelledGrid(status=status, orientation=orientation)
                m = _ClassModel(labelled, [], label_grid, self.reach_cache_size)
            self._models[key] = m
        return self._models[key]

    # -- event application -------------------------------------------------

    def _evict_cone(self, cache, keys, lo: Coord | None) -> None:
        """Drop cached destinations inside the dirty cone ``dest >= lo``."""
        for key in keys:
            dest = key[1] if isinstance(key[0], tuple) else key
            if lo is not None and all(d >= a for d, a in zip(dest, lo, strict=True)):
                cache.pop(key)
                self.evicted += 1
            else:
                self.retained += 1

    def apply_event(self, event: FaultEvent) -> None:
        """Invalidate exactly the cached state the event can have touched."""
        for c in event.cells:
            self._status_mesh[c] = FAULTY if self.fault_mask[c] else SAFE
        if self.mode == "rfb":
            dirty, swept, full = self._rfb.apply(event.cells, event.kind)
            event.dirty_cells += swept
            if full:
                event.full_recomputes += 1
            if dirty is None and not full:
                # Block set unchanged: no cached mask can be stale.
                for m in self._models.values():
                    self.retained += len(m._reach)
                return
            for signs, m in self._models.items():
                if full:
                    self.evicted += len(m._reach)
                    m._reach.clear()
                    continue
                orientation = Orientation(signs, self.fault_mask.shape)
                mapped = [
                    orientation.map_coord(dirty.lo),
                    orientation.map_coord(dirty.hi),
                ]
                lo = tuple(int(v) for v in np.min(mapped, axis=0))
                self._evict_cone(m._reach, m._reach.keys(), lo)
            return
        if self.mode == "mcc":
            for signs, m in self._models.items():
                dirt = event.classes.get(signs)
                if dirt is None:
                    # A model without a dynamic class cannot happen via
                    # _model_for; drop everything if it somehow does.
                    self.evicted += len(m._reach)
                    m._reach.clear()
                    continue
                lo = ((0,) * len(self.fault_mask.shape)
                      if dirt.full else dirt.open_lo)
                self._evict_cone(m._reach, m._reach.keys(), lo)
        elif self.mode == "oracle":
            # Forbidden sets depend on the fault mask alone; the dirty
            # cone per class starts at the lowest event cell.
            los: dict[tuple[int, ...], Coord] = {}
            for key in self._blocked_cache.keys():
                signs = key[0]
                if signs not in los:
                    orientation = Orientation(signs, self.fault_mask.shape)
                    mapped = [orientation.map_coord(c) for c in event.cells]
                    los[signs] = tuple(
                        int(v) for v in np.min(mapped, axis=0)
                    )
                self._evict_cone(
                    self._blocked_cache, [key], los[signs]
                )


class OnlineRoutingService:
    """Serve routing queries while the fault set mutates underneath.

    The constructor takes the *initial* fault mask; thereafter the fault
    set changes only through :meth:`inject` / :meth:`repair`, each of
    which advances the epoch, incrementally relabels
    (:class:`DynamicFaultModel`), and scopes cache invalidation to the
    event's dirty region.  All route entry points stamp their results
    with the epoch they were computed at.
    """

    def __init__(
        self,
        fault_mask: np.ndarray,
        mode: str = "mcc",
        policy: Policy | None = None,
        max_hops: int | None = None,
        reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
        replay_policy: bool = False,
        full_recompute_fraction: float = DEFAULT_FULL_RECOMPUTE_FRACTION,
    ):
        self.model = DynamicFaultModel(
            fault_mask, full_recompute_fraction=full_recompute_fraction
        )
        self.router = _OnlineRouter(
            self.model,
            mode=mode,
            policy=policy,
            max_hops=max_hops,
            reach_cache_size=reach_cache_size,
        )
        self.service = RoutingService(
            None, replay_policy=replay_policy, router=self.router
        )
        self._pending: list[tuple[int, tuple[Coord, Coord]]] = []
        self._done: dict[int, RouteResult] = {}
        self._tickets = 0
        maybe_sanitize_online_service(self)

    # -- state -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.model.epoch

    @property
    def mode(self) -> str:
        return self.router.mode

    @property
    def fault_mask(self) -> np.ndarray:
        """The live fault mask (mutate only via inject/repair)."""
        return self.model.fault_mask

    def labelled(self, orientation: Orientation | None = None) -> LabelledGrid:
        """The live labelled grid for a direction class (mcc mode)."""
        return self.service.labelled(orientation)

    # -- routing -----------------------------------------------------------

    def _stamp(self, results: list[RouteResult]) -> list[RouteResult]:
        epoch = self.model.epoch
        for r in results:
            r.epoch = epoch
        return results

    def route(self, source: Sequence[int], dest: Sequence[int]) -> RouteResult:
        """Route one pair immediately at the current epoch."""
        return self._stamp([self.service.route(source, dest)])[0]

    def route_batch(
        self, pairs: Iterable[Sequence[Sequence[int]]]
    ) -> list[RouteResult]:
        """Route a batch immediately at the current epoch."""
        return self._stamp(self.service.route_batch(pairs))

    def feasible_batch(
        self, pairs: Iterable[Sequence[Sequence[int]]]
    ) -> np.ndarray:
        """Vectorized feasibility verdicts at the current epoch."""
        return self.service.feasible_batch(pairs)

    # -- event-bounded query batching --------------------------------------

    def submit(self, source: Sequence[int], dest: Sequence[int]) -> Ticket:
        """Queue one query; it routes at the next flush or fault event.

        Returns a :class:`Ticket` — an ``int``-compatible handle that
        also carries the submission epoch, so callers no longer
        re-derive the epoch a queued query was issued under (plain-int
        lookups into :meth:`flush`/:meth:`take_completed` results keep
        working).  Queued queries are guaranteed to be answered at the
        epoch they were submitted under: fault events flush the queue
        before mutating the model.
        """
        ticket = Ticket(self._tickets, self.model.epoch)
        self._tickets += 1
        source = tuple(int(c) for c in source)
        dest = tuple(int(c) for c in dest)
        self._pending.append((ticket, (source, dest)))
        return ticket

    def flush(self) -> dict[int, RouteResult]:
        """Route every queued query in one batch; results by ticket."""
        if not self._pending:
            return {}
        tickets = [t for t, _ in self._pending]
        pairs = [p for _, p in self._pending]
        self._pending = []
        results = self.route_batch(pairs)
        flushed = dict(zip(tickets, results, strict=True))
        self._done.update(flushed)
        return flushed

    def take_completed(self) -> dict[int, RouteResult]:
        """Drain every completed queued query accumulated so far."""
        done, self._done = self._done, {}
        return done

    # -- fault events ------------------------------------------------------

    def inject(self, cells: Iterable[Sequence[int]]) -> FaultEvent:
        """Flush queued queries, then mark ``cells`` faulty (new epoch)."""
        self.flush()
        event = self.model.inject(cells)
        self.router.apply_event(event)
        return event

    def repair(self, cells: Iterable[Sequence[int]]) -> FaultEvent:
        """Flush queued queries, then mark ``cells`` healthy (new epoch)."""
        self.flush()
        event = self.model.repair(cells)
        self.router.apply_event(event)
        return event
