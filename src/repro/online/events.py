"""Deterministic fault-event streams shared by every churn consumer.

The T6 churn workload alternates injections and repairs of ``churn``
cells per epoch.  :class:`FaultEventStream` owns exactly that schedule:
given the *current* fault mask and the epoch index it draws the next
event from its private generator, so the centralized
:class:`~repro.online.OnlineRoutingService` and the churn-aware DES
(:meth:`repro.distributed.pipeline.DistributedMCCPipeline.apply_event`)
can be driven by the **same** event history — submit traffic, draw one
event, apply it to every backend, compare.  The draw depends only on
the generator state and the mask content, so two backends whose masks
evolve identically (they do: they apply the same events) see identical
streams, and a sharded sweep replaying a pattern's private seed
reproduces its whole churn history bit-for-bit.

Epoch alignment: event ``k`` (0-based draw index) creates epoch ``k+1``
in both the online service (``DynamicFaultModel.epoch``) and the DES
pipeline (``DistributedMCCPipeline.epoch``) — both count applied
events from 0 at build.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.coords import Coord


@dataclass(frozen=True)
class StreamEvent:
    """One drawn churn event (mesh-frame cells)."""

    kind: str  # "inject" | "repair"
    cells: tuple[Coord, ...]


class FaultEventStream:
    """Alternating inject/repair schedule over a live fault set.

    Even epoch indices inject ``churn`` healthy cells, odd indices
    repair ``churn`` faulty cells (fewer when the pool runs short, no
    event when it is empty) — the oscillating regime that keeps the
    fault population around its seed value.
    """

    def __init__(self, churn: int, rng: np.random.Generator):
        if churn < 1:
            raise ValueError(f"churn must be >= 1, got {churn}")
        self.churn = int(churn)
        self.rng = rng

    def next_event(
        self, fault_mask: np.ndarray, epoch_index: int
    ) -> StreamEvent | None:
        """Draw the event for ``epoch_index`` against the current mask."""
        current = np.asarray(fault_mask, dtype=bool)
        inject = epoch_index % 2 == 0
        pool = np.argwhere(~current if inject else current)
        k = min(self.churn, len(pool))
        if k == 0:
            return None
        picks = self.rng.choice(len(pool), size=k, replace=False)
        cells = tuple(tuple(int(v) for v in pool[i]) for i in picks)
        return StreamEvent(kind="inject" if inject else "repair", cells=cells)
