"""Online dynamic-fault subsystem: serve routing while faults churn.

The paper computes its fault information model once per static fault
pattern; a production mesh sees faults *arrive and heal* while traffic
flows (the dynamic-fault regime of the 3D-NoC fault-management
literature).  This package keeps the model warm across such events:

* :class:`DynamicFaultModel` — a mutable fault set whose per-class
  :class:`~repro.core.labelling.LabelledGrid` labels are maintained
  **incrementally**: injection warm-starts the monotone fixed point
  from the existing labels over a dirty bounding region (labels only
  escalate under the closure, so the warm start is sound), repair
  recomputes the affected region's slab, and both fall back to a full
  recompute when the dirty region approaches the whole mesh.  Every
  event advances an epoch counter.
* :class:`OnlineRoutingService` — batched routing over the mutating
  model: reach-mask/flood cache invalidation is scoped to the event's
  dirty region instead of dropping everything, each
  :class:`~repro.routing.engine.RouteResult` is stamped with the
  fault-model epoch it was computed against, and queries arriving
  between fault events batch through the existing ``route_batch``.

Incremental labels are property-tested byte-identical to from-scratch
``label_grid`` across random inject/repair sequences
(``tests/test_online_dynamic.py``); the speedup for small deltas is
gated in CI (``benchmarks/bench_incremental_label.py``).  See
DESIGN.md ("Online dynamic-fault subsystem") for the soundness
argument and the invalidation model.
"""

from repro.online.dynamic_model import DynamicFaultModel, FaultEvent
from repro.online.events import FaultEventStream, StreamEvent
from repro.online.service import OnlineRoutingService, Ticket

__all__ = [
    "DynamicFaultModel",
    "FaultEvent",
    "FaultEventStream",
    "OnlineRoutingService",
    "StreamEvent",
    "Ticket",
]
