"""Epoch-versioned fault model with incremental labelling.

:class:`DynamicFaultModel` owns one mutating fault mask and, per
direction class that has been requested, the two closure masks behind
the paper's labelling (Algorithm 1/4): ``useless_blocked`` (faults plus
USELESS nodes — the ``sign=+1`` fixed point) and ``cant_blocked``
(faults plus CANT_REACH — ``sign=-1``).  The displayed
:class:`LabelledGrid` status is composed from those masks with exactly
:func:`label_grid`'s tie rule, so the incremental labels are
byte-identical to a from-scratch labelling of the current mask
(property-tested).

Why incremental updates are sound
---------------------------------

The closure operator ("block a node when all its existing sign-side
neighbors are blocked") is monotone, and the label set is its least
fixed point over the fault set.  Iterating the operator from *any* seed
between the generators and the true fixed point converges to that fixed
point, which gives both update paths:

* **inject(P)**: the old labels are a subset of the new fixed point
  (monotonicity in the fault set), so seeding with ``old labels ∪ P``
  warm-starts the sweep.  A newly blocked cell has a monotone chain of
  newly blocked cells ending at some ``f ∈ P``, so all change is
  confined to the dirty box (``[0, max(P)]`` for the + closure,
  ``[min(P), top]`` for the −), and the sweep runs only there
  (:func:`repro.core.labelling.closure_region`).  Cheaper still: a
  cell's rule verdict can only flip if a sign-side neighbor newly
  became blocked, so when no neighbor of ``P`` newly satisfies the rule
  the old set is already the fixed point and the sweep is skipped
  entirely — the common case for sparse faults.
* **repair(P)**: labels can shrink, so the slab ``[0, max(P)]`` /
  ``[min(P), top]`` is recomputed from scratch with frozen boundary
  values (cells outside the slab cannot change: any cell whose label
  depends on a repaired fault is component-wise below/above it).  When
  no labels exist at all — sparse faults again — only the repaired
  cells themselves can change and a scalar fixed point over ``P``
  suffices.

Repair falls back to a full per-class recompute when the combined
dirty slabs approach the full-mesh sweep volume
(``full_recompute_fraction``) — at that size the from-scratch sweep is
no more work and simpler.  Injection never needs the fallback: its
sweep is warm-started at the old fixed point, so even a full-mesh box
converges in a couple of cheap iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.labelling import (
    CANT_REACH,
    FAULTY,
    SAFE,
    USELESS,
    LabelledGrid,
    _closure,
    closure_region,
)
from repro.mesh.coords import Coord
from repro.mesh.orientation import Orientation

#: Combined dirty-slab volume (both signs), as a fraction of the full
#: 2-sweep volume ``2 * mesh_size``, above which a *repair* falls back
#: to a from-scratch class relabel instead of slab recomputes (inject
#: sweeps are warm-started and never benefit from the fallback).
DEFAULT_FULL_RECOMPUTE_FRACTION = 0.75


def _corner(cells: Sequence[Coord], ndim: int, pick) -> Coord:
    """Component-wise min/max corner of a (small) cell list, scalar."""
    return tuple(pick(c[a] for c in cells) for a in range(ndim))


@dataclass
class ClassDirt:
    """What one event changed in one direction class (canonical frame).

    ``open_lo`` is the component-wise minimum over all cells whose
    *open* status (``~useless_blocked`` — what reach masks flood
    through) changed; ``None`` means no open cell changed.  A cached
    per-destination mask for ``dest`` can only be stale when
    ``dest >= open_lo`` component-wise, so cache invalidation is scoped
    to that cone.  ``full`` marks a full-recompute fallback: everything
    may have changed.  (Oracle-mode forbidden sets depend on the fault
    cells alone; since oracle routers build no dynamic classes, the
    online service derives that cone from ``FaultEvent.cells``
    directly.)
    """

    open_lo: Coord | None
    full: bool = False


@dataclass
class FaultEvent:
    """One inject/repair: the epoch it created and its relabel cost."""

    epoch: int
    kind: str  # "inject" | "repair"
    cells: tuple[Coord, ...]  # mesh-frame coordinates
    classes: dict[tuple[int, ...], ClassDirt] = field(default_factory=dict)
    #: Cells covered by region sweeps (0 when every class took the
    #: scalar fast path) — the event's relabel cost in sweep volume.
    dirty_cells: int = 0
    #: Net change in labelled (non-fault USELESS/CANT_REACH) cells.
    label_delta: int = 0
    #: Classes that fell back to a from-scratch relabel.
    full_recomputes: int = 0


class _DynamicClass:
    """One direction class's incrementally maintained label state.

    All arrays are canonical-frame and mutated in place, so router-side
    model state may alias them (``useless_blocked`` *is* the engine's
    blocked mask, ``open`` its complement, ``status`` the labelled
    grid's storage) and stays current without copies.
    """

    def __init__(self, orientation: Orientation, mesh_faults: np.ndarray):
        self.orientation = orientation
        self.shape = tuple(orientation.to_canonical(mesh_faults).shape)
        self.size = 1
        for k in self.shape:
            self.size *= k
        # Live view: mesh-frame mutations show through automatically.
        self.faults = orientation.to_canonical(mesh_faults)
        faults = np.ascontiguousarray(self.faults)
        self.useless_blocked = _closure(faults, +1) | faults
        self.cant_blocked = _closure(faults, -1) | faults
        self.open = ~self.useless_blocked
        self.status = np.zeros(self.shape, dtype=np.int8)
        self.unsafe = np.zeros(self.shape, dtype=bool)
        self._refresh_box((0,) * len(self.shape), tuple(k - 1 for k in self.shape))
        self.labelled = LabelledGrid(status=self.status, orientation=orientation)
        self.label_count = {
            +1: int((self.useless_blocked & ~self.faults).sum()),
            -1: int((self.cant_blocked & ~self.faults).sum()),
        }

    def _blocked(self, sign: int) -> np.ndarray:
        return self.useless_blocked if sign > 0 else self.cant_blocked

    # -- shared helpers ----------------------------------------------------

    def _refresh_box(self, lo: Sequence[int], hi: Sequence[int]) -> None:
        """Recompose status/open/unsafe from the masks inside a box."""
        sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi, strict=True))
        faults = self.faults[sl]
        status = self.status[sl]
        status[...] = SAFE
        status[self.cant_blocked[sl] & ~faults] = CANT_REACH
        # USELESS wins ties, exactly as label_grid composes it.
        status[self.useless_blocked[sl] & ~faults] = USELESS
        status[faults] = FAULTY
        self.open[sl] = ~self.useless_blocked[sl]
        self.unsafe[sl] = status != SAFE

    def _refresh_cells(self, cells: Iterable[Coord]) -> None:
        for c in cells:
            if self.faults[c]:
                self.status[c] = FAULTY
            elif self.useless_blocked[c]:
                self.status[c] = USELESS
            elif self.cant_blocked[c]:
                self.status[c] = CANT_REACH
            else:
                self.status[c] = SAFE
            self.open[c] = not self.useless_blocked[c]
            self.unsafe[c] = self.status[c] != SAFE

    def _rule_holds(self, blocked: np.ndarray, cell: Coord, sign: int) -> bool:
        """All sign-side neighbors exist and are blocked (border rule:
        a missing neighbor never blocks)."""
        for axis, c in enumerate(cell):
            n = c + sign
            if not 0 <= n < self.shape[axis]:
                return False
            if not blocked[cell[:axis] + (n,) + cell[axis + 1 :]]:
                return False
        return True

    def _box(self, sign: int, cells: Sequence[Coord]) -> tuple[Coord, Coord]:
        """The dirty bounding box of an event for one closure sign.

        Scalar min/max on purpose: event cell lists are tiny and this
        sits on the fast path, where a numpy reduction per axis would
        cost more than the whole event.
        """
        ndim = len(self.shape)
        if sign > 0:
            return (0,) * ndim, _corner(cells, ndim, max)
        return _corner(cells, ndim, min), tuple(k - 1 for k in self.shape)

    @staticmethod
    def _volume(lo: Coord, hi: Coord) -> int:
        out = 1
        for a, b in zip(lo, hi, strict=True):
            out *= b - a + 1
        return out

    # -- inject ------------------------------------------------------------

    def inject(self, cells: Sequence[Coord], event: FaultEvent) -> ClassDirt:
        """Escalate labels for newly faulty ``cells`` (canonical coords).

        The mesh-frame fault mask has already been updated (``faults``
        is a live view); this seeds both closures with the new faults
        and sweeps each dirty box only when a neighbor's rule verdict
        actually flipped.
        """
        open_changed: list[Coord] = [c for c in cells if self.open[c]]
        for sign in (+1, -1):
            blocked = self._blocked(sign)
            fresh = [c for c in cells if not blocked[c]]
            # Cells previously blocked as labels are now faults.
            relabelled = len(cells) - len(fresh)
            self.label_count[sign] -= relabelled
            event.label_delta -= relabelled
            for c in fresh:
                blocked[c] = True
            # Frontier check: a cell's rule verdict can only have
            # flipped if a sign-side neighbor newly became blocked, so
            # when no neighbor of the event cells fires, the old labels
            # plus the new faults are already the fixed point.
            fired = False
            for f in cells:
                for axis in range(len(self.shape)):
                    if not 0 <= f[axis] - sign < self.shape[axis]:
                        continue
                    u = f[:axis] + (f[axis] - sign,) + f[axis + 1 :]
                    if not blocked[u] and self._rule_holds(blocked, u, sign):
                        fired = True
                        break
                if fired:
                    break
            if not fired:
                continue
            lo, hi = self._box(sign, cells)
            sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi, strict=True))
            before = blocked[sl].copy()
            grown = closure_region(blocked, sign, lo, hi)
            event.dirty_cells += self._volume(lo, hi)
            self.label_count[sign] += grown
            event.label_delta += grown
            if grown:
                if sign > 0:  # only the + closure feeds the open mask
                    diff = np.argwhere(blocked[sl] != before)
                    open_changed.extend(
                        tuple(int(v) + o for v, o in zip(row, lo, strict=True))
                        for row in diff
                    )
                self._refresh_box(lo, hi)
        self._refresh_cells(cells)
        ndim = len(self.shape)
        open_lo = _corner(open_changed, ndim, min) if open_changed else None
        return ClassDirt(open_lo=open_lo)

    # -- repair ------------------------------------------------------------

    def repair(
        self,
        cells: Sequence[Coord],
        event: FaultEvent,
        full_recompute_fraction: float,
    ) -> ClassDirt:
        """Relabel after ``cells`` healed (canonical coords).

        Labels can shrink, so the affected slab is recomputed from
        scratch with frozen boundaries — unless no labels exist for a
        sign, in which case only the repaired cells themselves can
        change and a scalar fixed point over them suffices.
        """
        mesh_cells = self.size
        boxes = {sign: self._box(sign, cells) for sign in (+1, -1)}
        sweep_volume = sum(
            self._volume(lo, hi)
            for sign, (lo, hi) in boxes.items()
            if self.label_count[sign] > 0
        )
        if sweep_volume > full_recompute_fraction * 2 * mesh_cells:
            self.rebuild(event)
            return ClassDirt(open_lo=(0,) * len(self.shape), full=True)
        open_changed: list[Coord] = list(cells)  # faults became open
        for sign in (+1, -1):
            blocked = self._blocked(sign)
            if self.label_count[sign] == 0:
                # No labels anywhere: lfp(F) == F, so after removing P
                # only cells of P can stay blocked (as new labels).
                # Scalar fixed point from below over P alone.
                for c in cells:
                    blocked[c] = False
                changed = True
                kept: set[Coord] = set()
                while changed:
                    changed = False
                    for c in cells:
                        if c not in kept and self._rule_holds(blocked, c, sign):
                            blocked[c] = True
                            kept.add(c)
                            changed = True
                self.label_count[sign] += len(kept)
                event.label_delta += len(kept)
                continue
            lo, hi = boxes[sign]
            sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi, strict=True))
            before = blocked[sl].copy()
            # The repaired cells were blocked *as faults* before the
            # event, and the current mask no longer marks them faulty —
            # exclude them from the old label count by hand.  Both
            # boxes contain every event cell by construction.
            labels_before = int((before & ~self.faults[sl]).sum()) - len(cells)
            blocked[sl] = self.faults[sl]
            closure_region(blocked, sign, lo, hi)
            event.dirty_cells += self._volume(lo, hi)
            labels_after = int((blocked[sl] & ~self.faults[sl]).sum())
            self.label_count[sign] += labels_after - labels_before
            event.label_delta += labels_after - labels_before
            if sign > 0:
                diff = np.argwhere(blocked[sl] != before)
                open_changed.extend(
                    tuple(int(v) + o for v, o in zip(row, lo, strict=True)) for row in diff
                )
            self._refresh_box(lo, hi)
        self._refresh_cells(cells)
        ndim = len(self.shape)
        return ClassDirt(open_lo=_corner(open_changed, ndim, min))

    def rebuild(self, event: FaultEvent | None = None) -> None:
        """From-scratch relabel of this class, in place (fallback path)."""
        faults = np.ascontiguousarray(self.faults)
        self.useless_blocked[...] = _closure(faults, +1) | faults
        self.cant_blocked[...] = _closure(faults, -1) | faults
        before = self.label_count.copy()
        self.label_count = {
            +1: int((self.useless_blocked & ~self.faults).sum()),
            -1: int((self.cant_blocked & ~self.faults).sum()),
        }
        self._refresh_box((0,) * len(self.shape), tuple(k - 1 for k in self.shape))
        if event is not None:
            event.full_recomputes += 1
            event.dirty_cells += 2 * int(np.prod(self.shape))
            event.label_delta += sum(self.label_count.values()) - sum(
                before.values()
            )


class DynamicFaultModel:
    """A mutating fault set with epoch-versioned incremental labels.

    ``inject``/``repair`` update the fault mask **in place** (router
    state holding the array stays current), advance ``epoch``, and
    incrementally maintain the labels of every direction class built so
    far; classes are built lazily on first request
    (:meth:`labelled_for`).  Each event returns a :class:`FaultEvent`
    describing, per class, the dirty cone caches must invalidate.
    """

    def __init__(
        self,
        fault_mask: np.ndarray,
        full_recompute_fraction: float = DEFAULT_FULL_RECOMPUTE_FRACTION,
    ):
        self.fault_mask = np.array(fault_mask, dtype=bool)  # owned copy
        self.shape = tuple(self.fault_mask.shape)
        self.full_recompute_fraction = float(full_recompute_fraction)
        self.epoch = 0
        self._classes: dict[tuple[int, ...], _DynamicClass] = {}
        self.stats = {
            "events": 0,
            "injects": 0,
            "repairs": 0,
            "dirty_cells": 0,
            "full_recomputes": 0,
            "class_builds": 0,
        }

    # -- class state -------------------------------------------------------

    def class_for(self, orientation: Orientation | None = None) -> _DynamicClass:
        if orientation is None:
            orientation = Orientation.identity(self.shape)
        key = orientation.signs
        if key not in self._classes:
            self._classes[key] = _DynamicClass(orientation, self.fault_mask)
            self.stats["class_builds"] += 1
        return self._classes[key]

    def labelled_for(self, orientation: Orientation | None = None) -> LabelledGrid:
        """The (live) labelled grid of one direction class."""
        return self.class_for(orientation).labelled

    def fault_count(self) -> int:
        return int(self.fault_mask.sum())

    # -- events ------------------------------------------------------------

    def _check_cells(
        self, cells: Iterable[Sequence[int]], want_faulty: bool
    ) -> list[Coord]:
        out: list[Coord] = []
        seen: set[Coord] = set()
        for cell in cells:
            c = tuple(int(v) for v in cell)
            if len(c) != len(self.shape) or not all(
                0 <= v < k for v, k in zip(c, self.shape, strict=True)
            ):
                raise ValueError(f"cell {c} outside mesh {self.shape}")
            if c in seen:
                raise ValueError(f"cell {c} given twice in one event")
            seen.add(c)
            if bool(self.fault_mask[c]) != want_faulty:
                state = "faulty" if self.fault_mask[c] else "healthy"
                raise ValueError(f"cell {c} is {state}")
            out.append(c)
        if not out:
            raise ValueError("a fault event needs at least one cell")
        return out

    def inject(self, cells: Iterable[Sequence[int]]) -> FaultEvent:
        """Mark ``cells`` faulty; labels escalate incrementally."""
        mesh_cells = self._check_cells(cells, want_faulty=False)
        with obs.span("fault_inject", cat="online", cells=len(mesh_cells)) as sp:
            for c in mesh_cells:
                self.fault_mask[c] = True
            self.epoch += 1
            event = FaultEvent(
                epoch=self.epoch, kind="inject", cells=tuple(mesh_cells)
            )
            for signs, cls in self._classes.items():
                canon = [cls.orientation.map_coord(c) for c in mesh_cells]
                event.classes[signs] = cls.inject(canon, event)
            self._account(event, "injects")
            sp.set(
                epoch=event.epoch,
                dirty_cells=event.dirty_cells,
                full_recomputes=event.full_recomputes,
            )
        return event

    def repair(self, cells: Iterable[Sequence[int]]) -> FaultEvent:
        """Mark ``cells`` healthy again; affected slabs are relabelled."""
        mesh_cells = self._check_cells(cells, want_faulty=True)
        with obs.span("fault_repair", cat="online", cells=len(mesh_cells)) as sp:
            for c in mesh_cells:
                self.fault_mask[c] = False
            self.epoch += 1
            event = FaultEvent(
                epoch=self.epoch, kind="repair", cells=tuple(mesh_cells)
            )
            for signs, cls in self._classes.items():
                canon = [cls.orientation.map_coord(c) for c in mesh_cells]
                event.classes[signs] = cls.repair(
                    canon, event, self.full_recompute_fraction
                )
            self._account(event, "repairs")
            sp.set(
                epoch=event.epoch,
                dirty_cells=event.dirty_cells,
                full_recomputes=event.full_recomputes,
            )
        return event

    def _account(self, event: FaultEvent, kind: str) -> None:
        self.stats["events"] += 1
        self.stats[kind] += 1
        self.stats["dirty_cells"] += event.dirty_cells
        self.stats["full_recomputes"] += event.full_recomputes
