"""Always-on serving layer: async routing front-end + load harness.

The production face of the reproduction (ROADMAP "millions of users"):

* :class:`AsyncRoutingService` — concurrent clients
  ``await service.route(s, d)``; a batching window coalesces a tick's
  arrivals into one ``route_batch`` call over the online dynamic-fault
  model; fault events preempt the queue and flush in-flight requests
  at their submission epoch; admission control sheds past a
  queue-depth bound; SLO metrics (latency percentiles, throughput,
  epoch lag, cache retention, shed count) poll via
  :meth:`~repro.serve.service.AsyncRoutingService.metrics`.
* :mod:`repro.serve.clock` — the :class:`VirtualClock` that makes every
  test and persisted table deterministic, and the :class:`WallClock`
  shim (the only sanctioned wall-clock read in library code).
* :mod:`repro.serve.loadgen` — seeded replayable request traces with
  soak/ramp/spike profiles, and
  :func:`~repro.serve.loadgen.run_offered_load_sweep` producing the
  latency-percentile-vs-offered-load table (JSONL-persisted,
  byte-identical per seed).

CLI::

    PYTHONPATH=src python -m repro.serve --shape 8 8 8 --faults 20 \
        --rates 100 300 1000 --profile ramp --events 4 --save out/t7s.jsonl
"""

from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.loadgen import (
    CompletedRequest,
    RequestTrace,
    make_trace,
    run_load,
    run_offered_load_sweep,
)
from repro.serve.service import (
    AsyncRoutingService,
    MetricsSnapshot,
    ServiceOverloadError,
    ServiceStoppedError,
)

__all__ = [
    "AsyncRoutingService",
    "Clock",
    "CompletedRequest",
    "MetricsSnapshot",
    "RequestTrace",
    "ServiceOverloadError",
    "ServiceStoppedError",
    "VirtualClock",
    "WallClock",
    "make_trace",
    "run_load",
    "run_offered_load_sweep",
]
