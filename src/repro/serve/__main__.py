"""CLI: ``python -m repro.serve`` runs the offered-load sweep harness."""

from __future__ import annotations

import argparse
from typing import Sequence


def main(argv: Sequence[str] | None = None) -> None:
    from repro.serve.loadgen import PROFILES, run_offered_load_sweep

    parser = argparse.ArgumentParser(
        description=(
            "Drive the async routing service with a seeded load profile "
            "and print the latency-vs-offered-load table."
        )
    )
    parser.add_argument("--shape", type=int, nargs="+", default=[8, 8, 8])
    parser.add_argument("--faults", type=int, default=20)
    parser.add_argument(
        "--rates", type=float, nargs="+", default=[100.0, 300.0, 1000.0],
        help="offered request rates (requests per clock unit), one row each",
    )
    parser.add_argument("--profile", choices=PROFILES, default="soak")
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument(
        "--events", type=int, default=0,
        help="fault events spread across each run (preempt the batch queue)",
    )
    parser.add_argument("--churn", type=int, default=2)
    parser.add_argument("--batch-window", type=float, default=0.01)
    parser.add_argument("--depth", type=int, default=4096,
                        help="admission-control queue-depth bound")
    parser.add_argument(
        "--mode", choices=["mcc", "rfb", "oracle", "blind"], default="mcc"
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="also write the table as durable JSONL")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Perfetto trace-event JSON of the sweep")
    parser.add_argument("--csv", action="store_true", help="emit CSV")
    args = parser.parse_args(argv)
    table = run_offered_load_sweep(
        tuple(args.shape),
        args.faults,
        args.rates,
        profile=args.profile,
        duration=args.duration,
        events=args.events,
        churn=args.churn,
        batch_window=args.batch_window,
        max_queue_depth=args.depth,
        mode=args.mode,
        seed=args.seed,
        save=args.save,
        trace_out=args.trace,
    )
    print(table.to_csv() if args.csv else table.render())


if __name__ == "__main__":
    main()
