"""Always-on asyncio routing service over the online fault model.

:class:`AsyncRoutingService` is the long-lived front-end the ROADMAP's
"millions of users" north star asks for: concurrent clients
``await service.route(s, d)``, a configurable **batching window**
coalesces everything that arrived during a tick into one
``route_batch`` call through the underlying
:class:`~repro.online.OnlineRoutingService`, **fault events preempt the
queue** — every request in flight is flushed at its submission epoch
*before* the model mutates, the same invariant PR 6's epoch sanitizer
enforces on the batch layer — and **admission control** sheds load once
the pending queue passes its depth bound instead of letting latency
grow without limit.

The service *owns* its model stack: the
:class:`~repro.online.DynamicFaultModel`, the per-class label arrays,
and the reach/oracle caches all live inside the one
``OnlineRoutingService`` it wraps (built through
:func:`repro.service.make_service`), so there is exactly one mutation
path (:meth:`apply_event`) and one query path (:meth:`route`).

SLO metrics are pollable at any time via :meth:`metrics`: completed /
shed request counts, latency percentiles (p50/p99/max in clock units),
throughput over the observation window, epoch lag at delivery, batch
shape, and the scoped-invalidation cache retention inherited from the
online router.  With a :class:`~repro.serve.clock.VirtualClock` the
whole pipeline — arrivals, batch composition, latencies, metrics — is
a pure function of the seed; with a
:class:`~repro.serve.clock.WallClock` the same code serves live
traffic.  See ``tests/test_serve.py`` for the determinism, preemption,
parity, and shedding contracts.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.online.dynamic_model import FaultEvent
from repro.online.service import OnlineRoutingService
from repro.routing.engine import RouteResult
from repro.serve.clock import Clock, VirtualClock
from repro.service import make_service

#: Default batching window (clock units; seconds on a WallClock).
DEFAULT_BATCH_WINDOW = 0.001

#: Default admission-control bound on queued-but-unbatched requests.
DEFAULT_MAX_QUEUE_DEPTH = 4096


class ServiceOverloadError(RuntimeError):
    """Admission control shed this request (queue depth at bound)."""


class ServiceStoppedError(RuntimeError):
    """route() called while the service is not running."""


@dataclass(frozen=True)
class MetricsSnapshot:
    """One pollable view of the service's SLO counters.

    Latencies are in clock units (virtual units under a VirtualClock,
    seconds under the WallClock); percentiles are computed over every
    completion since the service started (or since the last
    :meth:`AsyncRoutingService.reset_metrics`).  ``epoch_lag_*``
    measure ``service epoch at delivery - result epoch``: how many
    fault events landed between a verdict's model state and the moment
    the client saw it.  ``cache_hit_rate`` is the online router's
    scoped-invalidation retention (reach-mask entries kept / probed).
    """

    requests: int
    completed: int
    shed: int
    events: int
    batches: int
    max_batch: int
    mean_batch: float
    p50_latency: float
    p99_latency: float
    max_latency: float
    throughput: float
    epoch_lag_mean: float
    epoch_lag_max: int
    cache_hit_rate: float
    epoch: int
    queue_depth: int

    def as_row(self) -> dict[str, float | int]:
        """The snapshot as a flat dict (ResultTable/JSONL friendly)."""
        return dict(self.__dict__)

    def publish(self, registry) -> None:
        """Feed the SLO fields into an :class:`~repro.obs.MetricsRegistry`.

        Monotone counts become counters, point-in-time fields become
        gauges — the serve layer's half of the unified telemetry sink.
        """
        for name in ("requests", "completed", "shed", "events", "batches"):
            registry.counter(f"serve_{name}").inc(getattr(self, name))
        for name in (
            "max_batch",
            "mean_batch",
            "p50_latency",
            "p99_latency",
            "max_latency",
            "throughput",
            "epoch_lag_mean",
            "epoch_lag_max",
            "cache_hit_rate",
            "epoch",
            "queue_depth",
        ):
            registry.gauge(f"serve_{name}").set(float(getattr(self, name)))


class AsyncRoutingService:
    """Serve concurrent ``await route(s, d)`` traffic over churning faults.

    Usage::

        service = AsyncRoutingService(mask, mode="mcc", clock=clock)
        async with service:                  # starts the batching loop
            result = await service.route((0, 0, 0), (7, 7, 7))
        service.metrics()                    # pollable SLO snapshot

    ``online=`` adopts a caller-built
    :class:`~repro.online.OnlineRoutingService` (it must be exclusively
    owned by this front-end); otherwise one is constructed through
    :func:`make_service` from ``fault_mask`` and the service knobs.
    """

    def __init__(
        self,
        fault_mask: np.ndarray | None = None,
        *,
        mode: str = "mcc",
        clock: Clock | None = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        online: OnlineRoutingService | None = None,
        **service_knobs,
    ):
        if online is None:
            online = make_service(
                fault_mask, mode=mode, online=True, **service_knobs
            )
        elif fault_mask is not None or service_knobs:
            raise ValueError(
                "pass either an online= service or construction knobs, not both"
            )
        if batch_window <= 0:
            raise ValueError(f"batch_window must be > 0, got {batch_window}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.online = online
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.batch_window = float(batch_window)
        self.max_queue_depth = int(max_queue_depth)
        #: (future, (source, dest), arrival_time) awaiting the next tick.
        self._pending: list[tuple[asyncio.Future, tuple, float]] = []
        self._batcher: asyncio.Task | None = None
        self.reset_metrics()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._batcher is not None and not self._batcher.done()

    async def start(self) -> "AsyncRoutingService":
        """Start the batching loop (idempotent)."""
        if not self.running:
            self._batcher = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )
        return self

    async def stop(self) -> None:
        """Flush anything still pending, then stop the batching loop."""
        self._flush_pending()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None

    async def __aenter__(self) -> "AsyncRoutingService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- serving -----------------------------------------------------------

    async def route(
        self, source: Sequence[int], dest: Sequence[int]
    ) -> RouteResult:
        """Route one pair; resolves at the next batch tick or fault event.

        Raises :class:`ServiceOverloadError` immediately when admission
        control sheds the request (pending queue at its depth bound)
        and :class:`ServiceStoppedError` when the batching loop is not
        running (nothing would ever resolve the future).
        """
        if not self.running:
            raise ServiceStoppedError(
                "AsyncRoutingService.route() outside start()/stop() — "
                "use 'async with service:' or await service.start()"
            )
        self._requests += 1
        if len(self._pending) >= self.max_queue_depth:
            self._shed += 1
            raise ServiceOverloadError(
                f"queue depth {len(self._pending)} at bound "
                f"{self.max_queue_depth}; request shed"
            )
        fut = asyncio.get_running_loop().create_future()
        self._pending.append((fut, (source, dest), self.clock.now()))
        result: RouteResult = await fut
        lag = self.online.epoch - result.epoch
        self._epoch_lag_total += lag
        self._epoch_lag_max = max(self._epoch_lag_max, lag)
        return result

    def apply_event(self, kind: str, cells: Iterable[Sequence[int]]) -> FaultEvent:
        """Apply one fault event, preempting the batching window.

        Every request already queued is flushed *first*, so it is
        answered at the epoch it arrived under (the same
        flush-before-mutate contract :meth:`OnlineRoutingService.inject`
        keeps for its own queue — PR 6's epoch sanitizer checks both
        layers when ``REPRO_SANITIZE=1``).
        """
        if kind not in ("inject", "repair"):
            raise ValueError(f"unknown fault-event kind {kind!r}")
        with obs.span("serve_preempt", cat="serve", kind=kind) as sp:
            sp.set_vt(start=self.clock.now())
            self._flush_pending()
            event = (
                self.online.inject(cells)
                if kind == "inject"
                else self.online.repair(cells)
            )
            self._events += 1
            sp.set_vt(end=self.clock.now())
            sp.set(epoch=event.epoch)
        return event

    # -- internals ---------------------------------------------------------

    async def _run(self) -> None:
        while True:
            await self.clock.sleep(self.batch_window)
            self._flush_pending()

    def _flush_pending(self) -> None:
        """Coalesce the pending queue into one batched online call."""
        if not self._pending:
            return
        with obs.span("serve_tick", cat="serve", batch=len(self._pending)) as sp:
            sp.set_vt(start=self.clock.now())
            batch, self._pending = self._pending, []
            tickets = [
                self.online.submit(source, dest) for _, (source, dest), _ in batch
            ]
            flushed = self.online.flush()
            self.online.take_completed()  # drain the service-side done dict
            now = self.clock.now()
            self._batches += 1
            self._max_batch = max(self._max_batch, len(batch))
            for (fut, _pair, arrived), ticket in zip(batch, tickets, strict=True):
                result = flushed[ticket]
                self._completed += 1
                self._latencies.observe(now - arrived)
                if not fut.cancelled():
                    fut.set_result(result)
            sp.set_vt(end=now)
        if getattr(self.clock, "virtual", False):
            self.clock.note()  # keep the driver's settle loop alive

    # -- metrics -----------------------------------------------------------

    def reset_metrics(self) -> None:
        """Zero every SLO counter and restart the observation window."""
        self._requests = 0
        self._completed = 0
        self._shed = 0
        self._events = 0
        self._batches = 0
        self._max_batch = 0
        self._latencies = obs.Histogram("serve_latency")
        self._epoch_lag_total = 0
        self._epoch_lag_max = 0
        self._window_start = self.clock.now()

    def metrics(self) -> MetricsSnapshot:
        """Snapshot the SLO counters (cheap; callable at any time)."""
        # Histogram.percentile/max reproduce the former inline
        # np.percentile math bit-for-bit (replay byte-identity).
        p50 = self._latencies.percentile(50)
        p99 = self._latencies.percentile(99)
        peak = self._latencies.max()
        elapsed = self.clock.now() - self._window_start
        router = self.online.router
        probes = router.evicted + router.retained
        return MetricsSnapshot(
            requests=self._requests,
            completed=self._completed,
            shed=self._shed,
            events=self._events,
            batches=self._batches,
            max_batch=self._max_batch,
            mean_batch=(
                self._completed / self._batches if self._batches else 0.0
            ),
            p50_latency=p50,
            p99_latency=p99,
            max_latency=peak,
            throughput=self._completed / elapsed if elapsed > 0 else 0.0,
            epoch_lag_mean=(
                self._epoch_lag_total / self._completed
                if self._completed
                else 0.0
            ),
            epoch_lag_max=self._epoch_lag_max,
            cache_hit_rate=router.retained / probes if probes else 1.0,
            epoch=self.online.epoch,
            queue_depth=len(self._pending),
        )
