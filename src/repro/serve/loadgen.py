"""Load harness for the async serving layer: seeded, replayable traffic.

A :class:`RequestTrace` is generated up front from one
:class:`numpy.random.Generator`: Poisson arrivals whose rate follows a
**profile** (``soak`` constant, ``ramp`` stepping up through stages,
``spike`` with a mid-run burst), pairs sampled among the initially
healthy cells, and optional fault-event times on a fixed cadence.  The
trace is pure data — replaying the same seed replays the same trace.

:func:`run_load` drives one trace against an
:class:`~repro.serve.service.AsyncRoutingService`: every request is an
asyncio client task that sleeps until its arrival time and awaits
``service.route``; an event task draws from the shared
:class:`~repro.online.FaultEventStream` at each event time and preempts
the batch queue via ``service.apply_event``.  On a
:class:`~repro.serve.clock.VirtualClock` the harness pumps
:meth:`~repro.serve.clock.VirtualClock.advance` until every client
resolves — fully deterministic; on the wall clock the same tasks just
run live.

:func:`run_offered_load_sweep` is the headline deliverable: one row per
offered load level with latency percentiles, throughput, shed and
delivery rates — the latency-vs-offered-load table, persisted through
the standard :class:`~repro.util.records.ResultTable` JSONL format and
byte-identical for any rerun of the same seed (CI-gated in
``benchmarks/bench_serve_soak.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.coords import Coord
from repro.online.events import FaultEventStream
from repro.serve.clock import VirtualClock
from repro.serve.service import AsyncRoutingService, ServiceOverloadError
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, as_seed_sequence, make_rng

PROFILES = ("soak", "ramp", "spike")

#: Ramp profile: stages climb linearly to this multiple of the base rate.
RAMP_PEAK_FACTOR = 3.0
#: Spike profile: burst multiplier over the middle fifth of the run.
SPIKE_FACTOR = 10.0


@dataclass(frozen=True)
class TracedRequest:
    """One offered request: arrival time plus its (source, dest) pair."""

    arrival: float
    source: Coord
    dest: Coord


@dataclass(frozen=True)
class RequestTrace:
    """A replayable offered-load schedule for one fault pattern."""

    shape: tuple[int, ...]
    fault_count: int
    profile: str
    rate: float  # mean offered requests per clock unit (base rate)
    duration: float
    requests: tuple[TracedRequest, ...]
    event_times: tuple[float, ...]
    churn: int
    seed_mask: np.ndarray = field(repr=False, compare=False)

    @property
    def offered(self) -> int:
        return len(self.requests)


def _rate_at(profile: str, t: float, duration: float, rate: float) -> float:
    """Offered rate at time ``t`` under the profile (piecewise constant)."""
    if profile == "soak":
        return rate
    if profile == "ramp":
        # Four equal stages stepping linearly up to RAMP_PEAK_FACTOR.
        stage = min(3, int(4 * t / duration))
        return rate * (1.0 + (RAMP_PEAK_FACTOR - 1.0) * stage / 3.0)
    if profile == "spike":
        lo, hi = 0.4 * duration, 0.6 * duration
        return rate * SPIKE_FACTOR if lo <= t < hi else rate
    raise ValueError(f"unknown profile {profile!r}; pick from {PROFILES}")


def make_trace(
    shape: Sequence[int],
    fault_count: int,
    *,
    profile: str = "soak",
    rate: float = 200.0,
    duration: float = 1.0,
    events: int = 0,
    churn: int = 2,
    seed: SeedLike = 2005,
    min_distance: int = 2,
) -> RequestTrace:
    """Generate one replayable trace (mask, arrivals, pairs, event times).

    Arrivals are a time-varying Poisson process: exponential
    inter-arrival draws at the profile's instantaneous rate.  Pairs are
    sampled among the cells healthy in the *seed* mask (churn may fault
    some mid-run — that is the point: those requests exercise the
    endpoint-faulty path).  ``events`` fault events are spread evenly
    across the run, each churning ``churn`` cells when replayed.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; pick from {PROFILES}")
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be > 0")
    rng = make_rng(seed)
    shape = tuple(int(k) for k in shape)
    mask = random_fault_mask(shape, int(fault_count), rng=rng)
    healthy = ~mask
    requests: list[TracedRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / _rate_at(profile, t, duration, rate)))
        if t >= duration:
            break
        pair = sample_safe_pair(healthy, rng=rng, min_distance=min_distance)
        if pair is None:
            continue
        source, dest = pair
        requests.append(TracedRequest(arrival=t, source=source, dest=dest))
    event_times = tuple(
        duration * (k + 1) / (events + 1) for k in range(int(events))
    )
    return RequestTrace(
        shape=shape,
        fault_count=int(fault_count),
        profile=profile,
        rate=float(rate),
        duration=float(duration),
        requests=tuple(requests),
        event_times=event_times,
        churn=int(churn),
        seed_mask=mask,
    )


@dataclass(frozen=True)
class CompletedRequest:
    """One request's outcome as observed by its client task."""

    index: int
    arrival: float
    completed: float
    latency: float
    status: str  # "delivered" | "infeasible" | "stuck" | "shed"
    epoch: int  # -1 for shed requests (no verdict was computed)


async def run_load(
    service: AsyncRoutingService,
    trace: RequestTrace,
    event_rng: np.random.Generator | None = None,
) -> list[CompletedRequest]:
    """Drive one trace through the service; per-request records in order.

    The service must be built over ``trace.seed_mask`` (the harness
    checks) and not yet started — :func:`run_load` owns the lifecycle.
    ``event_rng`` seeds the :class:`FaultEventStream` drawing the churn
    cells at each traced event time (defaults to a fixed child of the
    trace content, so replays stay deterministic).
    """
    if not np.array_equal(service.online.fault_mask, trace.seed_mask):
        raise ValueError("service fault mask does not match the trace's seed mask")
    clock = service.clock
    records: list[CompletedRequest | None] = [None] * len(trace.requests)

    async def client(index: int, req: TracedRequest) -> None:
        await clock.sleep(max(0.0, req.arrival - clock.now()))
        arrival = clock.now()
        try:
            result = await service.route(req.source, req.dest)
        except ServiceOverloadError:
            records[index] = CompletedRequest(
                index=index,
                arrival=arrival,
                completed=clock.now(),
                latency=0.0,
                status="shed",
                epoch=-1,
            )
            return
        if result.delivered:
            status = "delivered"
        elif result.feasible is False:
            status = "infeasible"
        else:
            status = "stuck"
        done = clock.now()
        records[index] = CompletedRequest(
            index=index,
            arrival=arrival,
            completed=done,
            latency=done - arrival,
            status=status,
            epoch=result.epoch,
        )

    async def event_driver() -> None:
        if not trace.event_times:
            return
        rng = event_rng if event_rng is not None else np.random.default_rng(
            np.random.SeedSequence([trace.fault_count, len(trace.requests)])
        )
        stream = FaultEventStream(trace.churn, rng)
        for k, when in enumerate(trace.event_times):
            await clock.sleep(max(0.0, when - clock.now()))
            drawn = stream.next_event(service.online.fault_mask, k)
            if drawn is not None:
                service.apply_event(drawn.kind, drawn.cells)

    async with service:
        tasks = [
            asyncio.get_running_loop().create_task(client(i, req))
            for i, req in enumerate(trace.requests)
        ]
        tasks.append(
            asyncio.get_running_loop().create_task(event_driver())
        )
        gathered = asyncio.gather(*tasks)
        if getattr(clock, "virtual", False):
            while not gathered.done():
                progressed = await clock.advance()
                if not progressed and not gathered.done():
                    # No live timer and clients still pending: only the
                    # batcher can resolve them, and it always keeps a
                    # timer registered — so this is a real stall.
                    raise RuntimeError(
                        "virtual-clock load run stalled with pending clients"
                    )
        await gathered
    out = [r for r in records if r is not None]
    if len(out) != len(trace.requests):
        raise RuntimeError("some client tasks finished without a record")
    return out


def summarize(
    trace: RequestTrace, records: Sequence[CompletedRequest]
) -> dict[str, float | int]:
    """One table row: offered load vs latency percentiles and SLO rates."""
    served = [r for r in records if r.status != "shed"]
    # The obs latency histogram reproduces the former inline
    # np.percentile math bit-for-bit (seed-replay byte-identity).
    latencies = obs.Histogram("load_latency")
    for r in served:
        latencies.observe(r.latency)
    completed_span = max((r.completed for r in served), default=0.0)
    row: dict[str, float | int] = {
        "profile": trace.profile,
        "offered_rate": trace.rate,
        "offered": trace.offered,
        "served": len(served),
        "shed": sum(r.status == "shed" for r in records),
        "delivered_rate": (
            sum(r.status == "delivered" for r in served) / len(served)
            if served
            else 0.0
        ),
        "p50_latency": latencies.percentile(50),
        "p90_latency": latencies.percentile(90),
        "p99_latency": latencies.percentile(99),
        "throughput": (
            len(served) / completed_span if completed_span > 0 else 0.0
        ),
        "events": len(trace.event_times),
    }
    return row


def run_offered_load_sweep(
    shape: Sequence[int],
    fault_count: int,
    rates: Sequence[float],
    *,
    profile: str = "soak",
    duration: float = 1.0,
    events: int = 0,
    churn: int = 2,
    batch_window: float = 0.01,
    max_queue_depth: int = 4096,
    mode: str = "mcc",
    seed: SeedLike = 2005,
    save: str | None = None,
    trace_out: str | None = None,
) -> ResultTable:
    """The latency-percentile-vs-offered-load table (seed-replayable).

    One sub-trace per offered rate, all derived positionally from
    ``seed`` (the same spawn discipline as the sharded sweeps), each
    run on its own service + fresh :class:`VirtualClock`, so the whole
    table — and its ``save``d JSONL bytes — is a pure function of the
    arguments.

    ``trace_out`` writes a Perfetto trace-event JSON of the sweep's
    spans (one track per offered rate: serve ticks, preemptions, and
    everything the online model does beneath them).  Tracing never
    changes the table.
    """
    tracer = obs.Tracer() if trace_out is not None else None
    seqs = as_seed_sequence(seed).spawn(len(rates))
    table = ResultTable(
        title=(
            f"T7s serve load sweep — {'x'.join(map(str, shape))} mesh, "
            f"{fault_count} faults, profile {profile}, duration {duration}, "
            f"window {batch_window}, mode {mode}"
        )
    )
    for rate, seq in zip(rates, seqs, strict=True):
        trace = make_trace(
            shape,
            fault_count,
            profile=profile,
            rate=float(rate),
            duration=duration,
            events=events,
            churn=churn,
            seed=seq,
        )
        service = AsyncRoutingService(
            trace.seed_mask.copy(),
            mode=mode,
            clock=VirtualClock(),
            batch_window=batch_window,
            max_queue_depth=max_queue_depth,
        )
        if tracer is None:
            records = asyncio.run(run_load(service, trace))
        else:
            rate_tracer = obs.Tracer(track=f"rate-{rate:g}")
            with obs.tracing(rate_tracer):
                records = asyncio.run(run_load(service, trace))
            tracer.absorb([sp.to_dict() for sp in rate_tracer.spans])
        table.add(**summarize(trace, records))
    if tracer is not None:
        obs.write_perfetto(trace_out, tracer.spans)
    if save is not None:
        table.save(save)
    return table
