"""The serving layer's clocks: one virtual and deterministic, one real.

Everything in :mod:`repro.serve` tells time through a ``Clock`` so the
same service + load-generator code runs in two regimes:

* :class:`VirtualClock` — simulated time on the asyncio event loop.
  ``sleep``/``sleep_until`` register timers on a heap; nothing fires
  until a driver calls :meth:`VirtualClock.advance`, which jumps
  ``now`` to the earliest deadline, wakes every timer due there
  (registration order breaks ties), and then lets the loop settle.
  asyncio's ready queue is FIFO and no real I/O is involved, so a
  seeded workload replays **bit-for-bit**: same arrivals, same batch
  compositions, same virtual latencies.  This is the clock every test
  and every persisted load table uses.
* :class:`WallClock` — real time (:mod:`repro.obs.clockio` /
  ``asyncio.sleep``) for live soak runs where wall-clock throughput is
  the point.  Wall time comes from the project's one sanctioned shim,
  :func:`repro.obs.clockio.wall_now` (the ``repro-check`` D101 rule
  keeps direct reads out of everything else), so a determinism audit
  of the serving layer reduces to "which clock was injected".

The settle loop after :meth:`~VirtualClock.advance` re-yields to the
event loop until the clock's activity counter stops moving — timer
registrations, timer fires, and explicit :meth:`~VirtualClock.note`
calls (the service marks batch flushes) all bump it — so chained
wakeups (timer fires batcher -> batcher resolves request futures ->
clients record completions and register their next timers) complete
before virtual time moves again.
"""

from __future__ import annotations

import asyncio
import math
from typing import Protocol

from repro.obs.clockio import wall_now
from repro.simkit.event_queue import EventQueue


class Clock(Protocol):
    """What the serving layer needs from a time source."""

    #: True when a driver must pump :meth:`advance` for time to move.
    virtual: bool

    def now(self) -> float: ...

    async def sleep(self, delay: float) -> None: ...


class VirtualClock:
    """Deterministic simulated time for the asyncio serving stack."""

    virtual = True

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Timers ride the simkit :class:`EventQueue` (the calendar
        #: queue): deadlines are pushed with the queue's monotone seq,
        #: so same-deadline wakeups fire in registration order —
        #: deterministic tie-breaking, identical to the old local heap.
        self._timers = EventQueue()
        #: Futures still registered in the queue (for pending counts).
        self._futs: set[asyncio.Future] = set()
        #: Monotone activity counter; the settle loop runs until one
        #: full yield round leaves it unchanged.
        self.activity = 0

    def now(self) -> float:
        return self._now

    def pending_timers(self) -> int:
        """Live (non-cancelled) timers currently registered."""
        return sum(1 for fut in self._futs if not fut.cancelled())

    def note(self) -> None:
        """Mark externally visible progress (keeps the settle loop going)."""
        self.activity += 1

    async def sleep(self, delay: float) -> None:
        await self.sleep_until(self._now + float(delay))

    async def sleep_until(self, when: float) -> None:
        when = float(when)
        if when <= self._now:
            # Already due: still yield once so a zero-delay sleep is a
            # cooperative scheduling point, exactly like asyncio.sleep(0).
            await asyncio.sleep(0)
            return
        fut = asyncio.get_running_loop().create_future()
        if when == math.inf:
            # "Sleep forever until cancelled": the calendar queue
            # rejects non-finite deadlines, so register the future
            # without queueing a timer — only cancellation ends the
            # wait, and :meth:`advance` correctly reports no live
            # deadline for it.
            self._futs.add(fut)
            self.activity += 1
            try:
                await fut
            finally:
                # Timer futures are normally discarded by ``advance``
                # when they fire; this one never fires, so clean up on
                # cancellation here.
                self._futs.discard(fut)
            return
        self._timers.push(when, fut)  # rejects NaN before registration
        self._futs.add(fut)
        self.activity += 1
        await fut

    async def advance(self) -> bool:
        """Jump to the earliest deadline and wake everything due there.

        Returns False when, after a settle round, no live timer is
        registered — the driver's signal that every remaining task is
        either finished or waiting on something other than time.
        Settling happens *before* the emptiness check so freshly
        created tasks get to run and register their first timers.
        """
        await self._settle()
        timers = self._timers
        futs = self._futs
        when = None
        due: list[asyncio.Future] = []
        # Pop the earliest deadline group, discarding cancelled timers
        # along the way; peek-before-pop keeps later groups untouched so
        # their registration order survives for the next advance.
        while True:
            next_time = timers.peek_time()
            if next_time is None or (when is not None and next_time != when):
                break
            _, fut = timers.pop()
            futs.discard(fut)
            if fut.cancelled():
                continue
            if when is None:
                when = next_time
            due.append(fut)
        if when is None:
            return False
        self._now = when
        for fut in due:
            fut.set_result(None)
            self.activity += 1
        await self._settle()
        return True

    async def _settle(self) -> None:
        """Yield to the loop until a full round adds no new activity."""
        previous = None
        while previous != self.activity:
            previous = self.activity
            # Two yields per round: one lets just-woken tasks run, the
            # second lets anything they scheduled (resolved futures,
            # zero-delay sleeps) run too before we re-check.
            await asyncio.sleep(0)
            await asyncio.sleep(0)


class WallClock:
    """Real time — the wall-clock time source for live serving.

    Library code must never read the wall clock directly (repro-check
    D101); this class goes through the one sanctioned shim,
    :func:`repro.obs.clockio.wall_now`.  Injecting :class:`VirtualClock`
    instead must be sufficient to make any serve-layer run
    deterministic.
    """

    virtual = False

    def now(self) -> float:
        # Live soak latencies/throughput are wall-clock by definition;
        # every deterministic consumer injects VirtualClock instead.
        return wall_now()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)
