"""One facade over every routing-service flavour: :func:`make_service`.

PRs 1–6 grew three divergent ways to obtain a routing service, each
with its own signature and construction idiom:

* :class:`repro.routing.batch.RoutingService` — batched routing over
  one *static* fault pattern (positional mask, many model knobs);
* :class:`repro.online.OnlineRoutingService` — epoch-versioned routing
  over a *mutating* fault set (same knobs, plus incremental-relabelling
  ones, minus ``label_cache``/``router`` which do not apply);
* :func:`repro.core.model_cache.cached_routing_service` — a
  process-wide *shared* service keyed by mask content (mask + mode
  only; anything stateful would poison the cache).

:func:`make_service` is the single entry point: one signature, with
``online=`` and ``shared=`` selecting the flavour and every knob
validated against it — asking for a combination a flavour cannot
honour raises ``ValueError`` up front instead of being silently
ignored.  The experiments, the examples, and the async serving layer
(:mod:`repro.serve`) all construct their services here, so "which
service do I build and what may I pass it" has exactly one answer.

The one-shot :func:`repro.routing.engine.route_adaptive` wrapper is
deprecated in favour of ``make_service(mask).route(s, d)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.model_cache import cached_routing_service
from repro.online.dynamic_model import DEFAULT_FULL_RECOMPUTE_FRACTION
from repro.online.service import OnlineRoutingService
from repro.routing.batch import RoutingService
from repro.routing.engine import DEFAULT_REACH_CACHE_SIZE, AdaptiveRouter
from repro.routing.policies import Policy

AnyRoutingService = Union[RoutingService, OnlineRoutingService]

#: Knobs `shared=True` cannot honour: a cached service is keyed by
#: (mask content, mode) alone, so anything else must stay at default.
_SHARED_INCOMPATIBLE = (
    "policy",
    "max_hops",
    "replay_policy",
    "router",
    "full_recompute_fraction",
)

#: Knobs `online=True` cannot honour: the online service builds its own
#: mutable-model router, and its label arrays must never enter the
#: content-addressed cache.
_ONLINE_INCOMPATIBLE = ("label_cache", "router")


def make_service(
    fault_mask: np.ndarray | None = None,
    *,
    mode: str = "mcc",
    online: bool = False,
    shared: bool = False,
    policy: Policy | None = None,
    max_hops: int | None = None,
    reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
    replay_policy: bool = False,
    label_cache: bool | None = None,
    router: AdaptiveRouter | None = None,
    full_recompute_fraction: float | None = None,
) -> AnyRoutingService:
    """Build (or fetch) the routing service for a fault pattern.

    Flavour selection:

    * default — a private :class:`RoutingService` over a static mask;
    * ``online=True`` — an :class:`OnlineRoutingService` whose fault set
      mutates through ``inject``/``repair`` (epoch-stamped results);
    * ``shared=True`` — the process-wide content-addressed service from
      :func:`cached_routing_service` (stateless-policy modes only).

    Common knobs (``mode``, ``policy``, ``max_hops``,
    ``reach_cache_size``, ``replay_policy``) mean the same thing in
    every flavour that accepts them; a knob the selected flavour cannot
    honour raises ``ValueError`` instead of being dropped.
    ``label_cache`` (static flavour only) routes labelling through the
    content-addressed cross-pattern cache (default on);
    ``full_recompute_fraction`` (online flavour only) bounds the
    incremental relabeller; ``router`` (static flavour only) adopts a
    caller-owned :class:`AdaptiveRouter` in place of the mask.
    """
    if online and shared:
        raise ValueError(
            "online=True and shared=True are mutually exclusive: a "
            "mutating fault set cannot be content-addressed"
        )
    if online:
        _reject(flavour="online=True", given=_given(
            label_cache=label_cache, router=router
        ), forbidden=_ONLINE_INCOMPATIBLE)
        if fault_mask is None:
            raise ValueError("make_service(online=True) needs a fault_mask")
        return OnlineRoutingService(
            fault_mask,
            mode=mode,
            policy=policy,
            max_hops=max_hops,
            reach_cache_size=reach_cache_size,
            replay_policy=replay_policy,
            full_recompute_fraction=(
                DEFAULT_FULL_RECOMPUTE_FRACTION
                if full_recompute_fraction is None
                else full_recompute_fraction
            ),
        )
    if shared:
        given = _given(
            policy=policy,
            max_hops=max_hops,
            replay_policy=replay_policy or None,
            router=router,
            full_recompute_fraction=full_recompute_fraction,
            label_cache=label_cache,
        )
        # label_cache=True is the shared service's behaviour anyway.
        given = [name for name in given if name != "label_cache" or not label_cache]
        _reject(flavour="shared=True", given=given,
                forbidden=_SHARED_INCOMPATIBLE + ("label_cache",))
        if reach_cache_size != DEFAULT_REACH_CACHE_SIZE:
            raise ValueError(
                "make_service(shared=True) cannot honour reach_cache_size: "
                "the cached service is keyed by (mask, mode) only"
            )
        if fault_mask is None:
            raise ValueError("make_service(shared=True) needs a fault_mask")
        return cached_routing_service(fault_mask, mode=mode)
    if full_recompute_fraction is not None:
        raise ValueError(
            "full_recompute_fraction only applies to make_service(online=True)"
        )
    return RoutingService(
        fault_mask,
        mode=mode,
        policy=policy,
        max_hops=max_hops,
        reach_cache_size=reach_cache_size,
        replay_policy=replay_policy,
        label_cache=True if label_cache is None else label_cache,
        router=router,
    )


def _given(**knobs) -> list[str]:
    """Names of the knobs the caller actually set (non-None)."""
    return [name for name, value in knobs.items() if value is not None]


def _reject(flavour: str, given: list[str], forbidden: tuple[str, ...]) -> None:
    bad = [name for name in given if name in forbidden]
    if bad:
        raise ValueError(
            f"make_service({flavour}) cannot honour: {', '.join(sorted(bad))}"
        )
