"""Discrete-event message-passing simulator.

The paper's system model: each node knows only the status of its
neighbors, and everything — labelling, identification, boundary
construction, detection, routing — happens "through the message
transmission between two neighboring nodes along one of those three
dimensions" (Section 1).  This package provides exactly that substrate:
a deterministic event queue, a mesh network that delivers messages
between neighbor node processes with per-hop latency, per-type message
statistics, and optional tracing.
"""

from repro.simkit.event_queue import EventQueue
from repro.simkit.simulator import Simulator
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.simkit.network import MeshNetwork
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog

__all__ = [
    "EventQueue",
    "Simulator",
    "Message",
    "NodeProcess",
    "MeshNetwork",
    "StatsCollector",
    "TraceLog",
]
