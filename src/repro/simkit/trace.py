"""Optional event tracing for protocol debugging and the demo examples.

:class:`TraceLog` is a **ring buffer**: once ``limit`` events have been
recorded, each new event evicts the *oldest* one and bumps ``dropped``.
(The original behaviour — keep the first N and silently ignore the
rest — meant a long run's trace showed only its warm-up; the tail is
where protocol bugs live.)

When the :mod:`repro.obs` span tracer is installed, every
:meth:`TraceLog.record` also emits an ``obs`` instant (category
``des``) stamped with the event's virtual time, so message deliveries
land on the same Perfetto timeline as the surrounding spans.  With
tracing off this is one module-global read — the log itself never pays
for telemetry it is not using.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import obs


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    src: tuple
    dst: tuple
    note: str = ""


class TraceLog:
    """Bounded in-memory trace of message deliveries (keeps the newest)."""

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self._events: deque[TraceEvent] = deque(maxlen=limit)
        #: Events evicted from the ring (recorded, then aged out).
        self.dropped = 0

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def record(self, time: float, kind: str, src, dst, note: str = "") -> None:
        if len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(TraceEvent(time, kind, tuple(src), tuple(dst), note))
        mark = obs.instant(kind, cat="des", src=tuple(src), dst=tuple(dst))
        if mark is not None:
            mark.vt0 = mark.vt1 = float(time)
            if note:
                mark.attrs["note"] = note

    def filter(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def render(self, max_lines: int = 50) -> str:
        events = self.events
        lines = [
            f"t={e.time:8.2f}  {e.kind:<12} {e.src} -> {e.dst}  {e.note}"
            for e in events[:max_lines]
        ]
        if len(events) > max_lines:
            lines.append(f"... {len(events) - max_lines} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} older events evicted")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)
