"""Optional event tracing for protocol debugging and the demo examples."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    src: tuple
    dst: tuple
    note: str = ""


class TraceLog:
    """Bounded in-memory trace of message deliveries."""

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, kind: str, src, dst, note: str = "") -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, tuple(src), tuple(dst), note))

    def filter(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self, max_lines: int = 50) -> str:
        lines = [
            f"t={e.time:8.2f}  {e.kind:<12} {e.src} -> {e.dst}  {e.note}"
            for e in self.events[:max_lines]
        ]
        if len(self.events) > max_lines:
            lines.append(f"... {len(self.events) - max_lines} more events")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
