"""Protocol statistics: per-kind message counters and scalar gauges."""

from __future__ import annotations

from collections import Counter, defaultdict


class StatsCollector:
    """Counts messages/hops per message kind and arbitrary named scalars."""

    def __init__(self) -> None:
        self.messages_sent: Counter[str] = Counter()
        self.hops: Counter[str] = Counter()
        self.gauges: dict[str, float] = defaultdict(float)

    def on_send(self, kind: str) -> None:
        self.messages_sent[kind] += 1
        self.hops[kind] += 1

    def bump(self, name: str, amount: float = 1.0) -> None:
        self.gauges[name] += amount

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    def by_kind(self) -> dict[str, int]:
        return dict(self.messages_sent)

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {f"msgs[{k}]": v for k, v in self.messages_sent.items()}
        out["msgs[total]"] = self.total_messages
        out.update(self.gauges)
        return out

    def reset(self) -> None:
        self.messages_sent.clear()
        self.hops.clear()
        self.gauges.clear()
