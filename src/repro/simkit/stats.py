"""Protocol statistics: per-kind message counters and scalar gauges."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable


class StatsCollector:
    """Counts messages/hops per message kind and arbitrary named scalars.

    ``query_messages`` attributes sends to the query session that caused
    them (messages whose payload carries a ``"query"`` id) — with many
    routing sessions interleaved in one simulator run, before/after
    deltas of ``total_messages`` can no longer attribute per-query cost,
    but the payload tag can, and for a serial run the two accountings
    agree exactly (every message sent during a blocking query carries
    that query's id).
    """

    def __init__(self) -> None:
        self.messages_sent: Counter[str] = Counter()
        self.hops: Counter[str] = Counter()
        self.gauges: dict[str, float] = defaultdict(float)
        self.query_messages: Counter[Hashable] = Counter()
        #: Peak simultaneous occupancy (in flight + queued) per directed
        #: link, maintained by the contended-link mode of
        #: :class:`~repro.simkit.network.MeshNetwork`.
        self.link_peak_depth: dict[tuple, int] = {}
        #: End-to-end latency of each delivered source-routed frame, in
        #: delivery order (deterministic under the DES).
        self.frame_latencies: list[float] = []
        #: The same latencies keyed by the query session that sent the
        #: frame — ``on_frame`` always accepted a ``query`` id but used
        #: to drop it, so per-query latency attribution was impossible.
        self.frame_latencies_by_query: dict[Hashable, list[float]] = defaultdict(list)

    def on_send(self, kind: str, query: Hashable | None = None) -> None:
        self.messages_sent[kind] += 1
        self.hops[kind] += 1
        if query is not None:
            self.query_messages[query] += 1

    def bump(self, name: str, amount: float = 1.0) -> None:
        self.gauges[name] += amount

    def note_link_depth(self, link: tuple, depth: int) -> None:
        """Record instantaneous occupancy of a directed link."""
        if depth > self.link_peak_depth.get(link, 0):
            self.link_peak_depth[link] = depth
        if depth > self.gauges["link_peak_depth"]:
            self.gauges["link_peak_depth"] = depth

    def on_frame(self, latency: float, query: Hashable | None = None) -> None:
        """Record one delivered frame's end-to-end latency."""
        self.frame_latencies.append(latency)
        if query is not None:
            self.frame_latencies_by_query[query].append(latency)
        self.bump("frames[delivered]")

    @property
    def frames_delivered(self) -> int:
        return len(self.frame_latencies)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    def by_kind(self) -> dict[str, int]:
        return dict(self.messages_sent)

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {f"msgs[{k}]": v for k, v in self.messages_sent.items()}
        out["msgs[total]"] = self.total_messages
        out.update(self.gauges)
        return out

    def publish(self, registry) -> None:
        """Feed this collector into an :class:`~repro.obs.MetricsRegistry`.

        Message counts become labelled counters, gauges become gauges,
        and frame latencies back a histogram (overall and per query) —
        the bridge from the DES's ad-hoc counter island to the unified
        telemetry sink.
        """
        for kind, n in sorted(self.messages_sent.items()):
            registry.counter("sim_messages", kind=kind).inc(n)
        for query, n in sorted(self.query_messages.items(), key=repr):
            registry.counter("sim_query_messages", query=query).inc(n)
        for name, value in sorted(self.gauges.items()):
            registry.gauge(f"sim_{name}").set(value)
        hist = registry.histogram("sim_frame_latency")
        hist.values.extend(self.frame_latencies)
        for query, lat in sorted(
            self.frame_latencies_by_query.items(), key=repr
        ):
            registry.histogram("sim_frame_latency", query=query).values.extend(lat)

    def reset(self) -> None:
        self.messages_sent.clear()
        self.hops.clear()
        self.gauges.clear()
        self.query_messages.clear()
        self.link_peak_depth.clear()
        self.frame_latencies.clear()
        self.frame_latencies_by_query.clear()
