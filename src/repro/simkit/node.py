"""Node process base class for the message-passing protocols."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mesh.coords import Coord, Direction
from repro.simkit.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.network import MeshNetwork


class NodeProcess:
    """One mesh node's protocol state machine.

    Subclasses override :meth:`on_start` and :meth:`on_message`.  The
    only I/O primitives are neighbor sends and local timers — the
    paper's system model enforced by construction.  ``store`` is the
    node-local key/value memory where protocols deposit labels, shapes,
    and boundary records; routing decisions may read only the local
    store and neighbor statuses.
    """

    def __init__(self, network: "MeshNetwork", coord: Coord):
        self.network = network
        self.coord = coord
        self.store: dict[str, Any] = {}

    # -- framework callbacks ------------------------------------------------

    def on_start(self) -> None:
        """Called once at simulation start (t=0)."""

    def on_message(self, msg: Message) -> None:
        """Called on each delivered message."""

    def on_timer(self, tag: str) -> None:
        """Called when a timer set via :meth:`set_timer` fires."""

    # -- I/O primitives ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.network.is_faulty(self.coord)

    def neighbors(self) -> list[Coord]:
        """All in-mesh neighbor coordinates (alive or not).

        Served from the network's precomputed table — treat the list as
        read-only.
        """
        return self.network.neighbors_of(self.coord)

    def neighbor(self, direction: Direction) -> Coord | None:
        return self.network.mesh.neighbor(self.coord, direction)

    def neighbor_faulty(self, direction: Direction) -> bool | None:
        """Local fault detection: None when off-mesh, else liveness.

        Hardware provides this via link-level heartbeat; the network
        exposes it as node-local information (the paper assumes "each
        node knows only the status of its neighbors").
        """
        n = self.neighbor(direction)
        return None if n is None else self.network.is_faulty(n)

    def send(self, dst: Coord, kind: str, payload: dict | None = None, ttl: int | None = None) -> None:
        """Send one message to a neighbor (asserts mesh adjacency)."""
        msg = Message(kind=kind, src=self.coord, dst=dst, payload=payload, ttl=ttl)
        self.network.transmit(msg)

    def forward(self, msg: Message, dst: Coord) -> None:
        """Forward a message to the next neighbor, bumping its hop count."""
        self.network.transmit(msg.forwarded(dst))

    def send_frame(self, path, query=None) -> None:
        """Inject a source-routed data frame starting at this node."""
        if tuple(path[0]) != tuple(self.coord):
            raise ValueError(f"frame path must start at {self.coord}, got {path[0]}")
        self.network.inject_frame(path, query=query)

    def set_timer(self, delay: float, tag: str) -> int:
        return self.network.sim.schedule(delay, lambda: self._fire_timer(tag))

    def _fire_timer(self, tag: str) -> None:
        if self.alive:
            self.on_timer(tag)
