"""The simulation executive: clock + event loop.

``run`` selects a dispatch loop *variant* once per call instead of
re-testing ``until``/``observer``/``max_events`` on every event: the
hot case (no deadline, no observer — every ``run_to_quiescence`` in
every protocol build and T4/T6/T7 run) drains the queue with a tight
pop-execute loop that touches one attribute write per time advance,
while deadline- or observer-carrying runs take the general loop with
the exact historical semantics.  The observer is sampled at ``run``
entry — attach sanitizers (``repro.analysis.sanitize``) before
starting the run, never from inside an event action.
"""

from __future__ import annotations

import math
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable

from repro import obs
from repro.simkit.event_queue import _EPOCH_CAP, EventQueue

_INF = math.inf
_EPOCH_CAP_INT = int(_EPOCH_CAP)


class Simulator:
    """Drives an :class:`EventQueue` with a monotone simulation clock."""

    #: Queue factory — overridable for baseline comparisons (the
    #: event-loop benchmark pins ``HeapEventQueue`` here to measure the
    #: calendar queue against the original heap).
    queue_factory = EventQueue

    def __init__(self, queue=None) -> None:
        self.queue = self.queue_factory() if queue is None else queue
        self.now: float = 0.0
        self.events_processed: int = 0
        #: Optional event observer with ``before_event(now)`` /
        #: ``after_event()`` hooks, called around every executed action.
        #: The session-isolation sanitizer
        #: (:func:`repro.analysis.sanitize.sanitize_network`) attaches
        #: here; ``None`` (the default) costs one attribute check per
        #: ``run`` call.
        self.observer = None

    def schedule(self, delay: float, action: Callable[[], Any]):
        """Run ``action`` after ``delay`` time units; returns a handle.

        The handle is opaque — pass it to :meth:`cancel` and nothing
        else.
        """
        # Same guard as EventQueue.push, call-free: ``not (delay >= 0)``
        # rejects negatives *and* NaN (NaN compares False against
        # everything); the equality check catches +inf.
        if not (delay >= 0) or delay == _INF:
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        queue = self.queue
        if type(queue) is not EventQueue:
            return queue.push(self.now + delay, action)
        # Default-queue fast path: the push body inlined (the guard
        # above already validated, and ``now + delay`` is a float), so
        # one schedule is one call frame instead of two.  Must mirror
        # CalendarEventQueue.push exactly.
        time = self.now + delay
        seq = queue._seq
        queue._seq = seq + 1
        entry = [time, seq, action, queue]
        scaled = time * queue._inv_width
        epoch = int(scaled) if scaled < _EPOCH_CAP else _EPOCH_CAP_INT
        stack_epoch = queue._stack_epoch
        if stack_epoch is not None:
            if epoch == stack_epoch:
                _heappush(queue._pending, entry)
                return entry
            if epoch < stack_epoch:
                # Reachable even though ``time >= now``: a reentrant
                # peek from an event action (``sim.idle``, ``bool(sim.
                # queue)``) can promote a *future* bucket to the drain
                # stack while ``now`` still sits in the old epoch, so a
                # short-delay schedule lands behind the draining epoch.
                # Demote the stack so the bucket path below reinstates
                # global (time, seq) order — exactly what
                # CalendarEventQueue.push does.
                queue._demote_stack()
        buckets = queue._buckets
        bucket = buckets.get(epoch)
        if bucket is None:
            buckets[epoch] = [entry]
            _heappush(queue._epochs, epoch)
        else:
            bucket.append(entry)
        return entry

    def cancel(self, handle) -> None:
        self.queue.cancel(handle)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Process events in time order.

        Stops when the queue drains, when the next event would pass
        ``until``, or after ``max_events`` (a runaway-protocol guard).
        Returns the number of events processed by this call.
        """
        if until is None and self.observer is None:
            processed = self._run_drain(max_events)
        else:
            processed = self._run_general(until, max_events)
        self.events_processed += processed
        return processed

    def _run_drain(self, max_events: int | None) -> int:
        """Hot path: drain without deadline checks or observer hooks.

        The executor and the default :class:`CalendarEventQueue` are
        co-designed: for the default queue the pop is inlined into the
        loop (no per-event method call, no per-pop allocation), reading
        the queue's drain structures directly.  Any other queue object
        takes the portable loop below — same semantics, one ``pop``
        call per event.
        """
        queue = self.queue
        if type(queue) is not EventQueue:
            return self._run_drain_portable(max_events)
        budget = -1 if max_events is None else max_events
        processed = 0
        now = self.now
        heappop = _heappop
        # The stack/pending list *objects* are permanent — every queue
        # operation mutates them in place (see ``_load_next_bucket``) —
        # so holding direct references for the whole drain is safe.
        stack = queue._stack
        pending = queue._pending
        while processed != budget:
            if stack:
                if pending and pending[0] < stack[-1]:
                    item = heappop(pending)
                else:
                    item = stack.pop()
            elif pending:
                item = heappop(pending)
            elif queue._load_next_bucket():
                continue
            else:
                break
            action = item[2]
            if action is None:  # cancelled: drop lazily
                continue
            # No consumed-marking needed: the entry just left the last
            # queue structure holding it, so a late cancel mutates a
            # free-floating list — naturally a no-op.
            time = item[0]
            if time > now:
                # One attribute write per time *advance*, not per event
                # — equal-time bursts (the common case under unit link
                # delays) reuse the already-published clock value.
                now = time
                self.now = time
            action()
            processed += 1
        return processed

    def _run_drain_portable(self, max_events: int | None) -> int:
        """Drain loop for duck-typed queues (no internal access)."""
        # ``pop_event`` hands back the queue's stored (time, seq,
        # action) triple — zero allocations per event.  ``item[-1]``
        # keeps a plain two-field ``pop`` working for custom queues.
        queue = self.queue
        pop = getattr(queue, "pop_event", None) or queue.pop
        budget = -1 if max_events is None else max_events
        processed = 0
        now = self.now
        while processed != budget:
            item = pop()
            if item is None:
                break
            time = item[0]
            if time > now:
                now = time
                self.now = time
            item[-1]()
            processed += 1
        return processed

    def _run_general(self, until: float | None, max_events: int | None) -> int:
        """Deadline- and/or observer-carrying runs (exact old loop)."""
        observer = self.observer
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            time, action = self.queue.pop()
            self.now = max(self.now, time)
            if observer is not None:
                observer.before_event(self.now)
                try:
                    action()
                finally:
                    observer.after_event()
            else:
                action()
            processed += 1
        return processed

    def run_to_quiescence(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (protocol convergence).

        Raises ``RuntimeError`` if the event budget is exhausted — a
        protocol that never quiesces is a bug worth failing loudly on.
        """
        with obs.span("run_to_quiescence", cat="des") as sp:
            sp.set_vt(start=self.now)
            processed = self.run(max_events=max_events)
            sp.set_vt(end=self.now)
            sp.set(events=processed)
        if self.queue.peek_time() is not None:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"(t={self.now}, pending={len(self.queue)})"
            )
        return processed

    @property
    def idle(self) -> bool:
        return self.queue.peek_time() is None
