"""The simulation executive: clock + event loop."""

from __future__ import annotations

import math
from typing import Any, Callable

from repro import obs
from repro.simkit.event_queue import EventQueue


class Simulator:
    """Drives an :class:`EventQueue` with a monotone simulation clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0
        #: Optional event observer with ``before_event(now)`` /
        #: ``after_event()`` hooks, called around every executed action.
        #: The session-isolation sanitizer
        #: (:func:`repro.analysis.sanitize.sanitize_network`) attaches
        #: here; ``None`` (the default) costs one attribute check per
        #: event.
        self.observer = None

    def schedule(self, delay: float, action: Callable[[], Any]) -> int:
        """Run ``action`` after ``delay`` time units; returns a handle."""
        # Same guard as EventQueue.push: NaN slips past ``delay < 0``.
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        return self.queue.push(self.now + delay, action)

    def cancel(self, handle: int) -> None:
        self.queue.cancel(handle)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Process events in time order.

        Stops when the queue drains, when the next event would pass
        ``until``, or after ``max_events`` (a runaway-protocol guard).
        Returns the number of events processed by this call.
        """
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            time, action = self.queue.pop()
            self.now = max(self.now, time)
            observer = self.observer
            if observer is not None:
                observer.before_event(self.now)
                try:
                    action()
                finally:
                    observer.after_event()
            else:
                action()
            processed += 1
        self.events_processed += processed
        return processed

    def run_to_quiescence(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (protocol convergence).

        Raises ``RuntimeError`` if the event budget is exhausted — a
        protocol that never quiesces is a bug worth failing loudly on.
        """
        with obs.span("run_to_quiescence", cat="des") as sp:
            sp.set_vt(start=self.now)
            processed = self.run(max_events=max_events)
            sp.set_vt(end=self.now)
            sp.set(events=processed)
        if self.queue.peek_time() is not None:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"(t={self.now}, pending={len(self.queue)})"
            )
        return processed

    @property
    def idle(self) -> bool:
        return self.queue.peek_time() is None
