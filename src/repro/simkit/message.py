"""Message record exchanged between neighboring nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.mesh.coords import Coord

_MSG_IDS = itertools.count()


@dataclass
class Message:
    """One neighbor-to-neighbor message.

    ``kind`` is the protocol-level type (``"STATUS"``, ``"IDENT_CW"``,
    ``"BOUNDARY"``, ``"ROUTE"``, ...); ``payload`` the protocol data.
    ``hops`` counts network traversals (protocol overhead accounting,
    experiment T3); ``ttl`` implements the paper's time-to-live discard
    for identification messages in unstable regions.
    """

    kind: str
    src: Coord
    dst: Coord
    payload: dict[str, Any] = field(default_factory=dict)
    hops: int = 0
    ttl: int | None = None
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))

    def expired(self) -> bool:
        return self.ttl is not None and self.hops > self.ttl

    def forwarded(self, new_dst: Coord) -> "Message":
        """Copy for the next hop (same identity, one more hop).

        The payload is shallow-copied: a downstream node mutating its
        copy must not retroactively rewrite the sender's hop (protocols
        that mutate *nested* payload values copy them before writing).
        """
        return Message(
            kind=self.kind,
            src=self.dst,
            dst=new_dst,
            payload=dict(self.payload),
            hops=self.hops + 1,
            ttl=self.ttl,
            msg_id=self.msg_id,
        )
