"""Message record exchanged between neighboring nodes.

Payloads are **interned**: :meth:`Message.forwarded` used to
shallow-copy the payload dict on every hop, which put one dict
allocation + copy on the per-event constant of every trail-carrying
protocol message.  :class:`Payload` replaces that with copy-on-write —
a forwarded message *shares* the sender's backing dict behind two
independent views, and the backing is copied only when (and if) a view
is first written.  The PR 8 aliasing contract is unchanged and stays
pinned by its test: a downstream node mutating its copy never
retroactively rewrites the sender's hop, in either direction.

The nested-value rule is also unchanged from the shallow-copy days:
values reached *through* a payload (trail lists, shape lists) are
shared across hops, so protocols that mutate nested values must copy
them before writing.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.mesh.coords import Coord

_MSG_IDS = itertools.count()

#: Shared backing for payload-less messages (STATUS beacons and such):
#: constructing a Message without a payload allocates no dict at all
#: unless somebody writes to it.
_EMPTY: dict[str, Any] = {}


class Payload:
    """A dict view with copy-on-write sharing semantics.

    Reads delegate straight to the backing dict.  A view starts *owned*
    (writes go directly to the backing — a caller that keeps a
    reference to the dict it passed in sees them, exactly like the old
    plain-dict payload).  :meth:`share` splits off a second view over
    the same backing and marks **both** views unowned; the first write
    through either view copies the backing first, so the two sides can
    never see each other's mutations.
    """

    __slots__ = ("_d", "_owned")

    def __init__(self, data: dict[str, Any] | None = None):
        if data is None:
            self._d = _EMPTY
            self._owned = False
        else:
            self._d = data
            self._owned = True

    def share(self) -> "Payload":
        """A new independent view over this payload's backing (O(1))."""
        self._owned = False
        twin = Payload.__new__(Payload)
        twin._d = self._d
        twin._owned = False
        return twin

    def _own(self) -> dict[str, Any]:
        self._d = dict(self._d)
        self._owned = True
        return self._d

    # -- reads (straight delegation) ---------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._d[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._d.get(key, default)

    def __contains__(self, key: object) -> bool:
        return key in self._d

    def __iter__(self) -> Iterator[str]:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def keys(self):
        return self._d.keys()

    def values(self):
        return self._d.values()

    def items(self):
        return self._d.items()

    def copy(self) -> dict[str, Any]:
        """A plain, caller-owned dict snapshot."""
        return dict(self._d)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Payload):
            return self._d == other._d
        return self._d == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return f"Payload({self._d!r})"

    # -- writes (copy-on-write) --------------------------------------------

    def __setitem__(self, key: str, value: Any) -> None:
        d = self._d if self._owned else self._own()
        d[key] = value

    def __delitem__(self, key: str) -> None:
        d = self._d if self._owned else self._own()
        del d[key]

    def pop(self, key: str, *default: Any) -> Any:
        d = self._d if self._owned else self._own()
        return d.pop(key, *default)

    def setdefault(self, key: str, default: Any = None) -> Any:
        d = self._d if self._owned else self._own()
        return d.setdefault(key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        d = self._d if self._owned else self._own()
        d.update(*args, **kwargs)

    def clear(self) -> None:
        if self._owned:
            # Owned views write through to the caller's dict — clear in
            # place so a caller holding the dict it passed in still sees
            # this (and every later) write, exactly like the old
            # plain-dict payload.
            self._d.clear()
        else:
            # Unowned: no need to copy a shared backing we are about to
            # empty — just stop sharing it.
            self._d = {}
            self._owned = True


class Message:
    """One neighbor-to-neighbor message.

    ``kind`` is the protocol-level type (``"STATUS"``, ``"IDENT_CW"``,
    ``"BOUNDARY"``, ``"ROUTE"``, ...); ``payload`` the protocol data.
    ``hops`` counts network traversals (protocol overhead accounting,
    experiment T3); ``ttl`` implements the paper's time-to-live discard
    for identification messages in unstable regions.
    """

    __slots__ = ("kind", "src", "dst", "payload", "hops", "ttl", "msg_id")

    def __init__(
        self,
        kind: str,
        src: Coord,
        dst: Coord,
        payload: dict[str, Any] | Payload | None = None,
        hops: int = 0,
        ttl: int | None = None,
        msg_id: int | None = None,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload if type(payload) is Payload else Payload(payload)
        self.hops = hops
        self.ttl = ttl
        self.msg_id = next(_MSG_IDS) if msg_id is None else msg_id

    def __repr__(self) -> str:
        return (
            f"Message(kind={self.kind!r}, src={self.src!r}, dst={self.dst!r}, "
            f"payload={self.payload._d!r}, hops={self.hops}, ttl={self.ttl}, "
            f"msg_id={self.msg_id})"
        )

    def expired(self) -> bool:
        return self.ttl is not None and self.hops > self.ttl

    def forwarded(self, new_dst: Coord) -> "Message":
        """Copy for the next hop (same identity, one more hop).

        The payload is shared copy-on-write: both the original and the
        forwarded view copy the backing on their first write, so a
        downstream node mutating its view must not (and cannot)
        retroactively rewrite the sender's hop.  Protocols that mutate
        *nested* payload values still copy them before writing.
        """
        msg = Message.__new__(Message)
        msg.kind = self.kind
        msg.src = self.dst
        msg.dst = new_dst
        msg.payload = self.payload.share()
        msg.hops = self.hops + 1
        msg.ttl = self.ttl
        msg.msg_id = self.msg_id
        return msg
