"""The mesh network: delivers neighbor messages between node processes.

Faulty nodes are dead: they neither send nor receive (fail-stop model).
Messages addressed to a faulty or off-mesh node are dropped and counted
— protocols must use :meth:`NodeProcess.neighbor_faulty` to avoid that,
exactly as real routers consult link liveness.

Hot-path layout: the admission path (``transmit``) runs once per
message, so everything it consults is precomputed at construction —
the set of valid directed links (one set lookup replaces the
``contains`` + ``manhattan`` recomputation per send), a per-node
neighbor table, and a plain-set mirror of the fault mask (a Python set
membership test instead of a numpy fancy-index per liveness check).
The numpy ``fault_mask`` stays the source of truth for bulk array
consumers; mutate it only through :meth:`inject_fault` /
:meth:`repair`, which keep the mirror in sync.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mesh.coords import Coord
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.simkit.simulator import Simulator
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog


#: Message kind for source-routed data frames, handled by the network
#: itself (``_frame_hop``) so plain :class:`NodeProcess` meshes carry
#: traffic without a protocol subclass.
FRAME_KIND = "FRAME"


class _LinkState:
    """Occupancy bookkeeping for one directed link under contention."""

    __slots__ = ("free", "depth")

    def __init__(self, capacity: int):
        #: Next-free time of each of the link's ``capacity`` servers.
        self.free = [0.0] * capacity
        #: Messages currently in flight or queued on this link.
        self.depth = 0


class MeshNetwork:
    """Node processes over a mesh with unit-latency neighbor links.

    With the default ``link_capacity=None`` links have infinite
    bandwidth: every ``transmit`` delivers exactly ``link_delay`` later,
    byte-identical to the pre-contention network.  With
    ``link_capacity=k`` each *directed* neighbor link is a serialized
    resource carrying at most ``k`` messages per ``link_delay``; later
    ``transmit`` calls queue FIFO behind earlier ones (service order is
    transmit order, deterministic — no RNG anywhere).  Queue depth per
    link and end-to-end frame latency land in :class:`StatsCollector`.
    """

    def __init__(
        self,
        mesh: Mesh,
        fault_mask: np.ndarray,
        node_factory: Callable[["MeshNetwork", Coord], NodeProcess] | None = None,
        link_delay: float = 1.0,
        link_capacity: int | None = None,
        trace: bool = False,
    ):
        if fault_mask.shape != mesh.shape:
            raise ValueError(
                f"fault mask {fault_mask.shape} does not match mesh {mesh.shape}"
            )
        if link_capacity is not None and link_capacity < 1:
            raise ValueError(f"link_capacity must be >= 1 or None, got {link_capacity}")
        self.mesh = mesh
        self.fault_mask = np.asarray(fault_mask, dtype=bool).copy()
        self.sim = Simulator()
        self.stats = StatsCollector()
        self.trace = TraceLog() if trace else None
        self.link_delay = link_delay
        self.link_capacity = link_capacity
        self._links: dict[tuple[Coord, Coord], _LinkState] = {}
        #: Per-node neighbor lists, computed once (NodeProcess.neighbors
        #: serves from here instead of re-deriving coordinate tuples).
        self._neighbors: dict[Coord, list[Coord]] = {
            coord: mesh.neighbors(coord) for coord in mesh.nodes()
        }
        #: Every valid directed link of the mesh — transmit validation
        #: is one frozenset lookup (both endpoints in-mesh, adjacent).
        self._valid_links: frozenset[tuple[Coord, Coord]] = frozenset(
            (src, dst)
            for src, neighbors in self._neighbors.items()
            for dst in neighbors
        )
        #: Plain-set mirror of ``fault_mask`` for O(1) liveness checks.
        self._faulty: set[Coord] = {
            tuple(int(c) for c in cell) for cell in np.argwhere(self.fault_mask)
        }
        factory = node_factory or NodeProcess
        self.nodes: dict[Coord, NodeProcess] = {
            coord: factory(self, coord) for coord in mesh.nodes()
        }

    def set_link_capacity(self, capacity: int | None) -> None:
        """Switch contention mode while the network is idle.

        Used to build protocol state uncontended and then enable finite
        links for a load phase; existing per-link occupancy is reset, so
        the queue must be quiescent.
        """
        if not self.sim.idle:
            raise RuntimeError("cannot change link capacity with events in flight")
        if capacity is not None and capacity < 1:
            raise ValueError(f"link_capacity must be >= 1 or None, got {capacity}")
        self.link_capacity = capacity
        self._links.clear()

    # -- fault handling ------------------------------------------------------

    def is_faulty(self, coord: Coord) -> bool:
        return tuple(coord) in self._faulty

    def neighbors_of(self, coord: Coord) -> list[Coord]:
        """The precomputed neighbor list of ``coord`` (do not mutate)."""
        return self._neighbors[coord]

    def inject_fault(self, coord: Coord) -> None:
        """Kill a node mid-simulation (dynamic-fault experiments)."""
        coord = tuple(coord)
        self.fault_mask[coord] = True
        self._faulty.add(coord)

    def repair(self, coord: Coord) -> None:
        """Bring a dead node back mid-simulation (churn experiments).

        The node process object is reused but its protocol state is the
        caller's responsibility — a repaired node is a *fresh* node, so
        re-stabilization (see ``DistributedMCCPipeline.apply_event``)
        clears its store and reruns its start hooks.
        """
        coord = tuple(coord)
        self.fault_mask[coord] = False
        self._faulty.discard(coord)

    # -- message plumbing ------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """Queue a message for delivery after one link delay."""
        if (msg.src, msg.dst) not in self._valid_links:
            raise ValueError(
                f"{msg.kind}: {msg.src} -> {msg.dst} is not a mesh link"
            )
        if msg.src in self._faulty:
            # A node that died mid-action sends nothing (fail-stop).
            self.stats.bump("dropped[src-faulty]")
            return
        self.stats.on_send(msg.kind, query=msg.payload.get("query"))
        if self.link_capacity is None:
            self.sim.schedule(self.link_delay, lambda: self._deliver(msg))
            return
        # Contended path: reserve the earliest-free server of the
        # directed link at transmit time (FIFO — arrival order is
        # service order; ties break to the lowest server index).
        link = (msg.src, msg.dst)
        state = self._links.get(link)
        if state is None:
            state = self._links[link] = _LinkState(self.link_capacity)
        now = self.sim.now
        free = state.free
        if len(free) == 1:
            slot = 0
        else:
            slot = min(range(len(free)), key=free.__getitem__)
        start = free[slot] if free[slot] > now else now
        free[slot] = start + self.link_delay
        wait = start - now
        if wait > 0:
            self.stats.bump("link_wait_total", wait)
        state.depth += 1
        self.stats.note_link_depth(link, state.depth)
        self.sim.schedule(wait + self.link_delay, lambda: self._deliver(msg, link))

    def _deliver(self, msg: Message, link: tuple[Coord, Coord] | None = None) -> None:
        if link is not None:
            self._links[link].depth -= 1
        if msg.dst in self._faulty:
            self.stats.bump("dropped[dst-faulty]")
            if msg.kind == FRAME_KIND:
                self.stats.bump("frames[lost]")
            return
        if msg.expired():
            self.stats.bump("dropped[ttl]")
            return
        if self.trace is not None:
            self.trace.record(self.sim.now, msg.kind, msg.src, msg.dst)
        if msg.kind == FRAME_KIND:
            self._frame_hop(msg)
            return
        self.nodes[msg.dst].on_message(msg)

    # -- source-routed data frames ------------------------------------------------

    def inject_frame(self, path, query=None) -> None:
        """Inject one data frame that follows ``path`` hop by hop.

        ``path`` is a sequence of coordinates starting at the source;
        consecutive entries must be mesh neighbors.  Delivery at the
        final coordinate records ``now - t0`` into
        :attr:`StatsCollector.frame_latencies`; a hop into a faulty node
        drops the frame (counted under ``frames[lost]``).
        """
        path = [tuple(c) for c in path]
        if not path:
            raise ValueError("frame path must be non-empty")
        t0 = self.sim.now
        if self.is_faulty(path[0]):
            self.stats.bump("dropped[src-faulty]")
            self.stats.bump("frames[lost]")
            return
        if len(path) == 1:
            self.stats.on_frame(0.0, query=query)
            return
        # The hop index is derived from ``hops`` (0 at injection, +1 per
        # forward), so the payload is never written after this point —
        # every hop shares this one dict copy-on-write with zero copies.
        msg = Message(
            kind=FRAME_KIND,
            src=path[0],
            dst=path[1],
            payload={"query": query, "path": path, "t0": t0},
        )
        self.transmit(msg)

    def _frame_hop(self, msg: Message) -> None:
        payload = msg.payload
        path = payload["path"]
        # Position in the path: the injected message arrives at path[1]
        # with hops == 0, and forwarded() bumps hops once per hop.
        i = msg.hops + 1
        if i == len(path) - 1:
            self.stats.on_frame(self.sim.now - payload["t0"], query=payload.get("query"))
            return
        self.transmit(msg.forwarded(path[i + 1]))

    # -- execution --------------------------------------------------------------

    def start(self) -> None:
        """Invoke every live node's ``on_start`` at t=0."""
        for coord, node in self.nodes.items():
            if coord not in self._faulty:
                self.sim.schedule(0.0, node.on_start)

    def run(self, **kwargs) -> int:
        return self.sim.run(**kwargs)

    def run_to_quiescence(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_to_quiescence(max_events=max_events)

    # -- bulk state access (for validation against centralized results) ----------

    def gather(self, key: str, default=None) -> dict[Coord, object]:
        """Collect one store entry from every live node (test helper).

        This is *observer* access for validation — protocols themselves
        never call it.
        """
        return {
            coord: node.store.get(key, default)
            for coord, node in self.nodes.items()
            if coord not in self._faulty
        }
