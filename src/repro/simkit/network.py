"""The mesh network: delivers neighbor messages between node processes.

Faulty nodes are dead: they neither send nor receive (fail-stop model).
Messages addressed to a faulty or off-mesh node are dropped and counted
— protocols must use :meth:`NodeProcess.neighbor_faulty` to avoid that,
exactly as real routers consult link liveness.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mesh.coords import Coord, manhattan
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.simkit.simulator import Simulator
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog


#: Message kind for source-routed data frames, handled by the network
#: itself (``_frame_hop``) so plain :class:`NodeProcess` meshes carry
#: traffic without a protocol subclass.
FRAME_KIND = "FRAME"


class _LinkState:
    """Occupancy bookkeeping for one directed link under contention."""

    __slots__ = ("free", "depth")

    def __init__(self, capacity: int):
        #: Next-free time of each of the link's ``capacity`` servers.
        self.free = [0.0] * capacity
        #: Messages currently in flight or queued on this link.
        self.depth = 0


class MeshNetwork:
    """Node processes over a mesh with unit-latency neighbor links.

    With the default ``link_capacity=None`` links have infinite
    bandwidth: every ``transmit`` delivers exactly ``link_delay`` later,
    byte-identical to the pre-contention network.  With
    ``link_capacity=k`` each *directed* neighbor link is a serialized
    resource carrying at most ``k`` messages per ``link_delay``; later
    ``transmit`` calls queue FIFO behind earlier ones (service order is
    transmit order, deterministic — no RNG anywhere).  Queue depth per
    link and end-to-end frame latency land in :class:`StatsCollector`.
    """

    def __init__(
        self,
        mesh: Mesh,
        fault_mask: np.ndarray,
        node_factory: Callable[["MeshNetwork", Coord], NodeProcess] | None = None,
        link_delay: float = 1.0,
        link_capacity: int | None = None,
        trace: bool = False,
    ):
        if fault_mask.shape != mesh.shape:
            raise ValueError(
                f"fault mask {fault_mask.shape} does not match mesh {mesh.shape}"
            )
        if link_capacity is not None and link_capacity < 1:
            raise ValueError(f"link_capacity must be >= 1 or None, got {link_capacity}")
        self.mesh = mesh
        self.fault_mask = np.asarray(fault_mask, dtype=bool).copy()
        self.sim = Simulator()
        self.stats = StatsCollector()
        self.trace = TraceLog() if trace else None
        self.link_delay = link_delay
        self.link_capacity = link_capacity
        self._links: dict[tuple[Coord, Coord], _LinkState] = {}
        factory = node_factory or NodeProcess
        self.nodes: dict[Coord, NodeProcess] = {
            coord: factory(self, coord) for coord in mesh.nodes()
        }

    def set_link_capacity(self, capacity: int | None) -> None:
        """Switch contention mode while the network is idle.

        Used to build protocol state uncontended and then enable finite
        links for a load phase; existing per-link occupancy is reset, so
        the queue must be quiescent.
        """
        if not self.sim.idle:
            raise RuntimeError("cannot change link capacity with events in flight")
        if capacity is not None and capacity < 1:
            raise ValueError(f"link_capacity must be >= 1 or None, got {capacity}")
        self.link_capacity = capacity
        self._links.clear()

    # -- fault handling ------------------------------------------------------

    def is_faulty(self, coord: Coord) -> bool:
        return bool(self.fault_mask[tuple(coord)])

    def inject_fault(self, coord: Coord) -> None:
        """Kill a node mid-simulation (dynamic-fault experiments)."""
        self.fault_mask[tuple(coord)] = True

    def repair(self, coord: Coord) -> None:
        """Bring a dead node back mid-simulation (churn experiments).

        The node process object is reused but its protocol state is the
        caller's responsibility — a repaired node is a *fresh* node, so
        re-stabilization (see ``DistributedMCCPipeline.apply_event``)
        clears its store and reruns its start hooks.
        """
        self.fault_mask[tuple(coord)] = False

    # -- message plumbing ------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """Queue a message for delivery after one link delay."""
        if not self.mesh.contains(msg.dst) or manhattan(msg.src, msg.dst) != 1:
            raise ValueError(
                f"{msg.kind}: {msg.src} -> {msg.dst} is not a mesh link"
            )
        if self.is_faulty(msg.src):
            # A node that died mid-action sends nothing (fail-stop).
            self.stats.bump("dropped[src-faulty]")
            return
        self.stats.on_send(msg.kind, query=msg.payload.get("query"))
        if self.link_capacity is None:
            self.sim.schedule(self.link_delay, lambda: self._deliver(msg))
            return
        # Contended path: reserve the earliest-free server of the
        # directed link at transmit time (FIFO — arrival order is
        # service order; ties break to the lowest server index).
        link = (msg.src, msg.dst)
        state = self._links.get(link)
        if state is None:
            state = self._links[link] = _LinkState(self.link_capacity)
        now = self.sim.now
        slot = min(range(len(state.free)), key=state.free.__getitem__)
        start = state.free[slot] if state.free[slot] > now else now
        state.free[slot] = start + self.link_delay
        wait = start - now
        if wait > 0:
            self.stats.bump("link_wait_total", wait)
        state.depth += 1
        self.stats.note_link_depth(link, state.depth)
        self.sim.schedule(wait + self.link_delay, lambda: self._deliver(msg, link))

    def _deliver(self, msg: Message, link: tuple[Coord, Coord] | None = None) -> None:
        if link is not None:
            self._links[link].depth -= 1
        if self.is_faulty(msg.dst):
            self.stats.bump("dropped[dst-faulty]")
            if msg.kind == FRAME_KIND:
                self.stats.bump("frames[lost]")
            return
        if msg.expired():
            self.stats.bump("dropped[ttl]")
            return
        if self.trace is not None:
            self.trace.record(self.sim.now, msg.kind, msg.src, msg.dst)
        if msg.kind == FRAME_KIND:
            self._frame_hop(msg)
            return
        self.nodes[msg.dst].on_message(msg)

    # -- source-routed data frames ------------------------------------------------

    def inject_frame(self, path, query=None) -> None:
        """Inject one data frame that follows ``path`` hop by hop.

        ``path`` is a sequence of coordinates starting at the source;
        consecutive entries must be mesh neighbors.  Delivery at the
        final coordinate records ``now - t0`` into
        :attr:`StatsCollector.frame_latencies`; a hop into a faulty node
        drops the frame (counted under ``frames[lost]``).
        """
        path = [tuple(c) for c in path]
        if not path:
            raise ValueError("frame path must be non-empty")
        t0 = self.sim.now
        if self.is_faulty(path[0]):
            self.stats.bump("dropped[src-faulty]")
            self.stats.bump("frames[lost]")
            return
        if len(path) == 1:
            self.stats.on_frame(0.0, query=query)
            return
        msg = Message(
            kind=FRAME_KIND,
            src=path[0],
            dst=path[1],
            payload={"query": query, "path": path, "i": 1, "t0": t0},
        )
        self.transmit(msg)

    def _frame_hop(self, msg: Message) -> None:
        payload = msg.payload
        path = payload["path"]
        i = payload["i"]
        if i == len(path) - 1:
            self.stats.on_frame(self.sim.now - payload["t0"], query=payload.get("query"))
            return
        nxt = msg.forwarded(path[i + 1])
        nxt.payload["i"] = i + 1
        self.transmit(nxt)

    # -- execution --------------------------------------------------------------

    def start(self) -> None:
        """Invoke every live node's ``on_start`` at t=0."""
        for coord, node in self.nodes.items():
            if not self.is_faulty(coord):
                self.sim.schedule(0.0, node.on_start)

    def run(self, **kwargs) -> int:
        return self.sim.run(**kwargs)

    def run_to_quiescence(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_to_quiescence(max_events=max_events)

    # -- bulk state access (for validation against centralized results) ----------

    def gather(self, key: str, default=None) -> dict[Coord, object]:
        """Collect one store entry from every live node (test helper).

        This is *observer* access for validation — protocols themselves
        never call it.
        """
        return {
            coord: node.store.get(key, default)
            for coord, node in self.nodes.items()
            if not self.is_faulty(coord)
        }
