"""The mesh network: delivers neighbor messages between node processes.

Faulty nodes are dead: they neither send nor receive (fail-stop model).
Messages addressed to a faulty or off-mesh node are dropped and counted
— protocols must use :meth:`NodeProcess.neighbor_faulty` to avoid that,
exactly as real routers consult link liveness.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mesh.coords import Coord, manhattan
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.simkit.simulator import Simulator
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog


class MeshNetwork:
    """Node processes over a mesh with unit-latency neighbor links."""

    def __init__(
        self,
        mesh: Mesh,
        fault_mask: np.ndarray,
        node_factory: Callable[["MeshNetwork", Coord], NodeProcess] | None = None,
        link_delay: float = 1.0,
        trace: bool = False,
    ):
        if fault_mask.shape != mesh.shape:
            raise ValueError(
                f"fault mask {fault_mask.shape} does not match mesh {mesh.shape}"
            )
        self.mesh = mesh
        self.fault_mask = np.asarray(fault_mask, dtype=bool).copy()
        self.sim = Simulator()
        self.stats = StatsCollector()
        self.trace = TraceLog() if trace else None
        self.link_delay = link_delay
        factory = node_factory or NodeProcess
        self.nodes: dict[Coord, NodeProcess] = {
            coord: factory(self, coord) for coord in mesh.nodes()
        }

    # -- fault handling ------------------------------------------------------

    def is_faulty(self, coord: Coord) -> bool:
        return bool(self.fault_mask[tuple(coord)])

    def inject_fault(self, coord: Coord) -> None:
        """Kill a node mid-simulation (dynamic-fault experiments)."""
        self.fault_mask[tuple(coord)] = True

    def repair(self, coord: Coord) -> None:
        """Bring a dead node back mid-simulation (churn experiments).

        The node process object is reused but its protocol state is the
        caller's responsibility — a repaired node is a *fresh* node, so
        re-stabilization (see ``DistributedMCCPipeline.apply_event``)
        clears its store and reruns its start hooks.
        """
        self.fault_mask[tuple(coord)] = False

    # -- message plumbing ------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """Queue a message for delivery after one link delay."""
        if not self.mesh.contains(msg.dst) or manhattan(msg.src, msg.dst) != 1:
            raise ValueError(
                f"{msg.kind}: {msg.src} -> {msg.dst} is not a mesh link"
            )
        if self.is_faulty(msg.src):
            # A node that died mid-action sends nothing (fail-stop).
            self.stats.bump("dropped[src-faulty]")
            return
        self.stats.on_send(msg.kind, query=msg.payload.get("query"))
        self.sim.schedule(self.link_delay, lambda: self._deliver(msg))

    def _deliver(self, msg: Message) -> None:
        if self.is_faulty(msg.dst):
            self.stats.bump("dropped[dst-faulty]")
            return
        if msg.expired():
            self.stats.bump("dropped[ttl]")
            return
        if self.trace is not None:
            self.trace.record(self.sim.now, msg.kind, msg.src, msg.dst)
        self.nodes[msg.dst].on_message(msg)

    # -- execution --------------------------------------------------------------

    def start(self) -> None:
        """Invoke every live node's ``on_start`` at t=0."""
        for coord, node in self.nodes.items():
            if not self.is_faulty(coord):
                self.sim.schedule(0.0, node.on_start)

    def run(self, **kwargs) -> int:
        return self.sim.run(**kwargs)

    def run_to_quiescence(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_to_quiescence(max_events=max_events)

    # -- bulk state access (for validation against centralized results) ----------

    def gather(self, key: str, default=None) -> dict[Coord, object]:
        """Collect one store entry from every live node (test helper).

        This is *observer* access for validation — protocols themselves
        never call it.
        """
        return {
            coord: node.store.get(key, default)
            for coord, node in self.nodes.items()
            if not self.is_faulty(coord)
        }
