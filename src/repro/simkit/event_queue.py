"""Deterministic event queues: a calendar queue and its heap baseline.

Both implementations share one contract, and every simulation property
rests on it: events pop in ``(time, seq)`` order, where ``seq`` is a
monotone insertion counter — events at equal timestamps fire in
insertion order, so simulations are bit-for-bit reproducible.

:class:`CalendarEventQueue` (the default, exported as ``EventQueue``)
is the fast path.  DES workloads on this mesh are *dense*: with unit
link delays, almost every pending event lives within a couple of time
units of ``now``, so a binary heap pays a per-event ``log n`` reorder
for structure the workload never needs.  The calendar queue instead
drops events into fixed-width time buckets (``epoch = floor(time /
width)``), keeps buckets unsorted until drained, and sorts each bucket
exactly once — one C ``list.sort`` per bucket amortizes the ordering
cost across every event in it, and pops become ``list.pop()`` off a
reverse-sorted stack.  Occupied epochs sit in a small min-heap, so
sparse or irregular schedules degrade gracefully to heap behaviour
(one heap op per *bucket*, never worse than one per event) instead of
scanning empty buckets.  The bucket width resizes automatically when
the observed occupancy skews (too many events per bucket → pending
re-sorts get expensive → halve; chronically singleton buckets → the
epoch heap does all the work → double), rebuilding pending events
under the new width; ordering is width-independent because ``floor``
is monotone, so a resize can never reorder events.

:class:`HeapEventQueue` is the original binary-heap implementation,
kept verbatim as the semantic reference: the hypothesis property tests
drive both queues through identical op sequences and demand identical
behaviour, and ``benchmarks/bench_event_loop.py`` uses it as the
pinned baseline for the ≥2x events/sec CI gate.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

__all__ = ["EventQueue", "CalendarEventQueue", "HeapEventQueue"]


class HeapEventQueue:
    """Min-heap of (time, seq, action) with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = itertools.count()
        self._live: set[int] = set()
        self._cancelled: set[int] = set()

    def push(self, time: float, action: Callable[[], Any]) -> int:
        """Schedule ``action`` at ``time``; returns a cancellable handle."""
        time = float(time)
        # NaN compares False against everything, so a plain ``time < 0``
        # guard lets NaN through and silently corrupts heap ordering.
        if not math.isfinite(time) or time < 0:
            raise ValueError(f"event time must be finite and non-negative, got {time}")
        seq = next(self._seq)
        self._live.add(seq)
        heapq.heappush(self._heap, (time, seq, action))
        return seq

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (lazy removal on pop).

        Cancelling a handle that already fired, was already cancelled,
        or never existed is a no-op — only live handles move to the
        cancelled set, so ``__len__`` can never undercount.
        """
        if handle in self._live:
            self._live.discard(handle)
            self._cancelled.add(handle)

    def pop_event(self) -> tuple[float, int, Callable[[], Any]] | None:
        """Earliest live (time, seq, action) stored triple, or None."""
        while self._heap:
            item = heapq.heappop(self._heap)
            seq = item[1]
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._live.discard(seq)
            return item
        return None

    def pop(self) -> tuple[float, Callable[[], Any]] | None:
        """Earliest live event, or None when empty."""
        item = self.pop_event()
        if item is None:
            return None
        return item[0], item[2]

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap:
            time, seq, _ = self._heap[0]
            if seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(seq)
                continue
            return time
        return None

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


#: Resize heuristics for :class:`CalendarEventQueue`.  Checked every
#: ``_RESIZE_CHECK`` drained buckets: above ``_MAX_AVG`` events/bucket
#: the width halves, below ``_MIN_AVG`` (with a non-trivial backlog) it
#: doubles.  Widths stay powers of two within [2^-20, 2^20] so epoch
#: arithmetic is exact and a pathological schedule cannot drive the
#: width to zero or infinity.
_RESIZE_CHECK = 64
_MAX_AVG = 512.0
_MIN_AVG = 1.5
_MIN_WIDTH = 2.0 ** -20
_MAX_WIDTH = 2.0 ** 20

#: Epoch ceiling: times whose ``time / width`` exceeds this all share
#: one far-future bucket.  Clamping keeps the epoch computation finite
#: for any finite time and is order-safe — bucket assignment only needs
#: to be monotone in time, and the in-bucket sort does the rest.
_EPOCH_CAP = 2.0 ** 62

#: Hoisted so the push fast path pays one global load, not a module
#: attribute lookup, for its infinity check.
_INF = math.inf


class CalendarEventQueue:
    """Fixed-width time buckets, lazily sorted on drain.

    API-compatible with :class:`HeapEventQueue` (push/cancel/pop/
    peek_time/len/bool) and bit-for-bit identical in pop order, cancel
    semantics, and accounting — the hypothesis suite in
    ``tests/test_event_queue_property.py`` holds the two to the same
    op-for-op behaviour.
    """

    __slots__ = (
        "_width",
        "_inv_width",
        "_buckets",
        "_epochs",
        "_stack",
        "_stack_epoch",
        "_pending",
        "_seq",
        "_drained_buckets",
        "_drained_events",
    )

    def __init__(self, width: float = 1.0) -> None:
        if not (width > 0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be positive and finite, got {width}")
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        #: epoch -> unsorted list of ``[time, seq, action, queue]``
        #: entries not yet draining.  Entries are *lists* on purpose:
        #: the entry is its own handle, and cancel/consume mark
        #: ``entry[2] = None`` in place — no live/cancelled side
        #: tables, no per-event set traffic anywhere on the hot path.
        #: The trailing queue reference is a provenance tag so
        #: :meth:`cancel` never mutates another queue's entry (or a
        #: caller list that happens to look like one); comparisons
        #: never reach it because ``seq`` is unique within a queue and
        #: entries from different queues never share a heap.
        self._buckets: dict[int, list[list]] = {}
        #: Min-heap of occupied epochs (lazy duplicates allowed; an
        #: epoch with no bucket is stale and skipped on pop).
        self._epochs: list[int] = []
        #: The bucket currently draining, sorted descending so that
        #: ``list.pop()`` yields the earliest remaining event.
        self._stack: list[list] = []
        self._stack_epoch: int | None = None
        #: Min-heap of events pushed into the *draining* epoch after its
        #: one-time sort.  Kept separate so a same-epoch push is one
        #: heap op on a small heap, never a re-sort of the whole stack;
        #: ``pop`` takes the smaller of ``stack[-1]`` and ``pending[0]``.
        self._pending: list[list] = []
        self._seq = 0
        self._drained_buckets = 0
        self._drained_events = 0

    # -- scheduling --------------------------------------------------------

    def push(self, time: float, action: Callable[[], Any]) -> list:
        """Schedule ``action`` at ``time``; returns a cancellable handle.

        The handle is opaque — pass it to :meth:`cancel` and nothing
        else.  (It is the queue's own entry, so it stays O(1) to cancel
        without any handle table.)
        """
        time = float(time)
        # ``not (time >= 0)`` is one comparison that rejects both
        # negatives and NaN (NaN compares False against everything);
        # infinities still need the explicit finiteness check.
        if not (time >= 0.0) or time == _INF:
            raise ValueError(f"event time must be finite and non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, action, self]
        scaled = time * self._inv_width
        epoch = int(scaled) if scaled < _EPOCH_CAP else int(_EPOCH_CAP)
        stack_epoch = self._stack_epoch
        if stack_epoch is not None:
            if epoch == stack_epoch:
                heapq.heappush(self._pending, entry)
                return entry
            if epoch < stack_epoch:
                # A push behind the draining epoch.  Reachable two
                # ways: a raw past-time push, or — subtler — a peek
                # mid-drain promoted a *future* bucket while the clock
                # still sits in an earlier epoch, so even a future-time
                # push can land behind the stack.  Demote the stack so
                # the ordinary bucket path below reinstates global
                # order; paying the check here keeps it off the per-pop
                # hot path.
                self._demote_stack()
        bucket = self._buckets.get(epoch)
        if bucket is None:
            self._buckets[epoch] = [entry]
            heapq.heappush(self._epochs, epoch)
        else:
            bucket.append(entry)
        return entry

    def cancel(self, handle) -> None:
        """Cancel a scheduled event (lazy removal on pop).

        Same contract as :meth:`HeapEventQueue.cancel`: fired, already
        cancelled, or unknown/foreign handles are no-ops and accounting
        stays exact.  A fired entry has already left every queue
        structure, so nulling its action slot here has no effect — the
        no-op contract holds without any fired-handle bookkeeping.
        The provenance tag in slot 3 makes "foreign" precise: a handle
        from a *different* queue instance (or any caller list that
        merely looks like an entry) is left untouched.
        """
        if (
            type(handle) is list
            and len(handle) == 4
            and handle[3] is self
            and handle[2] is not None
        ):
            handle[2] = None

    # -- draining ----------------------------------------------------------

    def pop_event(self) -> tuple[float, int, Callable[[], Any]] | None:
        """Earliest live (time, seq, action) triple, or None when empty.

        This is the portable dispatch entry point; :meth:`pop` wraps it
        with the historical two-field shape.  (The default Simulator
        drain loop inlines this logic instead of calling it.)
        """
        while True:
            stack = self._stack
            pending = self._pending
            if stack:
                # Merge head: smaller of the sorted stack's tail and the
                # same-epoch pending heap's root.  seq uniqueness means
                # entry comparison never reaches the action slot.
                if pending and pending[0] < stack[-1]:
                    item = heapq.heappop(pending)
                else:
                    item = stack.pop()
            elif pending:
                item = heapq.heappop(pending)
            elif self._load_next_bucket():
                continue
            else:
                return None
            action = item[2]
            if action is None:  # cancelled: drop lazily
                continue
            # No consumed-marking needed: the entry just left the last
            # structure holding it, so cancel-after-fire mutates a
            # free-floating list — naturally a no-op.
            return item[0], item[1], action

    def pop(self) -> tuple[float, Callable[[], Any]] | None:
        """Earliest live event, or None when empty."""
        item = self.pop_event()
        if item is None:
            return None
        return item[0], item[2]

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while True:
            stack = self._stack
            pending = self._pending
            if stack:
                if pending and pending[0] < stack[-1]:
                    item = pending[0]
                    if item[2] is None:
                        heapq.heappop(pending)
                        continue
                    return item[0]
                item = stack[-1]
                if item[2] is None:
                    stack.pop()
                    continue
                return item[0]
            if pending:
                item = pending[0]
                if item[2] is None:
                    heapq.heappop(pending)
                    continue
                return item[0]
            if not self._load_next_bucket():
                return None

    def __len__(self) -> int:
        # O(pending events); only error paths and tests count the queue,
        # so the hot path carries no live-count bookkeeping at all.
        n = sum(1 for item in self._stack if item[2] is not None)
        n += sum(1 for item in self._pending if item[2] is not None)
        for bucket in self._buckets.values():
            n += sum(1 for item in bucket if item[2] is not None)
        return n

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    # -- internals ---------------------------------------------------------

    def _demote_stack(self) -> None:
        """Return the draining stack to the bucket table (rare path).

        Mutates the stack/pending lists *in place* so the Simulator's
        drain loop may keep direct references across this call.
        """
        epoch = self._stack_epoch
        items = self._stack + self._pending
        self._stack.clear()
        self._pending.clear()
        self._stack_epoch = None
        if items:
            bucket = self._buckets.get(epoch)
            if bucket is None:
                self._buckets[epoch] = items
                heapq.heappush(self._epochs, epoch)
            else:
                bucket.extend(items)

    def _load_next_bucket(self) -> bool:
        """Promote the earliest occupied bucket to the draining stack.

        The stack and pending *list objects* are permanent (created in
        ``__init__`` and only ever mutated in place), so the Simulator's
        drain loop can hold direct references to them across bucket
        loads, resizes, and any reentrant peek from an event action.
        """
        epochs = self._epochs
        buckets = self._buckets
        while epochs:
            epoch = epochs[0]
            bucket = buckets.get(epoch)
            if bucket is None:
                heapq.heappop(epochs)  # stale duplicate
                continue
            heapq.heappop(epochs)
            del buckets[epoch]
            bucket.sort(reverse=True)
            self._stack.extend(bucket)
            self._stack_epoch = epoch
            self._drained_buckets += 1
            self._drained_events += len(bucket)
            if self._drained_buckets >= _RESIZE_CHECK:
                self._maybe_resize()
            return True
        self._stack_epoch = None
        return False

    def _maybe_resize(self) -> None:
        """Adapt the bucket width to the observed occupancy skew."""
        avg = self._drained_events / self._drained_buckets
        self._drained_buckets = 0
        self._drained_events = 0
        if avg > _MAX_AVG and self._width > _MIN_WIDTH:
            self._set_width(self._width * 0.5)
        elif avg < _MIN_AVG and self._width < _MAX_WIDTH:
            # Only widen over a non-trivial backlog (raw entry count —
            # counting cancelled entries too is fine for a heuristic).
            backlog = len(self._stack) + len(self._pending)
            for bucket in self._buckets.values():
                backlog += len(bucket)
            if backlog > 64:
                self._set_width(self._width * 2.0)

    def _set_width(self, width: float) -> None:
        """Re-bucket every pending event under a new width.

        Safe at any point: events carry their absolute ``(time, seq)``
        key, and ``floor`` is monotone under any positive width, so the
        drain order is unchanged — only the bucket shapes move.
        Cancelled entries are compacted away while rebuilding.
        """
        items = [item for item in self._stack if item[2] is not None]
        items.extend(item for item in self._pending if item[2] is not None)
        for bucket in self._buckets.values():
            items.extend(item for item in bucket if item[2] is not None)
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets = {}
        self._epochs = []
        # In place: the stack/pending list objects are permanent (see
        # ``_load_next_bucket``).
        self._stack.clear()
        self._pending.clear()
        self._stack_epoch = None
        inv = self._inv_width
        buckets = self._buckets
        for item in items:
            scaled = item[0] * inv
            epoch = int(scaled) if scaled < _EPOCH_CAP else int(_EPOCH_CAP)
            bucket = buckets.get(epoch)
            if bucket is None:
                buckets[epoch] = [item]
                heapq.heappush(self._epochs, epoch)
            else:
                bucket.append(item)


#: The default queue every :class:`~repro.simkit.simulator.Simulator`,
#: :class:`~repro.simkit.network.MeshNetwork`, and serve
#: :class:`~repro.serve.clock.VirtualClock` instantiates.
EventQueue = CalendarEventQueue
