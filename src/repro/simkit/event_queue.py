"""Deterministic binary-heap event queue.

Events at equal timestamps fire in insertion order (a monotone sequence
number breaks ties), so simulations are bit-for-bit reproducible — the
property every debugging session and every regression test relies on.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable


class EventQueue:
    """Min-heap of (time, seq, action) with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = itertools.count()
        self._live: set[int] = set()
        self._cancelled: set[int] = set()

    def push(self, time: float, action: Callable[[], Any]) -> int:
        """Schedule ``action`` at ``time``; returns a cancellable handle."""
        time = float(time)
        # NaN compares False against everything, so a plain ``time < 0``
        # guard lets NaN through and silently corrupts heap ordering.
        if not math.isfinite(time) or time < 0:
            raise ValueError(f"event time must be finite and non-negative, got {time}")
        seq = next(self._seq)
        self._live.add(seq)
        heapq.heappush(self._heap, (time, seq, action))
        return seq

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (lazy removal on pop).

        Cancelling a handle that already fired, was already cancelled,
        or never existed is a no-op — only live handles move to the
        cancelled set, so ``__len__`` can never undercount.
        """
        if handle in self._live:
            self._live.discard(handle)
            self._cancelled.add(handle)

    def pop(self) -> tuple[float, Callable[[], Any]] | None:
        """Earliest live event, or None when empty."""
        while self._heap:
            time, seq, action = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._live.discard(seq)
            return time, action
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap:
            time, seq, _ = self._heap[0]
            if seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(seq)
                continue
            return time
        return None

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
