"""Experiment T2: rate of successful minimal routing per fault model.

For random safe (source, destination) pairs, a model "succeeds" when it
admits a minimal path:

* ``oracle`` — a monotone path through non-faulty nodes exists (ground
  truth upper bound);
* ``mcc``    — a monotone path through MCC-safe nodes exists; the paper
  proves this equals the oracle (property P1/P2), so any daylight
  between the two columns is a reproduction failure;
* ``rfb``    — a monotone path outside the rectangular faulty blocks
  exists (the best prior model);
* ``ecube``  — the deterministic dimension-order path is fault-free.

Pairs whose endpoints fall inside a model's fault region count as
failures for that model (the model refuses the routing), which is
exactly how the fault-block literature scores success rates.

Each fault pattern is one :class:`repro.parallel.sharding.PatternTask`:
its verdicts come from one :meth:`RoutingService.feasible_batch` call
per model, which shares each direction class's ``LabelledGrid`` and one
reverse flood per distinct destination across the whole pattern.  The
pattern axis itself is sharded across processes by
:func:`repro.parallel.sharding.run_sweep` — ``run_success_rate(...,
workers=N)`` — with seed-stable results for any worker/shard count.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel \
        --experiment success_rate --shape 12 12 12 \
        --fault-counts 20 60 120 --trials 8 --pairs 200 --workers 4

``--pairs`` sets the pair workload sampled per pattern; ``--workers``
the process count (1 = in-process); ``--shards`` overrides the
partition count for shard-invariance checks.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.baselines.ecube import ecube_succeeds
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.service import make_service
from repro.util.records import ResultTable
from repro.util.rng import SeedLike


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """Score one fault pattern: per-model success counts over its pairs."""
    rng = task.rng()
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    batch = []
    for _ in range(int(spec.param("pairs", 200))):
        pair = sample_safe_pair(~mask, rng=rng, min_distance=2)
        if pair is not None:
            batch.append(pair)
    record = {"pairs": len(batch), "oracle": 0, "mcc": 0, "rfb": 0, "ecube": 0}
    if not batch:
        return record
    for model in ("oracle", "mcc", "rfb"):
        verdicts = make_service(mask, mode=model).feasible_batch(batch)
        record[model] = int(verdicts.sum())
    record["ecube"] = int(
        sum(ecube_succeeds(mask, source, dest) for source, dest in batch)
    )
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern counts into the success-rate table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T2 minimal-routing success rate — {dims} mesh, "
            f"{spec.trials} fault patterns x {spec.param('pairs', 200)} pairs"
        )
    )
    mesh_size = float(np.prod(spec.shape))
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        total = sum(r["pairs"] for r in rows)
        wins = {
            model: sum(r[model] for r in rows)
            for model in ("oracle", "mcc", "rfb", "ecube")
        }
        table.add(
            faults=count,
            fault_rate=count / mesh_size,
            pairs=total,
            oracle=wins["oracle"] / total if total else 0.0,
            mcc=wins["mcc"] / total if total else 0.0,
            rfb=wins["rfb"] / total if total else 0.0,
            ecube=wins["ecube"] / total if total else 0.0,
        )
    return table


def run_success_rate(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 200,
    trials: int = 10,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep fault counts; success rate per model over random pairs.

    ``workers`` shards the fault patterns across processes (1 =
    in-process serial fallback); results are identical for any value.
    ``checkpoint`` journals per-pattern records for resumable runs.
    """
    spec = SweepSpec(
        experiment="success_rate",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"pairs": pairs},
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
