"""Experiment T2: rate of successful minimal routing per fault model.

For random safe (source, destination) pairs, a model "succeeds" when it
admits a minimal path:

* ``oracle`` — a monotone path through non-faulty nodes exists (ground
  truth upper bound);
* ``mcc``    — a monotone path through MCC-safe nodes exists; the paper
  proves this equals the oracle (property P1/P2), so any daylight
  between the two columns is a reproduction failure;
* ``rfb``    — a monotone path outside the rectangular faulty blocks
  exists (the best prior model);
* ``ecube``  — the deterministic dimension-order path is fault-free.

Pairs whose endpoints fall inside a model's fault region count as
failures for that model (the model refuses the routing), which is
exactly how the fault-block literature scores success rates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ecube import ecube_succeeds
from repro.baselines.rfb import rfb_unsafe
from repro.core.labelling import label_grid
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.orientation import Orientation
from repro.routing.oracle import minimal_path_exists
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_rngs


def _model_success(
    fault_mask: np.ndarray,
    unsafe_by_orientation: dict,
    source: tuple,
    dest: tuple,
    model_unsafe,
) -> bool:
    """Monotone-path existence through the model's safe nodes."""
    orientation = Orientation.for_pair(source, dest, fault_mask.shape)
    key = orientation.signs
    if key not in unsafe_by_orientation:
        unsafe_by_orientation[key] = model_unsafe(orientation)
    unsafe = unsafe_by_orientation[key]
    s = orientation.map_coord(source)
    d = orientation.map_coord(dest)
    if unsafe[s] or unsafe[d]:
        return False
    return minimal_path_exists(~unsafe, s, d)


def run_success_rate(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 200,
    trials: int = 10,
    seed: SeedLike = 2005,
) -> ResultTable:
    """Sweep fault counts; success rate per model over random pairs."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    table = ResultTable(
        title=(
            f"T2 minimal-routing success rate — {dims} mesh, "
            f"{trials} fault patterns x {pairs} pairs"
        )
    )
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        wins = {"oracle": 0, "mcc": 0, "rfb": 0, "ecube": 0}
        total = 0
        for _ in range(trials):
            mask = random_fault_mask(shape, count, rng=rng)
            rfb = rfb_unsafe(mask)
            mcc_by_o: dict = {}
            rfb_by_o: dict = {}

            def mcc_unsafe(orientation):
                return label_grid(mask, orientation).unsafe_mask

            def rfb_unsafe_oriented(orientation):
                return orientation.to_canonical(rfb)

            for _ in range(pairs):
                pair = sample_safe_pair(~mask, rng=rng, min_distance=2)
                if pair is None:
                    continue
                source, dest = pair
                total += 1
                orientation = Orientation.for_pair(source, dest, shape)
                open_canon = orientation.to_canonical(~mask)
                if minimal_path_exists(
                    open_canon,
                    orientation.map_coord(source),
                    orientation.map_coord(dest),
                ):
                    wins["oracle"] += 1
                if _model_success(mask, mcc_by_o, source, dest, mcc_unsafe):
                    wins["mcc"] += 1
                if _model_success(mask, rfb_by_o, source, dest, rfb_unsafe_oriented):
                    wins["rfb"] += 1
                if ecube_succeeds(mask, source, dest):
                    wins["ecube"] += 1
        table.add(
            faults=count,
            fault_rate=count / float(np.prod(shape)),
            pairs=total,
            oracle=wins["oracle"] / total if total else 0.0,
            mcc=wins["mcc"] / total if total else 0.0,
            rfb=wins["rfb"] / total if total else 0.0,
            ecube=wins["ecube"] / total if total else 0.0,
        )
    return table
