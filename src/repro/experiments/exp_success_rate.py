"""Experiment T2: rate of successful minimal routing per fault model.

For random safe (source, destination) pairs, a model "succeeds" when it
admits a minimal path:

* ``oracle`` — a monotone path through non-faulty nodes exists (ground
  truth upper bound);
* ``mcc``    — a monotone path through MCC-safe nodes exists; the paper
  proves this equals the oracle (property P1/P2), so any daylight
  between the two columns is a reproduction failure;
* ``rfb``    — a monotone path outside the rectangular faulty blocks
  exists (the best prior model);
* ``ecube``  — the deterministic dimension-order path is fault-free.

Pairs whose endpoints fall inside a model's fault region count as
failures for that model (the model refuses the routing), which is
exactly how the fault-block literature scores success rates.

The verdicts come from :class:`repro.routing.batch.RoutingService`:
all pairs of a trial are checked with one ``feasible_batch`` call per
model, which shares each direction class's ``LabelledGrid`` and one
reverse flood per distinct destination across the whole trial.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ecube import ecube_succeeds
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.routing.batch import RoutingService
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_rngs


def run_success_rate(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 200,
    trials: int = 10,
    seed: SeedLike = 2005,
) -> ResultTable:
    """Sweep fault counts; success rate per model over random pairs."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    table = ResultTable(
        title=(
            f"T2 minimal-routing success rate — {dims} mesh, "
            f"{trials} fault patterns x {pairs} pairs"
        )
    )
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        wins = {"oracle": 0, "mcc": 0, "rfb": 0, "ecube": 0}
        total = 0
        for _ in range(trials):
            mask = random_fault_mask(shape, count, rng=rng)
            batch = []
            for _ in range(pairs):
                pair = sample_safe_pair(~mask, rng=rng, min_distance=2)
                if pair is not None:
                    batch.append(pair)
            total += len(batch)
            if not batch:
                continue
            for model in ("oracle", "mcc", "rfb"):
                verdicts = RoutingService(mask, mode=model).feasible_batch(batch)
                wins[model] += int(verdicts.sum())
            wins["ecube"] += sum(
                ecube_succeeds(mask, source, dest) for source, dest in batch
            )
        table.add(
            faults=count,
            fault_rate=count / float(np.prod(shape)),
            pairs=total,
            oracle=wins["oracle"] / total if total else 0.0,
            mcc=wins["mcc"] / total if total else 0.0,
            rfb=wins["rfb"] / total if total else 0.0,
            ecube=wins["ecube"] / total if total else 0.0,
        )
    return table
