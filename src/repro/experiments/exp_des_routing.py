"""Experiment T4: end-to-end routing on the discrete-event network.

Routes random canonical-frame pairs through the *distributed* stack and
scores delivery, minimality (hop count = Manhattan distance), agreement
with the oracle, and per-query message cost (detection + routing).

The oracle ground truth comes from one batched
:meth:`RoutingService.feasible_batch` call per fault pattern (one
reverse flood per distinct destination) instead of a fresh flood per
query.  Each fault pattern — its DES pipeline build plus query replay —
is one sharded :class:`repro.parallel.sharding.PatternTask`;
``run_des_routing(..., workers=N)`` fans the patterns out across
processes with seed-stable results for any worker/shard count.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel \
        --experiment des_routing --shape 7 7 7 \
        --fault-counts 2 6 12 --trials 3 --queries 30 --workers 4

``--queries`` sets the routed queries per pattern; ``--workers`` the
process count (1 = in-process); ``--shards`` overrides the partition
count for shard-invariance checks.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.labelling import label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask
from repro.mesh.coords import manhattan
from repro.mesh.topology import Mesh
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.routing.batch import RoutingService
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

_COUNTERS = (
    "delivered",
    "infeasible",
    "stuck",
    "minimal",
    "oracle_ok",
    "agree",
    "total",
)


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, float]:
    """Build one pattern's DES pipeline and replay its query workload."""
    rng = task.rng()
    record: dict[str, float] = {name: 0 for name in _COUNTERS}
    record["msg_cost"] = 0.0
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    safe = label_grid(mask).safe_mask
    if not safe.any():
        return record
    pipe = DistributedMCCPipeline(Mesh(spec.shape), mask).build()
    cells = np.argwhere(safe)
    batch = []
    statuses = []
    for _ in range(int(spec.param("queries", 30))):
        i, j = rng.integers(0, cells.shape[0], size=2)
        s = tuple(int(c) for c in np.minimum(cells[i], cells[j]))
        d = tuple(int(c) for c in np.maximum(cells[i], cells[j]))
        if not (safe[s] and safe[d]) or s == d:
            continue
        record["total"] += 1
        before = pipe.net.stats.total_messages
        result = pipe.route(s, d)
        record["msg_cost"] += pipe.net.stats.total_messages - before
        batch.append((s, d))
        status = result["status"]
        statuses.append(status)
        if status == "delivered":
            record["delivered"] += 1
            if len(result["path"]) - 1 == manhattan(s, d):
                record["minimal"] += 1
        elif status == "infeasible":
            record["infeasible"] += 1
        else:
            record["stuck"] += 1
    if batch:
        wants = RoutingService(mask, mode="oracle").feasible_batch(batch)
        record["oracle_ok"] += int(wants.sum())
        record["agree"] += sum(
            (status == "delivered") == bool(want)
            for status, want in zip(statuses, wants)
        )
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern DES counters into the T4 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T4 DES routing — {dims} mesh, {spec.trials} patterns x "
            f"{spec.param('queries', 30)} queries"
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {
            name: sum(r[name] for r in rows)
            for name in (*_COUNTERS, "msg_cost")
        }
        total = sums["total"]
        delivered = sums["delivered"]
        table.add(
            faults=count,
            queries=int(total),
            delivered=delivered / total if total else 0.0,
            oracle=sums["oracle_ok"] / total if total else 0.0,
            agreement=sums["agree"] / total if total else 0.0,
            minimal_of_delivered=(
                sums["minimal"] / delivered if delivered else 1.0
            ),
            stuck=int(sums["stuck"]),
            msgs_per_query=sums["msg_cost"] / total if total else 0.0,
        )
    return table


def run_des_routing(
    shape: tuple[int, ...],
    fault_counts: list[int],
    queries: int = 30,
    trials: int = 3,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
) -> ResultTable:
    """Sweep fault counts; distributed routing quality metrics.

    ``workers`` shards the fault patterns (pipeline build + query
    replay) across processes (1 = in-process serial fallback); results
    are identical for any value.  ``checkpoint`` journals per-pattern
    records for resumable runs.
    """
    spec = SweepSpec(
        experiment="des_routing",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"queries": queries},
    )
    return run_sweep(spec, workers=workers, shards=shards, checkpoint=checkpoint)
