"""Experiment T4: end-to-end routing on the discrete-event network.

Routes random canonical-frame pairs through the *distributed* stack and
scores delivery, minimality (hop count = Manhattan distance), agreement
with the oracle, and per-query message cost (detection + routing).

The oracle ground truth comes from one batched
:meth:`RoutingService.feasible_batch` call per fault pattern (one
reverse flood per distinct destination) instead of a fresh flood per
query.
"""

from __future__ import annotations

import numpy as np

from repro.core.labelling import SAFE, label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask
from repro.mesh.coords import manhattan
from repro.mesh.topology import Mesh
from repro.routing.batch import RoutingService
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, make_rng, spawn_rngs


def run_des_routing(
    shape: tuple[int, ...],
    fault_counts: list[int],
    queries: int = 30,
    trials: int = 3,
    seed: SeedLike = 2005,
) -> ResultTable:
    """Sweep fault counts; distributed routing quality metrics."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    table = ResultTable(
        title=f"T4 DES routing — {dims} mesh, {trials} patterns x {queries} queries"
    )
    mesh = Mesh(shape)
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        delivered = infeasible = stuck = oracle_ok = agree = 0
        minimal = 0
        msg_cost = 0.0
        total = 0
        for _ in range(trials):
            mask = random_fault_mask(shape, count, rng=rng)
            labelled = label_grid(mask)
            safe = labelled.safe_mask
            if not safe.any():
                continue
            pipe = DistributedMCCPipeline(mesh, mask).build()
            cells = np.argwhere(safe)
            batch = []
            statuses = []
            for _ in range(queries):
                i, j = rng.integers(0, cells.shape[0], size=2)
                s = tuple(int(c) for c in np.minimum(cells[i], cells[j]))
                d = tuple(int(c) for c in np.maximum(cells[i], cells[j]))
                if not (safe[s] and safe[d]) or s == d:
                    continue
                total += 1
                before = pipe.net.stats.total_messages
                result = pipe.route(s, d)
                msg_cost += pipe.net.stats.total_messages - before
                batch.append((s, d))
                status = result["status"]
                statuses.append(status)
                if status == "delivered":
                    delivered += 1
                    if len(result["path"]) - 1 == manhattan(s, d):
                        minimal += 1
                elif status == "infeasible":
                    infeasible += 1
                else:
                    stuck += 1
            if batch:
                wants = RoutingService(mask, mode="oracle").feasible_batch(batch)
                oracle_ok += int(wants.sum())
                agree += sum(
                    (status == "delivered") == bool(want)
                    for status, want in zip(statuses, wants)
                )
        table.add(
            faults=count,
            queries=total,
            delivered=delivered / total if total else 0.0,
            oracle=oracle_ok / total if total else 0.0,
            agreement=agree / total if total else 0.0,
            minimal_of_delivered=minimal / delivered if delivered else 1.0,
            stuck=stuck,
            msgs_per_query=msg_cost / total if total else 0.0,
        )
    return table
