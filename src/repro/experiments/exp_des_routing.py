"""Experiment T4: end-to-end routing on the discrete-event network.

Routes random canonical-frame pairs through the *distributed* stack and
scores delivery, minimality (hop count = Manhattan distance), agreement
with the oracle, and per-query message cost (detection + routing).

The whole query batch of a pattern rides **one simulator run**: every
pair is submitted as a non-blocking query session
(:meth:`DistributedMCCPipeline.submit`) and a single
:meth:`~DistributedMCCPipeline.drain` resolves them all, with
per-query message cost taken from the network's session attribution —
element-wise identical (statuses, paths, and message counts) to the
retired blocking one-query-at-a-time loop, which
``benchmarks/bench_des_concurrent.py`` pins and times.  The oracle
ground truth comes from one batched
:meth:`RoutingService.feasible_batch` call per fault pattern (one
reverse flood per distinct destination) through the process-wide
content-addressed service cache
(:func:`repro.core.model_cache.cached_routing_service`), so revisited
patterns reuse their floods exactly like T5 reuses labellings.  Each
fault pattern — its DES pipeline build plus query replay — is one
sharded :class:`repro.parallel.sharding.PatternTask`;
``run_des_routing(..., workers=N)`` fans the patterns out across
processes with seed-stable results for any worker/shard count.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel \
        --experiment des_routing --shape 7 7 7 \
        --fault-counts 2 6 12 --trials 3 --queries 30 --workers 4

``--queries`` sets the routed queries per pattern; ``--workers`` the
process count (1 = in-process); ``--shards`` overrides the partition
count for shard-invariance checks.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.model_cache import cached_labelled
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask
from repro.mesh.coords import manhattan
from repro.mesh.topology import Mesh
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.service import make_service
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

_COUNTERS = (
    "delivered",
    "infeasible",
    "stuck",
    "minimal",
    "oracle_ok",
    "agree",
    "total",
)


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, float]:
    """Build one pattern's DES pipeline and run its query batch at once.

    The pair draws replay the retired serial loop's RNG stream exactly
    (routing never consumed random draws), then the whole batch routes
    concurrently through a single ``run_to_quiescence`` and is scored
    with one cached-service ``feasible_batch`` call — so the merged T4
    table is byte-identical to the serial implementation's.
    """
    rng = task.rng()
    record: dict[str, float] = {name: 0 for name in _COUNTERS}
    record["msg_cost"] = 0.0
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    safe = cached_labelled(mask).safe_mask
    if not safe.any():
        return record
    pipe = DistributedMCCPipeline(Mesh(spec.shape), mask).build()
    cells = np.argwhere(safe)
    batch = []
    for _ in range(int(spec.param("queries", 30))):
        i, j = rng.integers(0, cells.shape[0], size=2)
        s = tuple(int(c) for c in np.minimum(cells[i], cells[j]))
        d = tuple(int(c) for c in np.maximum(cells[i], cells[j]))
        if not (safe[s] and safe[d]) or s == d:
            continue
        record["total"] += 1
        batch.append((s, d))
    for s, d in batch:
        pipe.submit(s, d)
    results = pipe.drain()
    statuses = []
    for (s, d), result in zip(batch, results, strict=True):
        record["msg_cost"] += result["msgs"]
        status = result["status"]
        statuses.append(status)
        if status == "delivered":
            record["delivered"] += 1
            if len(result["path"]) - 1 == manhattan(s, d):
                record["minimal"] += 1
        elif status == "infeasible":
            record["infeasible"] += 1
        else:
            record["stuck"] += 1
    if batch:
        service = make_service(mask, mode="oracle", shared=True)
        wants = service.feasible_batch(batch)
        record["oracle_ok"] += int(wants.sum())
        record["agree"] += sum(
            (status == "delivered") == bool(want)
            for status, want in zip(statuses, wants, strict=True)
        )
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern DES counters into the T4 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T4 DES routing — {dims} mesh, {spec.trials} patterns x "
            f"{spec.param('queries', 30)} queries"
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {
            name: sum(r[name] for r in rows)
            for name in (*_COUNTERS, "msg_cost")
        }
        total = sums["total"]
        delivered = sums["delivered"]
        table.add(
            faults=count,
            queries=int(total),
            delivered=delivered / total if total else 0.0,
            oracle=sums["oracle_ok"] / total if total else 0.0,
            agreement=sums["agree"] / total if total else 0.0,
            minimal_of_delivered=(
                sums["minimal"] / delivered if delivered else 1.0
            ),
            stuck=int(sums["stuck"]),
            msgs_per_query=sums["msg_cost"] / total if total else 0.0,
        )
    return table


def run_des_routing(
    shape: tuple[int, ...],
    fault_counts: list[int],
    queries: int = 30,
    trials: int = 3,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep fault counts; distributed routing quality metrics.

    ``workers`` shards the fault patterns (pipeline build + query
    replay) across processes (1 = in-process serial fallback); results
    are identical for any value.  ``checkpoint`` journals per-pattern
    records for resumable runs.
    """
    spec = SweepSpec(
        experiment="des_routing",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"queries": queries},
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
