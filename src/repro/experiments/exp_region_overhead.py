"""Experiment T1: non-faulty nodes captured inside fault regions.

The paper's headline motivation: the MCC model is the *ultimate minimal
fault region*, so it should contain dramatically fewer non-faulty nodes
than the rectangular/cuboid faulty blocks — and the gap should widen
with fault rate and with dimension (block volume explodes in 3-D).

For each (mesh, fault count) grid point we report, averaged over
trials:

* ``mcc_nonfaulty`` — non-faulty nodes labelled unsafe (useless +
  can't-reach) in the canonical direction class;
* ``rfb_nonfaulty`` — non-faulty nodes inside merged faulty blocks;
* their ratio (RFB / MCC, the paper's improvement factor).

Each trial's fault pattern is one sharded
:class:`repro.parallel.sharding.PatternTask`; ``run_region_overhead(...,
workers=N)`` fans the patterns out across processes with seed-stable
results for any worker/shard count.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel \
        --experiment region_overhead --shape 12 12 12 \
        --fault-counts 20 60 120 --trials 40 --workers 4

``--workers`` sets the process count (1 = in-process); ``--shards``
overrides the partition count for shard-invariance checks.  The
clustered-fault variant is reachable through the Python API
(``run_region_overhead(..., clustered=True)``).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.baselines.rfb import rfb_unsafe
from repro.core.model_cache import cached_labelled
from repro.experiments.workloads import clustered_fault_mask, random_fault_mask
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.routing.batch import RoutingService
from repro.util.records import ResultTable
from repro.util.rng import SeedLike


def region_overhead_once(
    fault_mask: np.ndarray, service: RoutingService | None = None
) -> tuple[int, int]:
    """(mcc_nonfaulty, rfb_nonfaulty) for one fault pattern.

    Pass the :class:`RoutingService` that will route over this pattern
    to share its cached canonical-class labelling instead of labelling
    the grid a second time; with no service the grid is labelled
    directly (no wall construction).
    """
    labelled = (
        service.labelled() if service is not None else cached_labelled(fault_mask)
    )
    mcc_nonfaulty = int(labelled.unsafe_mask.sum() - fault_mask.sum())
    rfb = rfb_unsafe(fault_mask)
    rfb_nonfaulty = int(rfb.sum() - fault_mask.sum())
    return mcc_nonfaulty, rfb_nonfaulty


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """Region overhead of one sampled fault pattern."""
    rng = task.rng()
    if spec.param("clustered", False):
        mask = clustered_fault_mask(spec.shape, task.count, rng=rng)
    else:
        mask = random_fault_mask(spec.shape, task.count, rng=rng)
    mcc, rfb = region_overhead_once(mask)
    return {"mcc": mcc, "rfb": rfb}


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern overheads into the region-overhead table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    kind = "clustered" if spec.param("clustered", False) else "uniform"
    table = ResultTable(
        title=(
            f"T1 region overhead — {dims} mesh, {kind} faults, "
            f"{spec.trials} trials"
        )
    )
    mesh_size = float(np.prod(spec.shape))
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        mcc_avg = sum(r["mcc"] for r in rows) / spec.trials
        rfb_avg = sum(r["rfb"] for r in rows) / spec.trials
        table.add(
            faults=count,
            fault_rate=count / mesh_size,
            mcc_nonfaulty=mcc_avg,
            rfb_nonfaulty=rfb_avg,
            mcc_max=max((r["mcc"] for r in rows), default=0),
            rfb_max=max((r["rfb"] for r in rows), default=0),
            rfb_over_mcc=(rfb_avg / mcc_avg) if mcc_avg else float("inf"),
        )
    return table


def run_region_overhead(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 40,
    seed: SeedLike = 2005,
    clustered: bool = False,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep fault counts; average region overhead per model.

    ``workers`` shards the fault patterns across processes (1 =
    in-process serial fallback); results are identical for any value.
    ``checkpoint`` journals per-pattern records for resumable runs.
    """
    spec = SweepSpec(
        experiment="region_overhead",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"clustered": clustered},
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
