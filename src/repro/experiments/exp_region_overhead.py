"""Experiment T1: non-faulty nodes captured inside fault regions.

The paper's headline motivation: the MCC model is the *ultimate minimal
fault region*, so it should contain dramatically fewer non-faulty nodes
than the rectangular/cuboid faulty blocks — and the gap should widen
with fault rate and with dimension (block volume explodes in 3-D).

For each (mesh, fault count) grid point we report, averaged over
trials:

* ``mcc_nonfaulty`` — non-faulty nodes labelled unsafe (useless +
  can't-reach) in the canonical direction class;
* ``rfb_nonfaulty`` — non-faulty nodes inside merged faulty blocks;
* their ratio (RFB / MCC, the paper's improvement factor).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rfb import rfb_unsafe
from repro.core.labelling import label_grid
from repro.experiments.workloads import clustered_fault_mask, random_fault_mask
from repro.routing.batch import RoutingService
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_rngs


def region_overhead_once(
    fault_mask: np.ndarray, service: RoutingService | None = None
) -> tuple[int, int]:
    """(mcc_nonfaulty, rfb_nonfaulty) for one fault pattern.

    Pass the :class:`RoutingService` that will route over this pattern
    to share its cached canonical-class labelling instead of labelling
    the grid a second time; with no service the grid is labelled
    directly (no wall construction).
    """
    labelled = service.labelled() if service is not None else label_grid(fault_mask)
    mcc_nonfaulty = int(labelled.unsafe_mask.sum() - fault_mask.sum())
    rfb = rfb_unsafe(fault_mask)
    rfb_nonfaulty = int(rfb.sum() - fault_mask.sum())
    return mcc_nonfaulty, rfb_nonfaulty


def run_region_overhead(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 40,
    seed: SeedLike = 2005,
    clustered: bool = False,
) -> ResultTable:
    """Sweep fault counts; average region overhead per model."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    kind = "clustered" if clustered else "uniform"
    table = ResultTable(
        title=f"T1 region overhead — {dims} mesh, {kind} faults, {trials} trials"
    )
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        mcc_total = rfb_total = 0
        mcc_max = rfb_max = 0
        for _ in range(trials):
            if clustered:
                mask = clustered_fault_mask(shape, count, rng=rng)
            else:
                mask = random_fault_mask(shape, count, rng=rng)
            mcc, rfb = region_overhead_once(mask)
            mcc_total += mcc
            rfb_total += rfb
            mcc_max = max(mcc_max, mcc)
            rfb_max = max(rfb_max, rfb)
        mcc_avg = mcc_total / trials
        rfb_avg = rfb_total / trials
        table.add(
            faults=count,
            fault_rate=count / float(np.prod(shape)),
            mcc_nonfaulty=mcc_avg,
            rfb_nonfaulty=rfb_avg,
            mcc_max=mcc_max,
            rfb_max=rfb_max,
            rfb_over_mcc=(rfb_avg / mcc_avg) if mcc_avg else float("inf"),
        )
    return table
