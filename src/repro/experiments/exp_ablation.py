"""Sharded ablation sweeps A1/A4 from DESIGN.md's experiment index.

``benchmarks/bench_ablation.py`` used to iterate these trial loops
serially inline; they are now registered experiments on
:mod:`repro.parallel.sharding`, so they share the five tables' execution
path — ``workers=``/``shards=``/``checkpoint=`` all apply, and the CLI
reaches them as ``python -m repro.parallel a1`` / ``a4``.  Seeding
replays the retired loops' per-fault-count streams
(:func:`repro.parallel.sharding.legacy_rng`): the tables are
byte-identical to the pre-port numbers at any seed (pinned in
``tests/test_serial_parity.py``).

* **A1** (``ablation_rfb``) — block expansion vs local-closure-only RFB
  regions: non-faulty nodes captured by each variant, averaged over
  trials.
* **A4** (``ablation_4d``) — the paper's future work: higher-dimension
  meshes.  MCC labelling cost in a 4-D mesh (fills need 4 blocked
  neighbors, so captured nodes are rarer than in 3-D).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.baselines.rfb import rfb_unsafe
from repro.core.model_cache import cached_labelled
from repro.experiments.workloads import random_fault_mask
from repro.parallel.sharding import PatternTask, SweepSpec, legacy_rng, run_sweep
from repro.util.records import ResultTable
from repro.util.rng import SeedLike


def _dims(spec: SweepSpec) -> str:
    return f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"


def _mask_replay(spec: SweepSpec, task: PatternTask):
    return legacy_rng(
        spec, task, lambda r: random_fault_mask(spec.shape, task.count, rng=r)
    )


def evaluate_rfb_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """A1: non-faulty nodes captured by each RFB variant, one pattern."""
    mask = random_fault_mask(spec.shape, task.count, rng=_mask_replay(spec, task))
    return {
        "local": int(rfb_unsafe(mask, variant="local").sum() - task.count),
        "block": int(rfb_unsafe(mask, variant="block").sum() - task.count),
    }


def reduce_rfb_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern A1 capture counts into the variants table."""
    table = ResultTable(
        title=f"A1 RFB variants — {_dims(spec)} mesh, {spec.trials} trials"
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        table.add(
            faults=count,
            local_nonfaulty=sum(r["local"] for r in rows) / spec.trials,
            block_nonfaulty=sum(r["block"] for r in rows) / spec.trials,
        )
    return table


def run_rfb_variants(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 10,
    seed: SeedLike = 11,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """A1 sweep: average captured nodes per RFB variant per fault count."""
    spec = SweepSpec(
        experiment="ablation_rfb",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )


def evaluate_mesh4d_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """A4: MCC-captured non-faulty nodes in one (typically 4-D) pattern."""
    mask = random_fault_mask(spec.shape, task.count, rng=_mask_replay(spec, task))
    labelled = cached_labelled(mask)
    return {"mcc": int(labelled.unsafe_mask.sum() - task.count)}


def reduce_mesh4d_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern A4 capture counts into the extension table."""
    table = ResultTable(title=f"A4 higher-dimension extension — {_dims(spec)} mesh")
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        table.add(
            faults=count,
            mcc_nonfaulty=sum(r["mcc"] for r in rows) / spec.trials,
        )
    return table


def run_mesh4d_extension(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 5,
    seed: SeedLike = 41,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """A4 sweep: average MCC capture in higher-dimension meshes."""
    spec = SweepSpec(
        experiment="ablation_4d",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
