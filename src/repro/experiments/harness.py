"""One-call harness: regenerate the full evaluation (all tables).

``run_all(profile="quick")`` keeps everything laptop-fast (seconds to a
couple of minutes); ``profile="paper"`` uses the larger meshes and
trial counts recorded in DESIGN.md's experiment index.  All tiers —
including the churn comparisons T6 (mcc), T6r (rfb baseline), and T6d
(distributed stack vs both centralized models) — run through
:mod:`repro.parallel.sharding`, so ``workers=`` fans every table's
fault patterns across processes and ``checkpoint_dir=`` makes the
whole evaluation resumable (one journal per table).

:class:`ExperimentSpec` is the shared-kwargs contract every ``run_*``
entry point honours: the **workload** (shape, fault counts, trials,
seed, per-experiment knobs like ``pairs``/``queries``/``epochs``) is
fixed at construction, while the **execution** kwargs — ``workers``,
``shards``, ``checkpoint``, ``save``, ``trace``, ``mode`` — are passed to
:meth:`ExperimentSpec.run` and forwarded uniformly.  The
``python -m repro.parallel`` CLI and :func:`run_all` both dispatch
through it, so every tier accepts the same flags and builds its
:class:`~repro.parallel.sharding.SweepSpec` in exactly one place
(fingerprints are shared by construction).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.parallel.sharding import CLI_ALIASES, CLI_RUNNERS, _resolve
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

PROFILES = {
    "quick": {
        "shape2d": (16, 16),
        "shape3d": (8, 8, 8),
        "faults2d": [2, 6, 12, 24],
        "faults3d": [2, 8, 20, 40],
        "trials": 8,
        "pairs": 60,
        "des_shape": (7, 7, 7),
        "des_faults": [2, 6, 12],
        "des_trials": 2,
        "des_queries": 12,
        "churn_epochs": 4,
        "load_rates": [0.2, 0.6],
        "load_duration": 20.0,
    },
    "paper": {
        "shape2d": (32, 32),
        "shape3d": (16, 16, 16),
        "faults2d": [10, 26, 51, 102, 154],
        "faults3d": [20, 82, 205, 410],
        "trials": 40,
        "pairs": 300,
        "des_shape": (10, 10, 10),
        "des_faults": [5, 20, 50, 80],
        "des_trials": 3,
        "des_queries": 60,
        "churn_epochs": 8,
        "load_rates": [0.2, 0.5, 1.0, 2.0],
        "load_duration": 60.0,
    },
}


#: Execution kwargs shared by every experiment entry point.
SHARED_KWARGS = ("workers", "shards", "checkpoint", "save", "trace", "mode")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment invocation under the shared kwargs contract.

    ``experiment`` is a registered name from
    :data:`repro.parallel.sharding.CLI_RUNNERS` or a paper-table alias
    (``t1``–``t6``, ``a1``, ``a4``).  ``workload`` holds the
    per-experiment knobs (``pairs``, ``queries``, ``epochs``,
    ``churn``, ``des``) and is validated against the experiment's
    registered flag tuple at construction, so a typo'd knob fails
    before any work is done.  ``trials``/``seed`` default to the
    underlying ``run_*`` defaults when left ``None``.

    :meth:`run` forwards the execution kwargs — exactly
    :data:`SHARED_KWARGS` — to the experiment's ``run_*`` wrapper (the
    one place its :class:`~repro.parallel.sharding.SweepSpec` is
    built), so CLI- and Python-started runs of the same spec share
    checkpoints and fingerprints by construction.
    """

    experiment: str
    shape: tuple[int, ...]
    fault_counts: tuple[int, ...]
    trials: int | None = None
    seed: SeedLike | None = None
    workload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        name = self.resolved
        if name not in CLI_RUNNERS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; pick from "
                f"{sorted(CLI_RUNNERS)} or aliases {sorted(CLI_ALIASES)}"
            )
        _, flags = CLI_RUNNERS[name]
        allowed = set(flags) - {"mode"}  # mode is an execution kwarg
        unknown = set(self.workload) - allowed
        if unknown:
            raise ValueError(
                f"experiment {name!r} does not take workload knobs "
                f"{sorted(unknown)}; it takes {sorted(allowed)}"
            )

    @property
    def resolved(self) -> str:
        """The registered experiment name (aliases expanded)."""
        return CLI_ALIASES.get(self.experiment, self.experiment)

    def run(
        self,
        *,
        workers: int = 1,
        shards: int | None = None,
        checkpoint: str | None = None,
        save: str | None = None,
        trace: str | None = None,
        mode: str | None = None,
    ) -> ResultTable:
        """Execute via the experiment's ``run_*`` wrapper; return the table."""
        name = self.resolved
        runner_path, flags = CLI_RUNNERS[name]
        if mode is not None and "mode" not in flags:
            raise ValueError(
                f"experiment {name!r} does not take mode= (only the "
                "churn tiers route through a switchable online model)"
            )
        kwargs: dict[str, Any] = dict(self.workload)
        if self.trials is not None:
            kwargs["trials"] = self.trials
        if self.seed is not None:
            kwargs["seed"] = self.seed
        if mode is not None:
            kwargs["mode"] = mode
        return _resolve(runner_path)(
            tuple(self.shape),
            list(self.fault_counts),
            workers=workers,
            shards=shards,
            checkpoint=checkpoint,
            save=save,
            trace=trace,
            **kwargs,
        )


def run_all(
    profile: str = "quick",
    seed: int = 2005,
    workers: int = 1,
    checkpoint_dir: str | None = None,
) -> dict[str, ResultTable]:
    """Regenerate T1–T7 for 2-D and 3-D; returns tables keyed by id.

    ``workers`` shards every table's multi-pattern sweep across
    processes via :mod:`repro.parallel.sharding`; tables are identical
    for any value.  ``checkpoint_dir`` (created if missing) journals
    each table as ``<key>.jsonl`` so an interrupted evaluation resumes
    where it stopped — completed tables reduce straight from disk.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; pick from {list(PROFILES)}")
    p = PROFILES[profile]
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)

    def ckpt(key: str) -> str | None:
        if checkpoint_dir is None:
            return None
        return os.path.join(checkpoint_dir, f"{key}.jsonl")

    churn_spec = ExperimentSpec(
        "t6",
        p["shape3d"],
        tuple(p["faults3d"][:3]),
        trials=max(2, p["trials"] // 4),
        seed=seed,
        workload={"pairs": max(20, p["pairs"] // 5), "epochs": p["churn_epochs"]},
    )
    plan: dict[str, tuple[ExperimentSpec, str | None]] = {
        "T1a": (
            ExperimentSpec(
                "t1", p["shape2d"], tuple(p["faults2d"]),
                trials=p["trials"], seed=seed,
            ),
            None,
        ),
        "T1b": (
            ExperimentSpec(
                "t1", p["shape3d"], tuple(p["faults3d"]),
                trials=p["trials"], seed=seed,
            ),
            None,
        ),
        "T2a": (
            ExperimentSpec(
                "t2", p["shape2d"], tuple(p["faults2d"]),
                trials=max(2, p["trials"] // 4), seed=seed,
                workload={"pairs": p["pairs"]},
            ),
            None,
        ),
        "T2b": (
            ExperimentSpec(
                "t2", p["shape3d"], tuple(p["faults3d"]),
                trials=max(2, p["trials"] // 4), seed=seed,
                workload={"pairs": p["pairs"]},
            ),
            None,
        ),
        "T3": (
            ExperimentSpec(
                "t3", p["des_shape"], tuple(p["des_faults"]),
                trials=p["des_trials"], seed=seed,
            ),
            None,
        ),
        "T4": (
            ExperimentSpec(
                "t4", p["des_shape"], tuple(p["des_faults"]),
                trials=p["des_trials"], seed=seed,
                workload={"queries": p["des_queries"]},
            ),
            None,
        ),
        "T5": (
            ExperimentSpec(
                "t5",
                p["shape3d"] if profile == "quick" else (10, 10, 10),
                tuple(p["faults3d"][:3]),
                trials=max(2, p["trials"] // 4),
                seed=seed,
                workload={"pairs": max(20, p["pairs"] // 5)},
            ),
            None,
        ),
        "T6": (churn_spec, None),
        "T6r": (churn_spec, "rfb"),
        "T7": (
            ExperimentSpec(
                "t7",
                p["des_shape"],
                tuple(p["des_faults"][:2]),
                trials=p["des_trials"],
                seed=seed,
                workload={
                    "rates": list(p["load_rates"]),
                    "duration": p["load_duration"],
                },
            ),
            None,
        ),
        "T6d": (
            ExperimentSpec(
                "t6",
                p["des_shape"],
                tuple(p["des_faults"][:2]),
                trials=p["des_trials"],
                seed=seed,
                workload={
                    "pairs": max(8, p["pairs"] // 10),
                    "epochs": max(3, p["churn_epochs"] // 2),
                    "des": True,
                },
            ),
            None,
        ),
    }
    return {
        key: spec.run(workers=workers, checkpoint=ckpt(key), mode=mode)
        for key, (spec, mode) in plan.items()
    }


def render_all(tables: dict[str, ResultTable]) -> str:
    return "\n\n".join(f"[{key}]\n{table.render()}" for key, table in tables.items())
