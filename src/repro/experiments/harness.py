"""One-call harness: regenerate the full evaluation (all tables).

``run_all(profile="quick")`` keeps everything laptop-fast (seconds to a
couple of minutes); ``profile="paper"`` uses the larger meshes and
trial counts recorded in DESIGN.md's experiment index.  All tiers —
including the churn comparisons T6 (mcc), T6r (rfb baseline), and T6d
(distributed stack vs both centralized models) — run through
:mod:`repro.parallel.sharding`, so ``workers=`` fans every table's
fault patterns across processes and ``checkpoint_dir=`` makes the
whole evaluation resumable (one journal per table).
"""

from __future__ import annotations

import os

from repro.experiments.exp_churn import run_churn
from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_fidelity import run_fidelity
from repro.experiments.exp_protocol_overhead import run_protocol_overhead
from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.exp_success_rate import run_success_rate
from repro.util.records import ResultTable

PROFILES = {
    "quick": {
        "shape2d": (16, 16),
        "shape3d": (8, 8, 8),
        "faults2d": [2, 6, 12, 24],
        "faults3d": [2, 8, 20, 40],
        "trials": 8,
        "pairs": 60,
        "des_shape": (7, 7, 7),
        "des_faults": [2, 6, 12],
        "des_trials": 2,
        "des_queries": 12,
        "churn_epochs": 4,
    },
    "paper": {
        "shape2d": (32, 32),
        "shape3d": (16, 16, 16),
        "faults2d": [10, 26, 51, 102, 154],
        "faults3d": [20, 82, 205, 410],
        "trials": 40,
        "pairs": 300,
        "des_shape": (10, 10, 10),
        "des_faults": [5, 20, 50, 80],
        "des_trials": 3,
        "des_queries": 60,
        "churn_epochs": 8,
    },
}


def run_all(
    profile: str = "quick",
    seed: int = 2005,
    workers: int = 1,
    checkpoint_dir: str | None = None,
) -> dict[str, ResultTable]:
    """Regenerate T1–T6 for 2-D and 3-D; returns tables keyed by id.

    ``workers`` shards every table's multi-pattern sweep across
    processes via :mod:`repro.parallel.sharding`; tables are identical
    for any value.  ``checkpoint_dir`` (created if missing) journals
    each table as ``<key>.jsonl`` so an interrupted evaluation resumes
    where it stopped — completed tables reduce straight from disk.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; pick from {list(PROFILES)}")
    p = PROFILES[profile]
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)

    def ckpt(key: str) -> str | None:
        if checkpoint_dir is None:
            return None
        return os.path.join(checkpoint_dir, f"{key}.jsonl")

    tables: dict[str, ResultTable] = {}
    tables["T1a"] = run_region_overhead(
        p["shape2d"], p["faults2d"], trials=p["trials"], seed=seed,
        workers=workers, checkpoint=ckpt("T1a"),
    )
    tables["T1b"] = run_region_overhead(
        p["shape3d"], p["faults3d"], trials=p["trials"], seed=seed,
        workers=workers, checkpoint=ckpt("T1b"),
    )
    tables["T2a"] = run_success_rate(
        p["shape2d"], p["faults2d"], pairs=p["pairs"], trials=max(2, p["trials"] // 4),
        seed=seed, workers=workers, checkpoint=ckpt("T2a"),
    )
    tables["T2b"] = run_success_rate(
        p["shape3d"], p["faults3d"], pairs=p["pairs"], trials=max(2, p["trials"] // 4),
        seed=seed, workers=workers, checkpoint=ckpt("T2b"),
    )
    tables["T3"] = run_protocol_overhead(
        p["des_shape"], p["des_faults"], trials=p["des_trials"], seed=seed,
        workers=workers, checkpoint=ckpt("T3"),
    )
    tables["T4"] = run_des_routing(
        p["des_shape"], p["des_faults"], queries=p["des_queries"],
        trials=p["des_trials"], seed=seed, workers=workers,
        checkpoint=ckpt("T4"),
    )
    tables["T5"] = run_fidelity(
        p["shape3d"] if profile == "quick" else (10, 10, 10),
        p["faults3d"][:3],
        pairs=max(20, p["pairs"] // 5),
        trials=max(2, p["trials"] // 4),
        seed=seed,
        workers=workers,
        checkpoint=ckpt("T5"),
    )
    tables["T6"] = run_churn(
        p["shape3d"],
        p["faults3d"][:3],
        pairs=max(20, p["pairs"] // 5),
        epochs=p["churn_epochs"],
        trials=max(2, p["trials"] // 4),
        seed=seed,
        workers=workers,
        checkpoint=ckpt("T6"),
    )
    tables["T6r"] = run_churn(
        p["shape3d"],
        p["faults3d"][:3],
        pairs=max(20, p["pairs"] // 5),
        epochs=p["churn_epochs"],
        trials=max(2, p["trials"] // 4),
        seed=seed,
        workers=workers,
        checkpoint=ckpt("T6r"),
        mode="rfb",
    )
    tables["T6d"] = run_churn(
        p["des_shape"],
        p["des_faults"][:2],
        pairs=max(8, p["pairs"] // 10),
        epochs=max(3, p["churn_epochs"] // 2),
        trials=p["des_trials"],
        seed=seed,
        workers=workers,
        checkpoint=ckpt("T6d"),
        des=True,
    )
    return tables


def render_all(tables: dict[str, ResultTable]) -> str:
    return "\n\n".join(f"[{key}]\n{table.render()}" for key, table in tables.items())
