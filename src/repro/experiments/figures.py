"""Regeneration of the paper's illustrative figures (ASCII form).

Each ``figure_*`` function returns a printable string; the benchmark
``benchmarks/bench_figures.py`` and ``examples/paper_figures.py`` print
them.  Scenes follow the paper exactly where coordinates are given
(Figure 5's fault list) and reconstruct representative scenes otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rfb import rfb_labelled
from repro.core.components import extract_mccs
from repro.core.detection import detect_canonical
from repro.core.model_cache import cached_labelled
from repro.core.walls import build_walls
from repro.mesh.regions import mask_of_cells
from repro.routing.engine import AdaptiveRouter
from repro.viz.ascii_art import render_grid, render_route, render_slices

# The paper's Figure 5 fault pattern (Section 4).
FIG5_FAULTS = [
    (5, 5, 6), (6, 5, 5), (5, 6, 5), (6, 7, 5),
    (7, 6, 5), (5, 4, 7), (4, 5, 7), (7, 8, 4),
]

# A Figure-1-style staircase scene in 2-D.
FIG1_FAULTS = [(3, 6), (4, 5), (5, 4), (6, 3), (3, 3)]


def figure1(shape: tuple[int, int] = (10, 10)) -> str:
    """RFB vs MCC regions for a 2-D staircase fault pattern (Fig. 1)."""
    mask = mask_of_cells(FIG1_FAULTS, shape)
    mcc = cached_labelled(mask)
    rfb = rfb_labelled(mask)
    mcc_nonfaulty = int(mcc.unsafe_mask.sum() - mask.sum())
    rfb_nonfaulty = int(rfb.unsafe_mask.sum() - mask.sum())
    return (
        "Figure 1(b): rectangular faulty block "
        f"(non-faulty captured: {rfb_nonfaulty})\n"
        + render_grid(rfb)
        + "\n\nFigure 1(c): MCC for routing to the upper-right "
        f"(non-faulty captured: {mcc_nonfaulty})\n"
        + render_grid(mcc)
    )


def figure5(shape: tuple[int, int, int] = (10, 10, 10)) -> str:
    """The paper's 3-D example: labelling, hole, and the two MCCs."""
    mask = mask_of_cells(FIG5_FAULTS, shape)
    labelled = cached_labelled(mask)
    mccs = extract_mccs(labelled, connectivity=2)  # the paper's grouping
    lines = [
        "Figure 5(b): MCCs for the 8-fault pattern.",
        f"  (5,5,5) labelled: {labelled.status[5, 5, 5]} (2 = useless, as in the paper)",
        f"  (5,5,7) labelled: {labelled.status[5, 5, 7]} (3 = can't-reach, as in the paper)",
        f"  hole (6,6,5) stays safe: {bool(labelled.safe_mask[6, 6, 5])}",
        f"  MCC count (paper grouping): {len(mccs)} "
        f"(paper: 2 — one singleton (7,8,4), one with the rest)",
    ]
    for mcc in mccs:
        cells = sorted(map(tuple, mcc.cells.tolist()))
        lines.append(f"  MCC #{mcc.index}: {cells}")
    lines.append(render_slices(labelled, axis=2))
    return "\n".join(lines)


def figure3_walls(shape: tuple[int, int] = (12, 12)) -> str:
    """Boundary construction with chain merging (Fig. 3 style)."""
    faults = [(6, 7), (7, 6), (3, 3), (4, 2)]
    mask = mask_of_cells(faults, shape)
    labelled = cached_labelled(mask)
    mccs = extract_mccs(labelled)
    walls = build_walls(mccs)
    overlays = {}
    for wall in walls:
        for axis, records in wall.records.items():
            for cell in np.argwhere(records):
                overlays[tuple(int(c) for c in cell)] = "|" if axis == 0 else "-"
    chains = {
        f"MCC#{w.mcc_index} dim {'XYZ'[w.dim]}": w.chain
        for w in walls
        if len(w.chain) > 1
    }
    return (
        "Figure 3: boundary walls (records: '|' guards +X, '-' guards +Y); "
        f"merged chains: {chains or 'none'}\n" + render_grid(labelled, overlays)
    )


def figure4_7_detection(three_d: bool = False) -> str:
    """Feasibility-check samples: one YES case and one NO case."""
    if not three_d:
        yes = mask_of_cells([(4, 4), (4, 5), (5, 4)], (9, 9))
        # A staircase anchored at the left edge shadows columns 0..2:
        # destinations above it are unreachable while s stays safe.
        no = mask_of_cells([(0, 6), (1, 5), (2, 4)], (9, 9))
        out = []
        for name, mask, dest in (("YES", yes, (8, 8)), ("NO", no, (2, 8))):
            labelled = cached_labelled(mask)
            report = detect_canonical(labelled.unsafe_mask, (0, 0), dest)
            out.append(
                f"Figure 4 ({name} case): feasible={report.feasible} "
                f"messages={report.messages}\n"
                + render_route(labelled, report.trails[list(report.trails)[0]])
            )
        return "\n\n".join(out)
    yes = mask_of_cells([(3, 3, 3), (3, 3, 4), (3, 4, 3)], (7, 7, 7))
    labelled = cached_labelled(yes)
    report = detect_canonical(labelled.unsafe_mask, (0, 0, 0), (6, 6, 6))
    return (
        f"Figure 7 (3-D feasibility): feasible={report.feasible} "
        f"messages={report.messages}"
    )


def figure8_routing() -> str:
    """3-D routing samples around the Figure 5 fault pattern."""
    mask = mask_of_cells(FIG5_FAULTS, (10, 10, 10))
    router = AdaptiveRouter(mask, mode="mcc")
    out = ["Figure 8: adaptive minimal routes around the Figure-5 MCCs."]
    for source, dest in (((0, 0, 0), (9, 9, 9)), ((2, 2, 2), (8, 8, 8))):
        result = router.route(source, dest)
        out.append(
            f"  {source} -> {dest}: delivered={result.delivered} "
            f"hops={result.hops} (Manhattan {sum(abs(a-b) for a, b in zip(source, dest, strict=True))})"
        )
        out.append("  path: " + " ".join(str(c) for c in result.path))
    return "\n".join(out)
