"""The paper's evaluation: workloads, harness, experiments T1–T6, figures.

Each experiment module exposes a ``run_*`` function returning a
:class:`repro.util.records.ResultTable`; the benchmark harness under
``benchmarks/`` regenerates every table/figure from DESIGN.md's index
and prints the rows the paper's evaluation reports.
"""

from repro.experiments.workloads import (
    random_fault_mask,
    clustered_fault_mask,
    sample_safe_pair,
)
from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.exp_success_rate import run_success_rate
from repro.experiments.exp_protocol_overhead import run_protocol_overhead
from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_fidelity import run_fidelity
from repro.experiments.exp_ablation import run_mesh4d_extension, run_rfb_variants
from repro.experiments.exp_churn import run_churn
from repro.experiments.harness import ExperimentSpec, run_all

__all__ = [
    "ExperimentSpec",
    "run_all",
    "random_fault_mask",
    "clustered_fault_mask",
    "sample_safe_pair",
    "run_region_overhead",
    "run_success_rate",
    "run_protocol_overhead",
    "run_des_routing",
    "run_fidelity",
    "run_churn",
    "run_rfb_variants",
    "run_mesh4d_extension",
]
