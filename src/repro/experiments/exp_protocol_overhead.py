"""Experiment T3: message overhead of the distributed protocols.

The point of the paper's "limited global information" design: protocol
cost scales with the fault regions, not the mesh.  We run the full
distributed pipeline (labelling → identification → boundaries) on
random fault patterns and report messages per phase and per kind.
"""

from __future__ import annotations

from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask
from repro.mesh.topology import Mesh
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_rngs


def run_protocol_overhead(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 5,
    seed: SeedLike = 2005,
) -> ResultTable:
    """Sweep fault counts; mean protocol message counts per phase."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    table = ResultTable(
        title=f"T3 protocol message overhead — {dims} mesh, {trials} trials"
    )
    mesh = Mesh(shape)
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        sums: dict[str, float] = {}
        for _ in range(trials):
            mask = random_fault_mask(shape, count, rng=rng)
            pipe = DistributedMCCPipeline(mesh, mask).build()
            for kind, n in pipe.message_counts().items():
                sums[kind] = sums.get(kind, 0.0) + n
        row = {k: v / trials for k, v in sorted(sums.items())}
        table.add(
            faults=count,
            label=row.get("LABEL", 0.0),
            edge=row.get("EDGE", 0.0),
            ident=row.get("IDENT", 0.0) + row.get("IDENT_BACK", 0.0),
            shape=row.get("SHAPE", 0.0),
            wall=row.get("WALL", 0.0),
            total=row.get("phase[labelling]", 0.0)
            + row.get("phase[identification+boundaries]", 0.0),
            per_node=(
                row.get("phase[labelling]", 0.0)
                + row.get("phase[identification+boundaries]", 0.0)
            )
            / mesh.size,
        )
    return table
