"""Experiment T3: message overhead of the distributed protocols.

The point of the paper's "limited global information" design: protocol
cost scales with the fault regions, not the mesh.  We run the full
distributed pipeline (labelling → identification → boundaries) on
random fault patterns and report messages per phase and per kind.

Each fault pattern — one pipeline build plus its message audit — is one
sharded :class:`repro.parallel.sharding.PatternTask`;
``run_protocol_overhead(..., workers=N)`` fans the patterns out across
processes and ``checkpoint=`` makes long sweeps resumable.  Seeding
replays the retired serial loop's per-fault-count stream
(:func:`repro.parallel.sharding.legacy_rng`), so the sharded tables are
byte-identical to the pre-port serial outputs at any seed (pinned in
``tests/test_serial_parity.py``).

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel t3 --shape 9 9 9 \
        --fault-counts 4 12 24 --trials 3 --workers 4 \
        --checkpoint out/t3.jsonl
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask
from repro.mesh.topology import Mesh
from repro.parallel.sharding import PatternTask, SweepSpec, legacy_rng, run_sweep
from repro.util.records import ResultTable
from repro.util.rng import SeedLike


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, Any]:
    """Protocol message counts for one sampled fault pattern."""
    rng = legacy_rng(
        spec, task, lambda r: random_fault_mask(spec.shape, task.count, rng=r)
    )
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    pipe = DistributedMCCPipeline(Mesh(spec.shape), mask).build()
    return {"msgs": {kind: int(n) for kind, n in pipe.message_counts().items()}}


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern message counts into the T3 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=f"T3 protocol message overhead — {dims} mesh, {spec.trials} trials"
    )
    mesh_size = int(np.prod(spec.shape))
    for count_index, count in enumerate(spec.fault_counts):
        sums: dict[str, float] = {}
        for record in records:
            if record["_count_index"] != count_index:
                continue
            for kind, n in record["msgs"].items():
                sums[kind] = sums.get(kind, 0.0) + n
        row = {k: v / spec.trials for k, v in sorted(sums.items())}
        table.add(
            faults=count,
            label=row.get("LABEL", 0.0),
            edge=row.get("EDGE", 0.0),
            ident=row.get("IDENT", 0.0) + row.get("IDENT_BACK", 0.0),
            shape=row.get("SHAPE", 0.0),
            wall=row.get("WALL", 0.0),
            total=row.get("phase[labelling]", 0.0)
            + row.get("phase[identification+boundaries]", 0.0),
            per_node=(
                row.get("phase[labelling]", 0.0)
                + row.get("phase[identification+boundaries]", 0.0)
            )
            / mesh_size,
        )
    return table


def run_protocol_overhead(
    shape: tuple[int, ...],
    fault_counts: list[int],
    trials: int = 5,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep fault counts; mean protocol message counts per phase.

    ``workers`` shards the fault patterns across processes (1 =
    in-process serial fallback); results are identical for any value
    and byte-identical to the retired serial implementation.
    ``checkpoint`` journals per-pattern records for resumable runs.
    """
    spec = SweepSpec(
        experiment="protocol_overhead",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
