"""Experiment T7: latency vs offered load on contended links.

The earlier DES tiers (T3/T4/T6) hop every message with a fixed delay
over infinite-bandwidth links, so the fault-information models can only
differ in *message counts*.  T7 gives each directed link finite capacity
(:class:`~repro.simkit.network.MeshNetwork` ``link_capacity``) and
offers an open-loop Poisson workload, producing the NoC-style
latency-percentile-vs-offered-load curves and per-mode saturation
throughput under faults — the first tier where the models can differ in
*latency*.

Per fault pattern and offered rate the same Poisson session schedule
(seeded arrivals of safe source/dest pairs) is scored two ways:

* **Frame replay per mode** (``mcc`` / ``rfb`` / ``oracle``): the
  centralized service routes the whole batch once, and each delivered
  path replays as a source-routed data frame injected at its arrival
  time into a fresh contended mesh.  All modes carry identical offered
  traffic, so latency differences are purely path-choice under
  contention (longer detours occupy more links for longer).  Sessions
  the mode fails to deliver are counted as failed and inject nothing.
* **Protocol-in-the-loop** (``des`` columns): the sessions are
  submitted to a :class:`~repro.distributed.pipeline
  .DistributedMCCPipeline` at their arrival times (``submit(..., at=)``)
  over the *same* contended links, so detection and walker messages
  queue against each other — end-to-end session latency including
  control-plane congestion.

Command line::

    PYTHONPATH=src python -m repro.parallel t7 --shape 8 8 8 \
        --fault-counts 10 30 --trials 4 --rates 0.2 0.5 1.0 \
        --duration 40 --capacity 1 --workers 4

The merged table is byte-identical for any worker/shard count and for
checkpoint resume (``benchmarks/bench_load_sweep.py`` gates this).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.model_cache import cached_labelled
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.topology import Mesh
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.service import make_service
from repro.simkit.network import MeshNetwork
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

#: Routing modes compared by the frame replay (``blind`` has no
#: feasibility story worth a latency curve).
MODES = ("mcc", "rfb", "oracle")

DEFAULT_RATES = (0.2, 0.5, 1.0)
DEFAULT_DURATION = 40.0
DEFAULT_CAPACITY = 1


def poisson_schedule(
    rng: np.random.Generator,
    rate: float,
    duration: float,
    safe_mask: np.ndarray,
) -> list[tuple[float, tuple[int, ...], tuple[int, ...]]]:
    """Open-loop Poisson arrivals of canonical safe pairs.

    Inter-arrival gaps are exponential with mean ``1/rate``; each
    arrival draws a safe (source, dest) pair at Manhattan distance >= 1
    and canonicalizes it (source <= dest component-wise, the pipeline's
    frame).  Arrivals whose pair draw fails (degenerate masks) are
    skipped, not redrawn — the offered process stays Poisson.
    """
    out: list[tuple[float, tuple[int, ...], tuple[int, ...]]] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t > duration:
            return out
        pair = sample_safe_pair(safe_mask, rng, min_distance=1)
        if pair is None:
            continue
        a, b = pair
        s = tuple(int(min(x, y)) for x, y in zip(a, b, strict=True))
        d = tuple(int(max(x, y)) for x, y in zip(a, b, strict=True))
        out.append((t, s, d))


def _replay_frames(
    mesh: Mesh,
    mask: np.ndarray,
    capacity: int,
    schedule: Sequence[tuple[float, tuple[int, ...], tuple[int, ...]]],
    paths: Sequence[list | None],
) -> dict[str, Any]:
    """Inject one frame per delivered path at its arrival time."""
    net = MeshNetwork(mesh, mask, link_capacity=capacity)
    injected = 0
    for (t, _s, _d), path in zip(schedule, paths, strict=True):
        if path is None:
            continue
        injected += 1
        net.sim.schedule(t, lambda p=path: net.inject_frame(p))
    net.run_to_quiescence()
    delivered = net.stats.frames_delivered
    return {
        "delivered": delivered,
        "failed": len(schedule) - delivered,
        "lat": list(net.stats.frame_latencies),
        "makespan": net.sim.now,
        "qpeak": int(net.stats.gauges.get("link_peak_depth", 0)),
    }


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, Any]:
    """One fault pattern's full load sweep (all rates, all modes).

    Everything derives from the task's private generator, consumed in a
    fixed order, so any shard/worker layout replays the identical
    schedules and the record is a pure function of the sweep seed.
    """
    rng = task.rng()
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    rates = [float(r) for r in spec.param("rates", DEFAULT_RATES)]
    duration = float(spec.param("duration", DEFAULT_DURATION))
    capacity = int(spec.param("capacity", DEFAULT_CAPACITY))
    safe = cached_labelled(mask).safe_mask
    record: dict[str, Any] = {"rates": []}
    if int(safe.sum()) < 2:
        for rate in rates:
            record["rates"].append(
                {"rate": rate, "offered": 0, "modes": {}, "des": None}
            )
        return record
    mesh = Mesh(spec.shape)
    services = {mode: make_service(mask, mode=mode, shared=True) for mode in MODES}
    pipe = DistributedMCCPipeline(mesh, mask).build()
    # Protocol state is built on uncontended links (its fixed point is
    # the byte-identical T3/T4 one); only the load phase contends.
    pipe.net.set_link_capacity(capacity)
    for rate in rates:
        schedule = poisson_schedule(rng, rate, duration, safe)
        per_rate: dict[str, Any] = {
            "rate": rate,
            "offered": len(schedule),
            "modes": {},
        }
        pairs = [(s, d) for _t, s, d in schedule]
        for mode in MODES:
            results = services[mode].route_batch(pairs)
            paths = [
                [tuple(c) for c in res.path] if res.delivered else None
                for res in results
            ]
            per_rate["modes"][mode] = _replay_frames(
                mesh, mask, capacity, schedule, paths
            )
        base = pipe.net.sim.now
        handles = [
            pipe.submit(s, d, strict=False, at=t) for t, s, d in schedule
        ]
        sessions = pipe.drain()
        lat = [
            r["latency"]
            for r in sessions
            if r["status"] == "delivered" and "latency" in r
        ]
        per_rate["des"] = {
            "delivered": sum(r["status"] == "delivered" for r in sessions),
            "failed": sum(r["status"] != "delivered" for r in sessions),
            "lat": lat,
            "elapsed": pipe.net.sim.now - base,
            "qpeak": int(pipe.net.stats.gauges.get("link_peak_depth", 0)),
        }
        del handles
        record["rates"].append(per_rate)
    return record


def _pct(lat: list[float], q: float) -> float:
    # obs.Histogram.percentile is the same np.percentile math (and
    # 0.0-when-empty convention) the serve layer uses — exact parity.
    hist = obs.Histogram("frame_latency")
    hist.values.extend(lat)
    return hist.percentile(q)


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern load records into the T7 table.

    One row per (fault count, offered rate); per-mode latency
    percentiles come from the latencies of every pattern merged in
    global task order, throughput is total delivered over total
    makespan, and ``sat_<mode>`` repeats the fault count's saturation
    throughput (max over rates) on each of its rows.
    """
    rates = [float(r) for r in spec.param("rates", DEFAULT_RATES)]
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T7 load sweep — {dims} mesh, capacity "
            f"{int(spec.param('capacity', DEFAULT_CAPACITY))}, "
            f"{spec.trials} patterns, duration "
            f"{float(spec.param('duration', DEFAULT_DURATION))}"
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        rate_stats: list[dict[str, Any]] = []
        for k, rate in enumerate(rates):
            offered = 0
            modes: dict[str, dict[str, Any]] = {
                m: {"delivered": 0, "failed": 0, "lat": [], "makespan": 0.0, "qpeak": 0}
                for m in MODES
            }
            des = {"delivered": 0, "failed": 0, "lat": [], "elapsed": 0.0, "qpeak": 0}
            for row in rows:
                per_rate = row["rates"][k]
                offered += per_rate["offered"]
                for m in MODES:
                    cell = per_rate["modes"].get(m)
                    if cell is None:
                        continue
                    modes[m]["delivered"] += cell["delivered"]
                    modes[m]["failed"] += cell["failed"]
                    modes[m]["lat"].extend(cell["lat"])
                    modes[m]["makespan"] += cell["makespan"]
                    modes[m]["qpeak"] = max(modes[m]["qpeak"], cell["qpeak"])
                cell = per_rate.get("des")
                if cell is not None:
                    des["delivered"] += cell["delivered"]
                    des["failed"] += cell["failed"]
                    des["lat"].extend(cell["lat"])
                    des["elapsed"] += cell["elapsed"]
                    des["qpeak"] = max(des["qpeak"], cell["qpeak"])
            rate_stats.append(
                {"rate": rate, "offered": offered, "modes": modes, "des": des}
            )
        sat = {
            m: max(
                (
                    rs["modes"][m]["delivered"] / rs["modes"][m]["makespan"]
                    for rs in rate_stats
                    if rs["modes"][m]["makespan"] > 0
                ),
                default=0.0,
            )
            for m in MODES
        }
        for rs in rate_stats:
            row: dict[str, Any] = {
                "faults": count,
                "rate": rs["rate"],
                "offered": rs["offered"],
            }
            for m in MODES:
                cell = rs["modes"][m]
                row[f"delivered_{m}"] = cell["delivered"]
                row[f"p50_{m}"] = _pct(cell["lat"], 50)
                row[f"p95_{m}"] = _pct(cell["lat"], 95)
                row[f"p99_{m}"] = _pct(cell["lat"], 99)
                row[f"thr_{m}"] = (
                    cell["delivered"] / cell["makespan"]
                    if cell["makespan"] > 0
                    else 0.0
                )
                row[f"qpeak_{m}"] = cell["qpeak"]
            for m in MODES:
                row[f"sat_{m}"] = sat[m]
            cell = rs["des"]
            row["des_delivered"] = cell["delivered"]
            row["des_p50"] = _pct(cell["lat"], 50)
            row["des_p99"] = _pct(cell["lat"], 99)
            row["des_thr"] = (
                cell["delivered"] / cell["elapsed"] if cell["elapsed"] > 0 else 0.0
            )
            table.add(**row)
    return table


def run_load_sweep(
    shape: tuple[int, ...],
    fault_counts: list[int],
    rates: Sequence[float] = DEFAULT_RATES,
    duration: float = DEFAULT_DURATION,
    capacity: int = DEFAULT_CAPACITY,
    trials: int = 3,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep offered load over fault counts on contended links.

    ``rates`` are offered session arrivals per time unit (open-loop
    Poisson), ``duration`` the arrival window per rate, ``capacity``
    the per-directed-link message capacity per ``link_delay``.  Shares
    the sharded runner's contract: byte-identical tables for any
    ``workers``/``shards`` split and for checkpoint resume.
    """
    spec = SweepSpec(
        experiment="load",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={
            "rates": [float(r) for r in rates],
            "duration": float(duration),
            "capacity": int(capacity),
        },
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
