"""Experiment T5: fidelity of the model's conditions and router.

Quantifies the paper's exactness claims against the oracle:

* ``cond_agree`` — Theorem 1/2 (merged Lemma 1) verdict vs monotone
  reachability, over random safe pairs (property P2);
* ``detect_agree`` — the operational detection walks vs the oracle;
* ``router_complete`` — fraction of feasible pairs where *every*
  adaptive choice sequence of the MCC-guided router reaches the
  destination (adversarial stuck-freedom, property P3);
* ``exclusion_exact`` — fraction of pairs where the MCC-guided
  candidate sets equal the oracle candidate sets at every reachable
  node ("fully adaptive": the model forbids nothing it shouldn't).

Each fault pattern — its condition evaluator, router, and pair workload
— is one sharded :class:`repro.parallel.sharding.PatternTask`;
``run_fidelity(..., workers=N)`` fans the patterns out across processes
and ``checkpoint=`` makes long sweeps resumable.  Seeding replays the
retired serial loop's per-fault-count stream (mask + pair draws only,
via :func:`repro.parallel.sharding.legacy_rng`), so the sharded tables
are byte-identical to the pre-port serial outputs at any seed (pinned
in ``tests/test_serial_parity.py``).

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel t5 --shape 8 8 8 \
        --fault-counts 8 25 --trials 3 --pairs 30 --workers 4 \
        --checkpoint out/t5.jsonl
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.conditions import ConditionEvaluator
from repro.core.detection import detection_feasible_batch
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.orientation import Orientation
from repro.parallel.sharding import PatternTask, SweepSpec, legacy_rng, run_sweep
from repro.routing.engine import AdaptiveRouter, explore_all_choices
from repro.routing.oracle import group_jobs_by_class, probe_reverse_reachable
from repro.util.records import ResultTable
from repro.util.rng import SeedLike


def _batched_reach(open_for_class, pairs, shape, keep: bool = False):
    """Monotone-reachability verdicts for many mesh-frame pairs.

    Groups the pairs by direction class and runs each class through the
    destination-grouped flood kernel
    (:func:`repro.routing.oracle.probe_reverse_reachable`) — the
    batched form of the per-pair ``minimal_path_exists`` floods the
    serial evaluator used.  ``open_for_class(orientation)`` supplies
    the canonical open mask (ground truth: non-faulty; condition form:
    labelled-safe).  With ``keep=True`` the per-destination reach masks
    are returned too, keyed ``(signs, dest)``, for reuse as oracle
    exclusion records.
    """
    verdicts = np.zeros(len(pairs), dtype=bool)
    kept: dict[tuple, np.ndarray] = {}
    for orientation, jobs in group_jobs_by_class(pairs, shape):
        class_kept: dict[tuple, np.ndarray] | None = {} if keep else None
        probe_reverse_reachable(
            open_for_class(orientation), jobs, verdicts, keep=class_kept
        )
        if keep:
            for dest, reach in class_kept.items():
                kept[(orientation.signs, dest)] = reach
    return verdicts, kept


def _candidate_sets_match(
    router: AdaptiveRouter, source: tuple, dest: tuple, blocked: np.ndarray
) -> bool:
    """MCC candidate sets == oracle candidate sets on reachable cells.

    ``blocked`` is the precomputed oracle exclusion record for the
    pair's (class, destination) — shared across pairs by the batched
    reach pass instead of re-flooded per pair.
    """
    orientation = Orientation.for_pair(source, dest, router.fault_mask.shape)
    s = orientation.map_coord(source)
    d = orientation.map_coord(dest)
    model = router._model_for(orientation)
    stack, seen = [s], {s}
    while stack:
        pos = stack.pop()
        if pos == d:
            continue
        mcc_cands = set(model.candidates(pos, d))
        oracle_cands = set()
        for axis in range(len(pos)):
            if pos[axis] >= d[axis]:
                continue
            nxt = list(pos)
            nxt[axis] += 1
            if not blocked[tuple(nxt)]:
                oracle_cands.add(axis)
        if mcc_cands != oracle_cands:
            return False
        for axis in sorted(mcc_cands):
            nxt = list(pos)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return True


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """Model-vs-oracle agreement counters for one fault pattern.

    The pair workload is drawn exactly as the retired serial loop drew
    it (RNG parity), then scored in batches: ground truth and the
    condition form each run one batched reverse flood per destination
    group (:func:`_batched_reach`), detection goes through
    :func:`detection_feasible_batch`, and the oracle reach masks are
    reused as the exclusion records of the candidate-set comparison —
    no per-pair floods anywhere.  The counters are byte-identical to
    the per-pair evaluation (pinned in tests/test_serial_parity.py).
    """
    shape = spec.shape
    pairs = int(spec.param("pairs", 60))

    def replay(rng):
        # One earlier trial's draws: its mask, then its full pair loop.
        mask = random_fault_mask(shape, task.count, rng=rng)
        for _ in range(pairs):
            sample_safe_pair(~mask, rng=rng, min_distance=2)

    rng = legacy_rng(spec, task, replay)
    mask = random_fault_mask(shape, task.count, rng=rng)
    evaluator = ConditionEvaluator(mask)
    router = AdaptiveRouter(mask, mode="mcc")
    record = {
        "cond_agree": 0,
        "detect_agree": 0,
        "total": 0,
        "feasible": 0,
        "router_complete": 0,
        "exclusion_exact": 0,
    }
    batch = []
    for _ in range(pairs):
        pair = sample_safe_pair(~mask, rng=rng, min_distance=2)
        if pair is None or not evaluator.endpoint_safe(*pair):
            continue
        batch.append(pair)
    record["total"] = len(batch)
    if not batch:
        return record
    wants, oracle_reach = _batched_reach(
        lambda o: o.to_canonical(~mask), batch, shape, keep=True
    )
    conds, _ = _batched_reach(
        lambda o: evaluator.for_orientation(o)[0].safe_mask, batch, shape
    )
    detects = detection_feasible_batch(mask, batch)
    record["cond_agree"] = int((conds == wants).sum())
    record["detect_agree"] = int((detects == wants).sum())
    for i, (source, dest) in enumerate(batch):
        if not wants[i]:
            continue
        record["feasible"] += 1
        ok, _ = explore_all_choices(router, source, dest)
        record["router_complete"] += ok
        orientation = Orientation.for_pair(source, dest, shape)
        blocked = ~oracle_reach[
            (orientation.signs, orientation.map_coord(dest))
        ]
        record["exclusion_exact"] += _candidate_sets_match(
            router, source, dest, blocked
        )
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern agreement counters into the T5 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(title=f"T5 model fidelity vs oracle — {dims} mesh")
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {
            key: sum(r[key] for r in rows)
            for key in (
                "cond_agree",
                "detect_agree",
                "total",
                "feasible",
                "router_complete",
                "exclusion_exact",
            )
        }
        total = sums["total"]
        feasible = sums["feasible"]
        table.add(
            faults=count,
            pairs=total,
            cond_agree=sums["cond_agree"] / total if total else 1.0,
            detect_agree=sums["detect_agree"] / total if total else 1.0,
            feasible=feasible,
            router_complete=(
                sums["router_complete"] / feasible if feasible else 1.0
            ),
            exclusion_exact=(
                sums["exclusion_exact"] / feasible if feasible else 1.0
            ),
        )
    return table


def run_fidelity(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 60,
    trials: int = 5,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
) -> ResultTable:
    """Sweep fault counts; agreement rates between model and oracle.

    ``workers`` shards the fault patterns across processes (1 =
    in-process serial fallback); results are identical for any value
    and byte-identical to the retired serial implementation.
    ``checkpoint`` journals per-pattern records for resumable runs.
    """
    spec = SweepSpec(
        experiment="fidelity",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"pairs": pairs},
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
