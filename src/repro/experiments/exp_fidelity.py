"""Experiment T5: fidelity of the model's conditions and router.

Quantifies the paper's exactness claims against the oracle:

* ``cond_agree`` — Theorem 1/2 (merged Lemma 1) verdict vs monotone
  reachability, over random safe pairs (property P2);
* ``detect_agree`` — the operational detection walks vs the oracle;
* ``router_complete`` — fraction of feasible pairs where *every*
  adaptive choice sequence of the MCC-guided router reaches the
  destination (adversarial stuck-freedom, property P3);
* ``exclusion_exact`` — fraction of pairs where the MCC-guided
  candidate sets equal the oracle candidate sets at every reachable
  node ("fully adaptive": the model forbids nothing it shouldn't).
"""

from __future__ import annotations

from repro.core.conditions import ConditionEvaluator
from repro.core.detection import detection_feasible
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.orientation import Orientation
from repro.routing.engine import AdaptiveRouter, explore_all_choices
from repro.routing.oracle import minimal_path_exists, reverse_reachable
from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_rngs


def _candidate_sets_match(
    router: AdaptiveRouter, source: tuple, dest: tuple
) -> bool:
    """MCC candidate sets == oracle candidate sets on reachable cells."""
    orientation = Orientation.for_pair(source, dest, router.fault_mask.shape)
    s = orientation.map_coord(source)
    d = orientation.map_coord(dest)
    model = router._model_for(orientation)
    open_mask = ~model.labelled.fault_mask
    blocked = ~reverse_reachable(open_mask, d)
    stack, seen = [s], {s}
    while stack:
        pos = stack.pop()
        if pos == d:
            continue
        mcc_cands = set(model.candidates(pos, d))
        oracle_cands = set()
        for axis in range(len(pos)):
            if pos[axis] >= d[axis]:
                continue
            nxt = list(pos)
            nxt[axis] += 1
            if not blocked[tuple(nxt)]:
                oracle_cands.add(axis)
        if mcc_cands != oracle_cands:
            return False
        for axis in mcc_cands:
            nxt = list(pos)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return True


def run_fidelity(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 60,
    trials: int = 5,
    seed: SeedLike = 2005,
) -> ResultTable:
    """Sweep fault counts; agreement rates between model and oracle."""
    dims = f"{len(shape)}-D {'x'.join(map(str, shape))}"
    table = ResultTable(
        title=f"T5 model fidelity vs oracle — {dims} mesh"
    )
    rngs = spawn_rngs(seed, len(fault_counts))
    for count, rng in zip(fault_counts, rngs):
        cond_agree = detect_agree = total = 0
        feasible_pairs = router_complete = exclusion_exact = 0
        for _ in range(trials):
            mask = random_fault_mask(shape, count, rng=rng)
            evaluator = ConditionEvaluator(mask)
            router = AdaptiveRouter(mask, mode="mcc")
            for _ in range(pairs):
                pair = sample_safe_pair(~mask, rng=rng, min_distance=2)
                if pair is None or not evaluator.endpoint_safe(*pair):
                    continue
                source, dest = pair
                total += 1
                orientation = Orientation.for_pair(source, dest, shape)
                want = minimal_path_exists(
                    orientation.to_canonical(~mask),
                    orientation.map_coord(source),
                    orientation.map_coord(dest),
                )
                cond_agree += evaluator.exists(source, dest) == want
                detect_agree += detection_feasible(mask, source, dest) == want
                if want:
                    feasible_pairs += 1
                    ok, _ = explore_all_choices(router, source, dest)
                    router_complete += ok
                    exclusion_exact += _candidate_sets_match(router, source, dest)
        table.add(
            faults=count,
            pairs=total,
            cond_agree=cond_agree / total if total else 1.0,
            detect_agree=detect_agree / total if total else 1.0,
            feasible=feasible_pairs,
            router_complete=(
                router_complete / feasible_pairs if feasible_pairs else 1.0
            ),
            exclusion_exact=(
                exclusion_exact / feasible_pairs if feasible_pairs else 1.0
            ),
        )
    return table
