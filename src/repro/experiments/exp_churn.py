"""Experiment T6: routing under fault churn (online dynamic-fault model).

The paper evaluates static fault patterns; T6 measures the regime the
:mod:`repro.online` subsystem exists for — faults arriving and healing
*while traffic flows* (the dynamic-fault operating mode of the 3D-NoC
fault-management literature).  Each fault pattern seeds one
:class:`OnlineRoutingService`; every epoch then

1. samples a batch of pairs among currently healthy nodes and queues
   them with :meth:`OnlineRoutingService.submit` (traffic "in flight"),
2. applies one churn event — alternating injection and repair of
   ``churn`` cells — which flushes the queued batch at the epoch it was
   submitted under and relabels incrementally,
3. scores delivery plus the event's relabel cost (dirty cells swept,
   full-recompute fallbacks) and the reach-cache retention of the
   scoped invalidation.

Each pattern (initial mask + its whole churn history) is one sharded
:class:`repro.parallel.sharding.PatternTask` — every draw comes from
the task's private stream, so ``run_churn(..., workers=N)`` is
seed-stable for any worker/shard count, and ``checkpoint=`` makes long
churn sweeps resumable like every other tier.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel t6 --shape 12 12 12 \
        --fault-counts 20 60 --trials 4 --pairs 100 --epochs 6 \
        --churn 2 --workers 4
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.online import OnlineRoutingService
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

_COUNTERS = (
    "pairs",
    "delivered",
    "infeasible",
    "stuck",
    "events",
    "dirty_cells",
    "full_recomputes",
    "label_delta",
    "evicted",
    "retained",
)


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """Run one pattern's churn history; delivery + relabel-cost counters."""
    rng = task.rng()
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    online = OnlineRoutingService(mask, mode="mcc")
    pairs = int(spec.param("pairs", 60))
    epochs = int(spec.param("epochs", 6))
    churn = int(spec.param("churn", 2))
    record = {name: 0 for name in _COUNTERS}
    for epoch in range(epochs):
        submitted_at = online.epoch
        for _ in range(pairs):
            pair = sample_safe_pair(~online.fault_mask, rng=rng, min_distance=2)
            if pair is not None:
                online.submit(*pair)
        current = online.fault_mask
        if epoch % 2 == 0:
            candidates = np.argwhere(~current)
        else:
            candidates = np.argwhere(current)
        k = min(churn, len(candidates))
        if k > 0:
            picks = rng.choice(len(candidates), size=k, replace=False)
            cells = [tuple(int(v) for v in candidates[i]) for i in picks]
            event = (
                online.inject(cells) if epoch % 2 == 0 else online.repair(cells)
            )
            record["events"] += 1
            record["dirty_cells"] += event.dirty_cells
            record["full_recomputes"] += event.full_recomputes
            record["label_delta"] += abs(event.label_delta)
        else:
            online.flush()
        for result in online.take_completed().values():
            # Queued queries are answered at their submission epoch.
            assert result.epoch == submitted_at
            record["pairs"] += 1
            if result.delivered:
                record["delivered"] += 1
            elif result.feasible is False:
                record["infeasible"] += 1
            else:
                record["stuck"] += 1
    record["evicted"] = int(online.router.evicted)
    record["retained"] = int(online.router.retained)
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern churn counters into the T6 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T6 routing under churn — {dims} mesh, "
            f"{spec.param('epochs', 6)} epochs x "
            f"{spec.param('pairs', 60)} pairs, "
            f"churn {spec.param('churn', 2)}"
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {name: sum(r[name] for r in rows) for name in _COUNTERS}
        total = sums["pairs"]
        events = sums["events"]
        probes = sums["evicted"] + sums["retained"]
        table.add(
            faults=count,
            pairs=int(total),
            delivered=sums["delivered"] / total if total else 0.0,
            infeasible=sums["infeasible"] / total if total else 0.0,
            stuck=int(sums["stuck"]),
            relabel_cells_per_event=(
                sums["dirty_cells"] / events if events else 0.0
            ),
            label_delta_per_event=(
                sums["label_delta"] / events if events else 0.0
            ),
            full_recomputes=int(sums["full_recomputes"]),
            cache_retained=sums["retained"] / probes if probes else 1.0,
        )
    return table


def run_churn(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 60,
    epochs: int = 6,
    churn: int = 2,
    trials: int = 4,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
) -> ResultTable:
    """Sweep fault counts; delivery and relabel cost under churn.

    ``pairs`` queries queue per epoch, ``epochs`` alternating
    inject/repair events of ``churn`` cells churn each pattern.
    ``workers`` shards the patterns across processes (1 = in-process
    serial fallback); results are identical for any value.
    ``checkpoint`` journals per-pattern records for resumable runs.
    """
    spec = SweepSpec(
        experiment="churn",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"pairs": pairs, "epochs": epochs, "churn": churn},
    )
    return run_sweep(spec, workers=workers, shards=shards, checkpoint=checkpoint)
