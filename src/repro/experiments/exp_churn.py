"""Experiment T6: routing under fault churn (online dynamic-fault model).

The paper evaluates static fault patterns; T6 measures the regime the
:mod:`repro.online` subsystem exists for — faults arriving and healing
*while traffic flows* (the dynamic-fault operating mode of the 3D-NoC
fault-management literature).  Each fault pattern seeds one
:class:`OnlineRoutingService`; every epoch then

1. samples a batch of pairs among currently healthy nodes and queues
   them with :meth:`OnlineRoutingService.submit` (traffic "in flight"),
2. applies one churn event drawn from a shared
   :class:`~repro.online.FaultEventStream` — alternating injection and
   repair of ``churn`` cells — which flushes the queued batch at the
   epoch it was submitted under and relabels incrementally,
3. scores delivery plus the event's relabel cost (dirty cells swept,
   full-recompute fallbacks) and the reach-cache retention of the
   scoped invalidation.

``mode`` selects the fault-information model the service maintains
under churn: the paper's ``"mcc"`` (default) or the baseline ``"rfb"``
(incremental block-local recompute) — the first direct comparison of
the two models in a *dynamic* fault regime.

The ``--des`` variant (experiment ``churn_des``) drives the
**distributed stack** with the same event stream: every epoch submits
the same canonical pairs to a churn-aware
:class:`~repro.distributed.pipeline.DistributedMCCPipeline` (query
sessions drained at their submission epoch, incremental
re-stabilization scoped to the event's dirty cone) *and* to
centralized mcc/rfb services, so one table scores the message-passing
protocol next to both centralized models under identical churn.

Each pattern (initial mask + its whole churn history) is one sharded
:class:`repro.parallel.sharding.PatternTask` — every draw comes from
the task's private stream, so ``run_churn(..., workers=N)`` is
seed-stable for any worker/shard count, and ``checkpoint=`` makes long
churn sweeps resumable like every other tier.

Command line (flags shared with the other sweeps)::

    PYTHONPATH=src python -m repro.parallel t6 --shape 12 12 12 \
        --fault-counts 20 60 --trials 4 --pairs 100 --epochs 6 \
        --churn 2 --workers 4 [--mode rfb] [--des]
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.workloads import random_fault_mask, sample_safe_pair
from repro.mesh.topology import Mesh
from repro.online import FaultEventStream
from repro.service import make_service
from repro.parallel.sharding import PatternTask, SweepSpec, run_sweep
from repro.util.records import ResultTable
from repro.util.rng import SeedLike

_COUNTERS = (
    "pairs",
    "delivered",
    "infeasible",
    "stuck",
    "events",
    "dirty_cells",
    "full_recomputes",
    "label_delta",
    "evicted",
    "retained",
)

_DES_COUNTERS = (
    "pairs",
    "des_delivered",
    "des_infeasible",
    "des_stuck",
    "mcc_delivered",
    "rfb_delivered",
    "agree",
    "events",
    "stabilize_msgs",
    "restart_cells",
    "query_msgs",
)


def evaluate_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """Run one pattern's churn history; delivery + relabel-cost counters."""
    rng = task.rng()
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    online = make_service(mask, mode=str(spec.param("mode", "mcc")), online=True)
    pairs = int(spec.param("pairs", 60))
    epochs = int(spec.param("epochs", 6))
    stream = FaultEventStream(int(spec.param("churn", 2)), rng)
    record = {name: 0 for name in _COUNTERS}
    for epoch in range(epochs):
        submitted_at = online.epoch
        for _ in range(pairs):
            pair = sample_safe_pair(~online.fault_mask, rng=rng, min_distance=2)
            if pair is not None:
                online.submit(*pair)
        drawn = stream.next_event(online.fault_mask, epoch)
        if drawn is not None:
            event = (
                online.inject(drawn.cells)
                if drawn.kind == "inject"
                else online.repair(drawn.cells)
            )
            record["events"] += 1
            record["dirty_cells"] += event.dirty_cells
            record["full_recomputes"] += event.full_recomputes
            record["label_delta"] += abs(event.label_delta)
        else:
            online.flush()
        for result in online.take_completed().values():
            # Queued queries are answered at their submission epoch.
            assert result.epoch == submitted_at
            record["pairs"] += 1
            if result.delivered:
                record["delivered"] += 1
            elif result.feasible is False:
                record["infeasible"] += 1
            else:
                record["stuck"] += 1
    record["evicted"] = int(online.router.evicted)
    record["retained"] = int(online.router.retained)
    return record


def evaluate_des_pattern(spec: SweepSpec, task: PatternTask) -> dict[str, int]:
    """One churn history through the DES stack *and* both online models.

    The distributed pipeline and the two centralized services apply the
    same drawn events, so their fault masks evolve identically; every
    epoch's pair batch is canonicalized (the distributed protocol
    operates in the canonical direction class) and submitted to all
    three backends, making the delivery columns directly comparable.
    """
    rng = task.rng()
    mask = random_fault_mask(spec.shape, task.count, rng=rng)
    pipe = DistributedMCCPipeline(Mesh(spec.shape), mask.copy()).build()
    svc_mcc = make_service(mask, mode="mcc", online=True)
    svc_rfb = make_service(mask, mode="rfb", online=True)
    pairs = int(spec.param("pairs", 60))
    epochs = int(spec.param("epochs", 6))
    stream = FaultEventStream(int(spec.param("churn", 2)), rng)
    record = {name: 0 for name in _DES_COUNTERS}
    for epoch in range(epochs):
        submitted_at = pipe.epoch
        batch: list[tuple] = []
        for _ in range(pairs):
            pair = sample_safe_pair(~pipe.fault_mask, rng=rng, min_distance=2)
            if pair is None:
                continue
            a, b = pair
            s = tuple(int(min(x, y)) for x, y in zip(a, b, strict=True))
            d = tuple(int(max(x, y)) for x, y in zip(a, b, strict=True))
            batch.append((s, d))
            pipe.submit(s, d, strict=False)
            svc_mcc.submit(s, d)
            svc_rfb.submit(s, d)
        drawn = stream.next_event(pipe.fault_mask, epoch)
        if drawn is not None:
            cells = list(drawn.cells)
            info = pipe.apply_event(drawn.kind, cells)
            if drawn.kind == "inject":
                svc_mcc.inject(cells)
                svc_rfb.inject(cells)
            else:
                svc_mcc.repair(cells)
                svc_rfb.repair(cells)
            des_results = info["flushed"]
            record["events"] += 1
            record["stabilize_msgs"] += info["messages"]
            record["restart_cells"] += info["region_cells"]
        else:
            des_results = pipe.drain()
            svc_mcc.flush()
            svc_rfb.flush()
        if not np.array_equal(pipe.fault_mask, svc_mcc.fault_mask):
            # Data-integrity guard, not a debug assumption: a mask
            # drift would silently pair incomparable verdicts below.
            raise RuntimeError("DES and online fault masks diverged")
        mcc_results = list(svc_mcc.take_completed().values())
        rfb_results = list(svc_rfb.take_completed().values())
        if not (len(des_results) == len(mcc_results) == len(rfb_results)):
            raise RuntimeError("backends resolved different batch sizes")
        for des, mcc, rfb in zip(des_results, mcc_results, rfb_results, strict=True):
            if des["epoch"] != submitted_at:
                raise RuntimeError(
                    "session answered at a different epoch than submitted"
                )
            record["pairs"] += 1
            record["query_msgs"] += des["msgs"]
            status = des["status"]
            if status == "delivered":
                record["des_delivered"] += 1
            elif status == "infeasible":
                record["des_infeasible"] += 1
            else:
                record["des_stuck"] += 1
            record["mcc_delivered"] += int(mcc.delivered)
            record["rfb_delivered"] += int(rfb.delivered)
            record["agree"] += int((status == "delivered") == mcc.delivered)
    return record


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern churn counters into the T6 table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    mode = str(spec.param("mode", "mcc"))
    table = ResultTable(
        title=(
            f"T6 routing under churn — {dims} mesh, "
            f"{spec.param('epochs', 6)} epochs x "
            f"{spec.param('pairs', 60)} pairs, "
            f"churn {spec.param('churn', 2)}"
            + (f", model {mode}" if mode != "mcc" else "")
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {name: sum(r[name] for r in rows) for name in _COUNTERS}
        total = sums["pairs"]
        events = sums["events"]
        probes = sums["evicted"] + sums["retained"]
        table.add(
            faults=count,
            pairs=int(total),
            delivered=sums["delivered"] / total if total else 0.0,
            infeasible=sums["infeasible"] / total if total else 0.0,
            stuck=int(sums["stuck"]),
            relabel_cells_per_event=(
                sums["dirty_cells"] / events if events else 0.0
            ),
            label_delta_per_event=(
                sums["label_delta"] / events if events else 0.0
            ),
            full_recomputes=int(sums["full_recomputes"]),
            cache_retained=sums["retained"] / probes if probes else 1.0,
        )
    return table


def reduce_des_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge DES-vs-centralized churn counters into the T6d table."""
    dims = f"{len(spec.shape)}-D {'x'.join(map(str, spec.shape))}"
    table = ResultTable(
        title=(
            f"T6d distributed stack under churn — {dims} mesh, "
            f"{spec.param('epochs', 6)} epochs x "
            f"{spec.param('pairs', 60)} pairs, "
            f"churn {spec.param('churn', 2)}; des vs online mcc/rfb"
        )
    )
    for count_index, count in enumerate(spec.fault_counts):
        rows = [r for r in records if r["_count_index"] == count_index]
        sums = {name: sum(r[name] for r in rows) for name in _DES_COUNTERS}
        total = sums["pairs"]
        events = sums["events"]
        table.add(
            faults=count,
            pairs=int(total),
            des=sums["des_delivered"] / total if total else 0.0,
            mcc=sums["mcc_delivered"] / total if total else 0.0,
            rfb=sums["rfb_delivered"] / total if total else 0.0,
            agree_des_mcc=sums["agree"] / total if total else 1.0,
            des_stuck=int(sums["des_stuck"]),
            msgs_per_query=sums["query_msgs"] / total if total else 0.0,
            stabilize_msgs_per_event=(
                sums["stabilize_msgs"] / events if events else 0.0
            ),
            restart_cells_per_event=(
                sums["restart_cells"] / events if events else 0.0
            ),
        )
    return table


def run_churn(
    shape: tuple[int, ...],
    fault_counts: list[int],
    pairs: int = 60,
    epochs: int = 6,
    churn: int = 2,
    trials: int = 4,
    seed: SeedLike = 2005,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | None = None,
    save: str | None = None,
    trace: str | None = None,
    mode: str = "mcc",
    des: bool = False,
) -> ResultTable:
    """Sweep fault counts; delivery and relabel cost under churn.

    ``pairs`` queries queue per epoch, ``epochs`` alternating
    inject/repair events of ``churn`` cells churn each pattern.
    ``mode`` picks the centralized fault-information model ("mcc" or
    "rfb"); ``des=True`` instead runs the distributed stack next to
    *both* centralized models on the same event streams (the ``mode``
    flag is ignored there).  ``workers`` shards the patterns across
    processes (1 = in-process serial fallback); results are identical
    for any value.  ``checkpoint`` journals per-pattern records for
    resumable runs.
    """
    params: dict[str, Any] = {"pairs": pairs, "epochs": epochs, "churn": churn}
    if mode != "mcc" and not des:
        params["mode"] = mode
    spec = SweepSpec(
        experiment="churn_des" if des else "churn",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params=params,
    )
    return run_sweep(
        spec, workers=workers, shards=shards, checkpoint=checkpoint,
        save=save, trace=trace,
    )
