"""Workload generators: fault patterns and routing pairs.

The paper's simulation injects random node faults into 3-D meshes and
measures region overhead and minimal-routing success over random
source/destination pairs.  Generators here cover that plus the
clustered-fault variant used by ablation A3 (faults in real machines
correlate spatially — a failed power rail or cooling zone).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.coords import manhattan
from repro.util.rng import SeedLike, make_rng, sample_distinct


def random_fault_mask(
    shape: tuple[int, ...],
    count: int,
    rng: SeedLike = None,
    protect: tuple[tuple[int, ...], ...] = (),
) -> np.ndarray:
    """Uniform random node faults; ``protect`` cells stay healthy."""
    rng = make_rng(rng)
    size = int(np.prod(shape))
    protected = {int(np.ravel_multi_index(p, shape)) for p in protect}
    if count > size - len(protected):
        raise ValueError(f"cannot place {count} faults in mesh of {size}")
    mask = np.zeros(shape, dtype=bool)
    placed = 0
    while placed < count:
        draw = sample_distinct(rng, size, min(count - placed + len(protected), size))
        for flat in draw:
            if int(flat) in protected:
                continue
            coord = np.unravel_index(int(flat), shape)
            if not mask[coord]:
                mask[coord] = True
                placed += 1
                if placed == count:
                    break
    return mask


def clustered_fault_mask(
    shape: tuple[int, ...],
    count: int,
    clusters: int = 3,
    spread: float = 1.5,
    rng: SeedLike = None,
    protect: tuple[tuple[int, ...], ...] = (),
) -> np.ndarray:
    """Spatially clustered faults: Gaussian blobs around random centers."""
    rng = make_rng(rng)
    protected = {tuple(p) for p in protect}
    centers = [
        tuple(int(rng.integers(0, k)) for k in shape) for _ in range(max(1, clusters))
    ]
    mask = np.zeros(shape, dtype=bool)
    placed = 0
    attempts = 0
    while placed < count:
        attempts += 1
        if attempts > 200 * count + 1000:
            raise RuntimeError("clustered fault generation did not converge")
        center = centers[int(rng.integers(len(centers)))]
        coord = tuple(
            int(np.clip(round(rng.normal(c, spread)), 0, k - 1))
            for c, k in zip(center, shape, strict=True)
        )
        if coord in protected or mask[coord]:
            continue
        mask[coord] = True
        placed += 1
    return mask


def sample_safe_pair(
    safe_mask: np.ndarray,
    rng: SeedLike = None,
    min_distance: int = 1,
    max_tries: int = 2000,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """A random (source, dest) pair of safe nodes at distance >= minimum.

    Returns None when no pair is found (degenerate masks) — callers
    skip the trial rather than bias the statistics.
    """
    rng = make_rng(rng)
    cells = np.argwhere(safe_mask)
    if cells.shape[0] < 2:
        return None
    for _ in range(max_tries):
        i, j = rng.integers(0, cells.shape[0], size=2)
        a = tuple(int(c) for c in cells[i])
        b = tuple(int(c) for c in cells[j])
        if manhattan(a, b) >= min_distance:
            return a, b
    return None
