"""Rule registry for ``repro-check`` (the project invariant linter).

Every rule has a stable ID that suppressions and the whitelist refer
to.  IDs are grouped by the invariant family they guard:

* **D-rules** — determinism: the headline guarantee of PRs 1–5 is that
  every table is byte-identical for any shard/worker count and across
  interpreter restarts.  Wall-clock reads, global RNG state, and
  hash-order-dependent iteration are the three ways Python code breaks
  that silently.
* **C-rules** — cache discipline: the content-addressed model caches
  (:mod:`repro.core.model_cache`) share frozen arrays across consumers;
  an in-place mutation of a cached array corrupts *other* patterns'
  results.  Labelling must flow through :func:`cached_labelled` so the
  cache actually sees it.
* **P-rules** — multiprocessing discipline: the sharded sweep runner
  ships work to ``spawn``/``fork`` pools; lambdas don't pickle, and
  module-global mutable state silently diverges between the parent and
  the workers.

A rule applies only in the *roles* listed: ``src`` (library code under
``src/``), ``tests``, ``benchmarks``, ``examples``.  Benchmarks time
things, so wall-clock reads are legal there; tests compare against
ground-truth ``label_grid`` runs, so the cache-routing rule does not
apply to them.

Suppressing a finding requires a justification — inline
(``# repro-check: disable=D101 -- reason``) or via the committed
whitelist file (see :mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

from dataclasses import dataclass

SRC = "src"
TESTS = "tests"
BENCHMARKS = "benchmarks"
EXAMPLES = "examples"
ALL_ROLES = frozenset({SRC, TESTS, BENCHMARKS, EXAMPLES})


@dataclass(frozen=True)
class Rule:
    """One checked invariant: stable ID, summary, and where it applies."""

    id: str
    summary: str
    rationale: str
    roles: frozenset[str]


RULES: dict[str, Rule] = {
    r.id: r
    for r in [
        Rule(
            id="D101",
            summary="wall-clock read in library code",
            rationale=(
                "time.time()/datetime.now() make results depend on when "
                "they ran; experiment outputs must be pure functions of "
                "(spec, seed).  The one sanctioned read site is "
                "repro.obs.clockio.wall_now — the telemetry shim the span "
                "tracer and WallClock import — so auditing wall-time flow "
                "means auditing that module's callers.  Benchmarks are "
                "exempt — timing is their job."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="D102",
            summary="global RNG state instead of util.rng streams",
            rationale=(
                "random.* and legacy numpy.random.* draw from hidden "
                "process-global state, so results depend on call order "
                "across the whole process.  All randomness must flow "
                "through repro.util.rng SeedSequence helpers "
                "(spawn_seed_sequences / make_rng) or an explicit "
                "Generator."
            ),
            roles=frozenset({SRC, TESTS, BENCHMARKS}),
        ),
        Rule(
            id="D103",
            summary="set iteration feeding an ordered result",
            rationale=(
                "set/frozenset iteration order depends on PYTHONHASHSEED "
                "for str/tuple keys; materializing one into a list, "
                "tuple, or appended-to sequence bakes that order into "
                "results.  Wrap in sorted() or keep the sink "
                "order-insensitive."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="C201",
            summary="re-enabling writes on a frozen array",
            rationale=(
                "setflags(write=True) / .flags.writeable = True defeats "
                "the freeze that protects content-addressed cache "
                "entries; a mutation through the re-writeable alias "
                "corrupts every other consumer of the digest."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="C202",
            summary="direct label_grid call outside sanctioned modules",
            rationale=(
                "labelling fixed points must flow through "
                "core.model_cache.cached_labelled so revisited patterns "
                "hit the content-addressed cache; only the labelling "
                "core, the cache itself, and the online dynamic-fault "
                "subsystem (which maintains labels incrementally) may "
                "call label_grid directly."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="C203",
            summary="in-place mutation of a cache-obtained object",
            rationale=(
                "values returned by cached_labelled / cached_class_assets "
                "/ cached_routing_service are shared across every "
                "consumer in the process; writing into them corrupts "
                "other patterns' results.  Copy first."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="P301",
            summary="lambda or nested function submitted to a pool",
            rationale=(
                "lambdas and closures do not pickle under the spawn "
                "start method, and under fork they capture parent state "
                "invisibly.  Pool work must be module-level functions "
                "with picklable arguments (the sharded runner's "
                "contract)."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="P302",
            summary="module-global mutable state read in a worker function",
            rationale=(
                "evaluate_* worker functions run in forked/spawned "
                "processes; lowercase module-global lists/dicts/sets "
                "read there silently diverge from the parent.  Pass "
                "state through the task/spec, or make it an UPPER_CASE "
                "constant registry that is never mutated."
            ),
            roles=frozenset({SRC}),
        ),
        Rule(
            id="S001",
            summary="suppression without justification",
            rationale=(
                "every '# repro-check: disable=' comment must carry a "
                "'-- reason', and every whitelist entry a justification "
                "column; an unexplained suppression is indistinguishable "
                "from a silenced bug."
            ),
            roles=ALL_ROLES,
        ),
    ]
}


def rule(rule_id: str) -> Rule:
    return RULES[rule_id]
