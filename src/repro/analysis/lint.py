"""``repro-check``: AST linter for determinism & concurrency invariants.

Usage (also the CI ``analysis`` job)::

    PYTHONPATH=src python -m repro.analysis.lint src tests benchmarks

Walks every ``.py`` file under the given paths, infers each file's
*role* from its path (``src`` / ``tests`` / ``benchmarks`` /
``examples``), and applies the rules of :mod:`repro.analysis.rules`
that are active for that role.  Exit status is 0 iff no unsuppressed
findings (suppressions: :mod:`repro.analysis.suppressions`).

The checks are deliberately syntactic — no type inference, no imports
of the checked code — so the linter runs in milliseconds on the whole
tree and never executes project code.  Where a check needs dataflow
(e.g. "this name holds a set"), it tracks only same-scope assignments;
the runtime sanitizers (:mod:`repro.analysis.sanitize`) cover what
static analysis cannot see.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import RULES, Rule
from repro.analysis.suppressions import (
    InlineSuppressions,
    Whitelist,
    WhitelistError,
    parse_inline,
)

#: Default name of the committed whitelist file (looked up in the
#: current working directory when ``--whitelist`` is not given).
DEFAULT_WHITELIST = "repro-check.allow"

#: D101 — wall-clock callables (canonical dotted names).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: D101 — the ONE module allowed to read the wall clock: the telemetry
#: shim :mod:`repro.obs.clockio`.  Everything else (including the
#: serving layer's WallClock) imports ``wall_now`` from there, so a
#: determinism audit of wall-time flow starts from a single site.
WALL_CLOCK_SANCTIONED = ("obs/clockio.py",)

#: D102 — members of numpy.random that are *not* global-state legacy API.
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: C202 — modules allowed to call label_grid directly: the labelling
#: core itself, the content-addressed cache that wraps it, and the
#: online dynamic-fault subsystem, which maintains labels incrementally
#: (its arrays are intentionally mutable — caching them is wrong).
LABEL_GRID_SANCTIONED = (
    "core/labelling.py",
    "core/model_cache.py",
    "/online/",
)

#: C203 — cache accessors whose return values are process-shared.
CACHED_FUNCS = frozenset(
    {"cached_labelled", "cached_class_assets", "cached_routing_service"}
)
#: C203 — ndarray methods that mutate in place.
ARRAY_MUTATORS = frozenset(
    {"setflags", "fill", "sort", "put", "itemset", "resize", "partition"}
)

#: P301 — pool/executor submission methods.
POOL_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def role_of(rel_path: str) -> str:
    """Infer a file's role from its path parts (default: ``src``)."""
    parts = Path(rel_path).parts
    for role in ("tests", "benchmarks", "examples"):
        if role in parts:
            return role
    return "src"


class _Scope:
    """Per-function dataflow the syntactic checks track."""

    def __init__(self, is_worker: bool = False):
        self.set_names: set[str] = set()
        self.cache_names: set[str] = set()
        self.nested_funcs: set[str] = set()
        self.is_worker = is_worker


class _Checker(ast.NodeVisitor):
    def __init__(self, rel_path: str, role: str, active: dict[str, Rule]):
        self.rel_path = rel_path
        self.role = role
        self.active = active
        self.findings: list[Finding] = []
        self.aliases: dict[str, str] = {}
        self.module_mutables: set[str] = set()
        self.scopes: list[_Scope] = [_Scope()]

    # -- helpers -----------------------------------------------------------

    def flag(self, node: ast.AST, rule_id: str, message: str) -> None:
        if rule_id in self.active:
            self.findings.append(
                Finding(
                    self.rel_path,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0) + 1,
                    rule_id,
                    message,
                )
            )

    def dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, through import aliases."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self.aliases.get(node.id, node.id))
            return ".".join(reversed(parts))
        return None

    def base_name(self, node: ast.AST) -> str | None:
        """The root Name of a Subscript/Attribute chain (dataflow key)."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in self.scopes[-1].set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            # Set algebra (s | t, s - t, ...) stays a set if a side is one.
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scopes ------------------------------------------------------------

    @staticmethod
    def _is_worker_name(name: str) -> bool:
        stripped = name.lstrip("_")
        return stripped.startswith("evaluate_") or name.endswith("_star")

    def _visit_function(self, node) -> None:
        if len(self.scopes) > 1:
            self.scopes[-1].nested_funcs.add(node.name)
        self.scopes.append(_Scope(is_worker=self._is_worker_name(node.name)))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments (dataflow + C201/C203) --------------------------------

    def _track_assignment(self, targets: Iterable[ast.AST], value: ast.AST) -> None:
        scope = self.scopes[-1]
        value_is_set = self.is_set_expr(value)
        value_is_cached = (
            isinstance(value, ast.Call)
            and isinstance(value.func, (ast.Name, ast.Attribute))
            and (self.dotted(value.func) or "").rsplit(".", 1)[-1] in CACHED_FUNCS
        )
        for target in targets:
            if isinstance(target, ast.Name):
                scope.set_names.discard(target.id)
                scope.cache_names.discard(target.id)
                if value_is_set:
                    scope.set_names.add(target.id)
                if value_is_cached:
                    scope.cache_names.add(target.id)
                if len(self.scopes) == 1 and isinstance(
                    value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
                ):
                    if not target.id.isupper() and not target.id.startswith("_"):
                        self.module_mutables.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)) and value_is_cached:
                # labelled, mccs, walls = cached_class_assets(...)
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        scope.cache_names.add(elt.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_assignment(node.targets, node.value)
        for target in node.targets:
            # C201: arr.flags.writeable = True
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
                and isinstance(node.value, ast.Constant)
                and node.value.value is True
            ):
                self.flag(
                    node, "C201", "re-enables writes via .flags.writeable = True"
                )
            # C203: writing into a cache-obtained object
            if isinstance(target, ast.Subscript):
                base = self.base_name(target)
                if base in self.scopes[-1].cache_names:
                    self.flag(
                        node,
                        "C203",
                        f"writes into {base!r}, obtained from a shared "
                        "model cache (copy before mutating)",
                    )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_assignment([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        base = self.base_name(node.target)
        if base in self.scopes[-1].cache_names:
            self.flag(
                node,
                "C203",
                f"augmented assignment mutates {base!r}, obtained from a "
                "shared model cache",
            )
        self.generic_visit(node)

    # -- calls (D101/D102/C201/C202/C203/P301/D103) ------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self.dotted(node.func)
        if name is not None:
            self._check_call_name(node, name)
        self._check_pool_submission(node)
        self._check_materialized_set(node)
        self.generic_visit(node)

    def _check_call_name(self, node: ast.Call, name: str) -> None:
        if name in WALL_CLOCK_CALLS:
            if not any(s in self.rel_path for s in WALL_CLOCK_SANCTIONED):
                self.flag(
                    node,
                    "D101",
                    f"wall-clock call {name}() in library code (results "
                    "must be pure functions of spec + seed); wall time "
                    "flows through repro.obs.clockio.wall_now only",
                )
        if name.startswith("random.") and name.count(".") == 1:
            self.flag(
                node,
                "D102",
                f"{name}() draws from process-global RNG state; route "
                "randomness through repro.util.rng",
            )
        if name.startswith("numpy.random."):
            member = name.split(".")[2]
            if member not in NP_RANDOM_ALLOWED:
                self.flag(
                    node,
                    "D102",
                    f"legacy numpy.random.{member}() uses global state; "
                    "use repro.util.rng (SeedSequence/Generator) streams",
                )
        if name.rsplit(".", 1)[-1] == "label_grid":
            if not any(s in self.rel_path for s in LABEL_GRID_SANCTIONED):
                self.flag(
                    node,
                    "C202",
                    "direct label_grid() call; route through "
                    "core.model_cache.cached_labelled so revisited "
                    "patterns hit the content-addressed cache",
                )
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "setflags":
                for kw in node.keywords:
                    if (
                        kw.arg == "write"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        self.flag(
                            node,
                            "C201",
                            "setflags(write=True) re-enables writes on a "
                            "frozen array",
                        )
            if attr in ARRAY_MUTATORS:
                base = self.base_name(node.func.value)
                if base in self.scopes[-1].cache_names:
                    self.flag(
                        node,
                        "C203",
                        f".{attr}() mutates {base!r}, obtained from a "
                        "shared model cache",
                    )

    def _check_pool_submission(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_METHODS
        ):
            return
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                self.flag(
                    arg,
                    "P301",
                    f"lambda submitted to pool .{node.func.attr}(); pool "
                    "work must be a picklable module-level function",
                )
            elif (
                isinstance(arg, ast.Name)
                and arg.id in self.scopes[-1].nested_funcs
            ):
                self.flag(
                    arg,
                    "P301",
                    f"nested function {arg.id!r} submitted to pool "
                    f".{node.func.attr}(); closures do not pickle",
                )

    def _check_materialized_set(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
        ):
            return
        arg = node.args[0]
        if isinstance(arg, ast.GeneratorExp):
            arg = arg.generators[0].iter
        if self.is_set_expr(arg):
            self.flag(
                node,
                "D103",
                f"{node.func.id}() materializes set iteration order "
                "(PYTHONHASHSEED-dependent for str/tuple elements); "
                "wrap in sorted()",
            )

    # -- loops & comprehensions (D103) -------------------------------------

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self.is_set_expr(node.generators[0].iter):
            self.flag(
                node,
                "D103",
                "list comprehension over a set bakes hash order into an "
                "ordered result; wrap the iterable in sorted()",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter) and self._body_builds_sequence(node.body):
            self.flag(
                node,
                "D103",
                "loop over a set appends to an ordered sequence; iterate "
                "sorted(...) instead",
            )
        self.generic_visit(node)

    @staticmethod
    def _body_builds_sequence(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("append", "extend", "insert")
                ):
                    return True
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return True
        return False

    # -- worker globals (P302) ---------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and self.scopes[-1].is_worker
            and node.id in self.module_mutables
        ):
            self.flag(
                node,
                "P302",
                f"worker function reads module-global mutable {node.id!r}; "
                "pass it through the task/spec or freeze it as an "
                "UPPER_CASE constant",
            )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self.scopes[-1].is_worker:
            self.flag(
                node,
                "P302",
                "worker function declares 'global'; worker state never "
                "propagates back to the parent process",
            )
        self.generic_visit(node)


def _module_mutables_prepass(tree: ast.Module) -> set[str]:
    """Lowercase module-level names bound to mutable literals."""
    out: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.isupper()
                    and not target.id.startswith("_")
                ):
                    out.add(target.id)
    return out


def lint_source(
    source: str, rel_path: str, role: str | None = None
) -> list[Finding]:
    """Lint one file's source; returns findings after inline suppression.

    ``role`` overrides path-based inference (tests use this to exercise
    rules without building directory trees).
    """
    role = role or role_of(rel_path)
    active = {rid: r for rid, r in RULES.items() if role in r.roles}
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rel_path,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                "E999",
                f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(rel_path, role, active)
    checker.module_mutables = _module_mutables_prepass(tree)
    checker.visit(tree)

    inline = parse_inline(source)
    findings = [
        f
        for f in checker.findings
        if f.rule_id not in inline.by_line.get(f.line, set())
    ]
    for lineno, rules_text in inline.unjustified:
        findings.append(
            Finding(
                rel_path,
                lineno,
                1,
                "S001",
                f"disable={rules_text} has no '-- reason'; unjustified "
                "suppressions do not suppress",
            )
        )
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def lint_paths(
    paths: Sequence[str], whitelist: Whitelist | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; whitelist-filtered."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        rel = os.path.relpath(file_path).replace(os.sep, "/")
        source = file_path.read_text(encoding="utf-8")
        for f in lint_source(source, rel):
            if whitelist is not None and whitelist.allows(rel, f.rule_id):
                continue
            findings.append(f)
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Determinism & concurrency invariant linter.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests", "benchmarks"])
    parser.add_argument(
        "--whitelist",
        default=None,
        help=f"suppression whitelist file (default: ./{DEFAULT_WHITELIST} "
        "when present)",
    )
    parser.add_argument(
        "--no-whitelist",
        action="store_true",
        help="ignore any whitelist file (show every finding)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES.values():
            print(f"{r.id}  [{','.join(sorted(r.roles))}]  {r.summary}")
            print(f"      {r.rationale}")
        return 0

    whitelist = None
    if not args.no_whitelist:
        path = args.whitelist or (
            DEFAULT_WHITELIST if os.path.exists(DEFAULT_WHITELIST) else None
        )
        if path is not None:
            try:
                whitelist = Whitelist.load(path)
            except WhitelistError as exc:
                print(exc, file=sys.stderr)
                return 2

    findings = lint_paths(args.paths or ["src", "tests", "benchmarks"], whitelist)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col)):
        print(f.render())
    if whitelist is not None:
        for entry in whitelist.unused():
            print(
                f"note: {whitelist.path}:{entry.lineno}: whitelist entry "
                f"({entry.pattern} {entry.rule_id}) matched nothing",
                file=sys.stderr,
            )
    if findings:
        print(f"repro-check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
