"""``python -m repro.analysis`` — alias for the ``repro-check`` linter."""

from repro.analysis.lint import main

if __name__ == "__main__":
    raise SystemExit(main())
