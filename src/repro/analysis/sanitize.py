"""Runtime sanitizers: catch at run time what the AST linter cannot see.

Three sanitizers, all enabled together by ``REPRO_SANITIZE=1`` (the
tier-1 suite's conftest installs the cache barrier; the online service
and the distributed pipeline self-instrument at construction) or
installed explicitly by tests:

* **Frozen-cache write barrier** — the content-addressed labelling
  cache (:mod:`repro.core.model_cache`) freezes its arrays with
  ``writeable=False``, but a consumer holding a *re-writeable alias*
  (``setflags(write=True)``, a view created before the freeze, or a
  buffer shared through slicing) can still mutate entries undetected.
  The barrier digests every cache value on insert and re-verifies the
  digest on every hit, so any mutation — through any alias — fails the
  very next lookup with :class:`CacheMutationError`.  The routing
  *service* cache is deliberately exempt: a cached
  ``RoutingService`` legitimately mutates its internal LRU reach
  caches on every query.

* **DES session-isolation sanitizer** — PR 5's concurrent query
  sessions rely on every piece of walker state being namespaced by
  query id.  :func:`sanitize_network` shadow-tracks each node's
  ``store["queries"]`` accesses, attributes every handler invocation
  to the session tag carried in the message payload (or a
  ``...:<query-id>`` timer tag), and raises :class:`SessionBleedError`
  when a handler touches another session's state.  It also groups
  accesses by simulation timestamp: two *different* events at the same
  virtual time touching the same (node, query) state with at least one
  write means the outcome rides on heap tie-breaking — flagged as
  :class:`TieBreakHazardError` before it can become an
  irreproducible run.

* **Epoch sanitizer** — the online service guarantees a queued query
  is answered at the epoch it was submitted under (fault events flush
  the queue *before* mutating the model).  :func:`sanitize_online_service`
  records the submission epoch per ticket and verifies every flushed
  :class:`RouteResult` against it, so scoring a result against labels
  newer than its submission epoch raises :class:`EpochViolationError`
  instead of silently contaminating a table.

This module is dependency-light on purpose (numpy + stdlib only): the
core modules it guards import it at construction time, so it must not
import them back at module level.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Callable

import numpy as np

from repro.util.caching import LRUCache

ENV_FLAG = "REPRO_SANITIZE"


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a non-empty, non-"0" value."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class SanitizerError(AssertionError):
    """Base class: a checked runtime invariant was violated."""


class CacheMutationError(SanitizerError):
    """A content-addressed cache entry changed after insertion."""


class SessionBleedError(SanitizerError):
    """A DES handler touched another query session's namespaced state."""


class TieBreakHazardError(SanitizerError):
    """Same-timestamp events conflict on shared state (order-dependent)."""


class EpochViolationError(SanitizerError):
    """A RouteResult was answered at a newer epoch than its submission."""


# -- frozen-cache write barrier ---------------------------------------------


def _iter_arrays(value: Any, _seen: set[int] | None = None, _depth: int = 0):
    """Yield every ndarray reachable from ``value`` (bounded recursion)."""
    if _seen is None:
        _seen = set()
    if _depth > 6 or id(value) in _seen:
        return
    _seen.add(id(value))
    if isinstance(value, np.ndarray):
        yield value
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_arrays(item, _seen, _depth + 1)
        return
    if isinstance(value, dict):
        for item in value.values():
            yield from _iter_arrays(item, _seen, _depth + 1)
        return
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        for item in attrs.values():
            yield from _iter_arrays(item, _seen, _depth + 1)


def value_digest(value: Any) -> bytes:
    """Content digest over every array reachable from ``value``.

    Dtype, shape, and raw bytes all participate, so an in-place write,
    a dtype reinterpretation, and a reshape are all detected.
    """
    h = hashlib.blake2b(digest_size=16)
    for arr in _iter_arrays(value):
        h.update(str(arr.dtype).encode("ascii"))
        h.update(repr(arr.shape).encode("ascii"))
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


class DigestGuardedCache(LRUCache):
    """An LRUCache that verifies entry content on every hit.

    ``label`` names the guarded cache in error messages.
    """

    def __init__(self, maxsize: int | None = None, label: str = "cache"):
        super().__init__(maxsize)
        self.label = label
        self._digests: dict[Any, bytes] = {}
        self.verified_hits = 0

    def put(self, key, value):
        self._digests[key] = value_digest(value)
        out = super().put(key, value)
        # Capacity evictions happen in super().put; drop their digests.
        if len(self._digests) > len(self._data):
            self._digests = {k: self._digests[k] for k in self._data}
        return out

    def get(self, key):
        value = super().get(key)
        if value is not None:
            expected = self._digests.get(key)
            if expected is not None and value_digest(value) != expected:
                raise CacheMutationError(
                    f"{self.label}[{key!r}]: cached entry mutated since "
                    "insertion — some consumer wrote through a "
                    "re-writeable alias of a frozen cache array"
                )
            self.verified_hits += 1
        return value

    def pop(self, key):
        self._digests.pop(key, None)
        return super().pop(key)

    def clear(self) -> None:
        self._digests.clear()
        super().clear()


class _BarrierHandle:
    """Restores the plain labelling cache on uninstall."""

    def __init__(self, model_cache_module, original):
        self._module = model_cache_module
        self._original = original
        self.cache: DigestGuardedCache = model_cache_module.LABELLING_CACHE

    def uninstall(self) -> None:
        self._module.LABELLING_CACHE = self._original


def install_cache_barrier() -> _BarrierHandle:
    """Swap the labelling cache for a digest-verified one (starts empty).

    The service cache (``_SERVICE_CACHE``) is *not* guarded: cached
    routing services mutate their internal reach caches by design.
    """
    from repro.core import model_cache  # deferred: cycle-free by contract

    original = model_cache.LABELLING_CACHE
    model_cache.LABELLING_CACHE = DigestGuardedCache(
        original.maxsize, label="LABELLING_CACHE"
    )
    return _BarrierHandle(model_cache, original)


# -- DES session-isolation sanitizer -----------------------------------------


class SessionShadow:
    """Shadow bookkeeping for one sanitized simulation.

    The simulator reports event boundaries via the observer protocol
    (:attr:`repro.simkit.simulator.Simulator.observer`); wrapped node
    handlers report the session each event acts for; instrumented
    ``store["queries"]`` dicts report per-query state touches.
    """

    def __init__(self):
        self.event_seq = 0
        self.event_time: float | None = None
        self.in_event = False
        self.session: int | None = None
        #: (node, query-id) -> list of (event_seq, session, wrote)
        self._ts_accesses: dict[tuple, list[tuple[int, int | None, bool]]] = {}
        self.checked_accesses = 0

    # observer protocol (Simulator calls these around every event)
    def before_event(self, now: float) -> None:
        if now != self.event_time:
            self._ts_accesses.clear()
            self.event_time = now
        self.event_seq += 1
        self.in_event = True
        self.session = None

    def after_event(self) -> None:
        self.in_event = False
        self.session = None

    def touch(self, node: tuple, query_id: Any, wrote: bool) -> None:
        """One access to ``store['queries'][query_id]`` at ``node``."""
        if not self.in_event:
            return  # outside the event loop (drain bookkeeping etc.)
        self.checked_accesses += 1
        if self.session is not None and query_id != self.session:
            raise SessionBleedError(
                f"node {node}: event attributed to session "
                f"{self.session} touched session {query_id}'s state at "
                f"t={self.event_time} — per-query namespacing violated"
            )
        log = self._ts_accesses.setdefault((node, query_id), [])
        for seq, session, other_wrote in log:
            if seq != self.event_seq and (wrote or other_wrote):
                if session != self.session:
                    raise TieBreakHazardError(
                        f"node {node}, query {query_id}: events from "
                        f"sessions {session} and {self.session} conflict "
                        f"at the same timestamp t={self.event_time} "
                        "(outcome depends on event-queue tie-breaking)"
                    )
        log.append((self.event_seq, self.session, wrote))


class _QueryStateDict(dict):
    """Instrumented ``store['queries']``: reports per-query accesses."""

    def __init__(self, shadow: SessionShadow, node: tuple, data: dict):
        super().__init__(data)
        self._shadow = shadow
        self._node = node

    def __getitem__(self, key):
        self._shadow.touch(self._node, key, wrote=False)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._shadow.touch(self._node, key, wrote=False)
        return super().get(key, default)

    def __setitem__(self, key, value):
        self._shadow.touch(self._node, key, wrote=True)
        super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        self._shadow.touch(self._node, key, wrote=key not in self)
        return super().setdefault(key, default)

    def pop(self, key, *default):
        self._shadow.touch(self._node, key, wrote=True)
        return super().pop(key, *default)


class _ShadowStore(dict):
    """A node store that hands out instrumented ``'queries'`` dicts."""

    def __init__(self, shadow: SessionShadow, node: tuple, data: dict):
        super().__init__(data)
        self._shadow = shadow
        self._node = node
        if "queries" in data and not isinstance(data["queries"], _QueryStateDict):
            super().__setitem__(
                "queries", _QueryStateDict(shadow, node, data["queries"])
            )

    def _wrap(self, value):
        if isinstance(value, _QueryStateDict) or not isinstance(value, dict):
            return value
        return _QueryStateDict(self._shadow, self._node, value)

    def __setitem__(self, key, value):
        if key == "queries":
            value = self._wrap(value)
        super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        if key == "queries" and key not in self:
            default = self._wrap(default if default is not None else {})
        return super().setdefault(key, default)


def _session_of_timer(tag: str) -> int | None:
    """Query id from a namespaced timer tag (``detect-timeout:<id>``)."""
    _, _, suffix = tag.rpartition(":")
    try:
        return int(suffix)
    except ValueError:
        return None


def sanitize_network(net) -> SessionShadow:
    """Install the session-isolation sanitizer on a :class:`MeshNetwork`.

    Idempotent per network; returns the shadow (exposed for tests and
    telemetry).  Instruments in place: the simulator's observer hook,
    every node's ``store`` and ``on_message``/``on_timer`` handlers.
    """
    existing = getattr(net, "_session_shadow", None)
    if existing is not None:
        return existing
    shadow = SessionShadow()
    net._session_shadow = shadow
    net.sim.observer = shadow
    for coord, node in net.nodes.items():
        node.store = _ShadowStore(shadow, coord, node.store)

        def wrap_message(handler: Callable, _shadow=shadow):
            def on_message(msg):
                _shadow.session = msg.payload.get("query")
                try:
                    return handler(msg)
                finally:
                    _shadow.session = None

            return on_message

        def wrap_timer(handler: Callable, _shadow=shadow):
            def on_timer(tag):
                _shadow.session = _session_of_timer(tag)
                try:
                    return handler(tag)
                finally:
                    _shadow.session = None

            return on_timer

        node.on_message = wrap_message(node.on_message)
        node.on_timer = wrap_timer(node.on_timer)
    return shadow


def maybe_sanitize_network(net) -> SessionShadow | None:
    """Install the session sanitizer iff ``REPRO_SANITIZE`` is on."""
    return sanitize_network(net) if enabled() else None


# -- epoch sanitizer ---------------------------------------------------------


class EpochShadow:
    """Submission-epoch bookkeeping for one online routing service."""

    def __init__(self, service):
        self.service = service
        self.submitted: dict[int, int] = {}
        self.checked_results = 0

    def record(self, ticket: int) -> None:
        self.submitted[ticket] = self.service.epoch

    def verify(self, flushed: dict) -> None:
        for ticket, result in flushed.items():
            expected = self.submitted.pop(ticket, None)
            if expected is None:
                continue  # submitted before the sanitizer was installed
            self.checked_results += 1
            if result.epoch != expected:
                raise EpochViolationError(
                    f"ticket {ticket}: answered at epoch {result.epoch} "
                    f"but submitted at epoch {expected} — the result was "
                    "scored against labels newer than its submission "
                    "epoch (a fault event mutated the model without "
                    "flushing the queue first)"
                )


def sanitize_online_service(service) -> EpochShadow:
    """Wrap an :class:`OnlineRoutingService` with epoch verification.

    Idempotent per service; returns the shadow.  ``submit`` records the
    epoch each ticket was issued under; ``flush`` verifies every
    result's stamped epoch against it.
    """
    existing = getattr(service, "_epoch_shadow", None)
    if existing is not None:
        return existing
    shadow = EpochShadow(service)
    service._epoch_shadow = shadow
    inner_submit = service.submit
    inner_flush = service.flush

    def submit(source, dest):
        ticket = inner_submit(source, dest)
        shadow.record(ticket)
        return ticket

    def flush():
        flushed = inner_flush()
        shadow.verify(flushed)
        return flushed

    service.submit = submit
    service.flush = flush
    return shadow


def maybe_sanitize_online_service(service) -> EpochShadow | None:
    """Wrap the service iff ``REPRO_SANITIZE`` is on."""
    return sanitize_online_service(service) if enabled() else None
