"""Correctness tooling: the ``repro-check`` linter + runtime sanitizers.

PRs 1–5 turned the paper reproduction into a concurrent system whose
guarantees — byte-identical tables for any shard/worker count,
epoch-consistent online routing, session-isolated DES walks, frozen
content-addressed caches — were conventions enforced only by the tests
that happened to exercise them.  This subsystem machine-checks them:

* :mod:`repro.analysis.lint` — ``python -m repro.analysis.lint src
  tests benchmarks``: AST rules with stable IDs (D1xx determinism,
  C2xx cache discipline, P3xx multiprocessing discipline), per-line
  justified suppressions, and a committed whitelist.
* :mod:`repro.analysis.sanitize` — runtime sanitizers enabled by
  ``REPRO_SANITIZE=1``: a frozen-cache write barrier, a DES
  session-isolation shadow, and an online-epoch verifier.

See DESIGN.md "Checked invariants" for the rule-by-rule rationale.
"""

from importlib import import_module

# Lazy (PEP 562) re-exports: importing the package must not import the
# submodules, or ``python -m repro.analysis.lint`` would see the module
# in ``sys.modules`` before runpy executes it and warn about the
# double import.
_EXPORTS = {
    "Finding": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "lint_source": "repro.analysis.lint",
    "role_of": "repro.analysis.lint",
    "RULES": "repro.analysis.rules",
    "Rule": "repro.analysis.rules",
    "Whitelist": "repro.analysis.suppressions",
    "WhitelistError": "repro.analysis.suppressions",
    "SanitizerError": "repro.analysis.sanitize",
    "CacheMutationError": "repro.analysis.sanitize",
    "SessionBleedError": "repro.analysis.sanitize",
    "TieBreakHazardError": "repro.analysis.sanitize",
    "EpochViolationError": "repro.analysis.sanitize",
    "DigestGuardedCache": "repro.analysis.sanitize",
    "enabled": "repro.analysis.sanitize",
    "install_cache_barrier": "repro.analysis.sanitize",
    "sanitize_network": "repro.analysis.sanitize",
    "sanitize_online_service": "repro.analysis.sanitize",
    "value_digest": "repro.analysis.sanitize",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
