"""Suppression plumbing for ``repro-check``: inline disables + whitelist.

Two suppression channels, both requiring a justification:

* **Inline**, for one line::

      faults = set(cells)
      order = list(faults)  # repro-check: disable=D103 -- sink is a sum

  The comment must name the rule(s) and carry a ``-- reason``; a
  disable without a reason does not suppress anything and is itself
  reported as **S001**.

* **Whitelist file** (committed, default ``repro-check.allow`` at the
  project root), for findings that are legitimate by construction and
  too broad for per-line comments.  One entry per line::

      # path-glob        RULE   justification
      src/repro/viz/*.py D103   render order is cosmetic, never persisted

  The glob matches the file's ``/``-separated path relative to the
  lint root.  Entries with fewer than three columns are hard errors —
  an unjustified whitelist line would silently void the gate.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

_INLINE = re.compile(
    r"#\s*repro-check:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass
class InlineSuppressions:
    """Per-line rule disables parsed from one file's source."""

    #: line number -> set of rule IDs disabled there (justified only).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: line numbers of disables missing a ``-- reason`` (S001 findings).
    unjustified: list[tuple[int, str]] = field(default_factory=list)


def parse_inline(source: str) -> InlineSuppressions:
    """Scan source for ``# repro-check: disable=...`` comments."""
    out = InlineSuppressions()
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _INLINE.search(line)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        if m.group("reason"):
            out.by_line.setdefault(lineno, set()).update(rules)
        else:
            out.unjustified.append((lineno, ",".join(sorted(rules))))
    return out


class WhitelistError(ValueError):
    """The whitelist file itself is malformed (treated as a lint failure)."""


@dataclass
class WhitelistEntry:
    pattern: str
    rule_id: str
    justification: str
    lineno: int
    used: bool = False


class Whitelist:
    """Committed project-level suppressions with mandatory justification."""

    def __init__(self, entries: list[WhitelistEntry] | None = None, path: str = ""):
        self.entries = entries or []
        self.path = path

    @classmethod
    def load(cls, path) -> "Whitelist":
        entries: list[WhitelistEntry] = []
        with open(path, encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(None, 2)
                if len(parts) < 3:
                    raise WhitelistError(
                        f"{path}:{lineno}: whitelist entry needs "
                        "'<path-glob> <RULE> <justification>'; an entry "
                        "without a justification is not accepted"
                    )
                pattern, rule_id, justification = parts
                entries.append(
                    WhitelistEntry(pattern, rule_id, justification, lineno)
                )
        return cls(entries, path=str(path))

    def allows(self, rel_path: str, rule_id: str) -> bool:
        """True when some entry covers (file, rule); marks it used."""
        posix = str(PurePosixPath(*rel_path.split("\\"))) if "\\" in rel_path else rel_path
        hit = False
        for entry in self.entries:
            if entry.rule_id == rule_id and fnmatch.fnmatch(posix, entry.pattern):
                entry.used = True
                hit = True
        return hit

    def unused(self) -> list[WhitelistEntry]:
        """Entries that matched nothing (reported so the file stays honest)."""
        return [e for e in self.entries if not e.used]
