"""Ground-truth minimal-path oracle: monotone lattice reachability.

In the canonical direction class, a *minimal* path from ``s`` to ``d``
(component-wise ``s <= d``) is exactly a monotone lattice path: every hop
is +1 along some axis.  Minimal-path existence through a set of open
(non-blocked) nodes is therefore a DAG-reachability problem, solved here
with a vectorized dynamic program:

* slabs along axis 0 are processed in order;
* within a slab, reachability is the (n-1)-dimensional sub-problem,
  seeded by the cells carried over from the previous slab;
* the 1-D base case propagates reachability through open runs with a
  per-index vectorized loop over stacked rows.

Complexity O(n · N) with numpy inner loops only over mesh extents (per
the HPC guides: vectorize the innermost dimension, iterate the outer).

Every claim of the paper is validated against this module: the labelled
unsafe region must not change reachability (P1), Theorems 1/2 must agree
with it (P2), and the router must deliver whenever it says YES (P3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.mesh.orientation import Orientation
from repro.mesh.regions import Box


def _flood_1d_rows(open_rows: np.ndarray, seed_rows: np.ndarray) -> np.ndarray:
    """Monotone flood along the last axis for stacked rows.

    ``open_rows`` and ``seed_rows`` have shape (..., k); the result marks
    cells reachable from a seed by repeated +1 steps through open cells.
    """
    out = np.zeros_like(seed_rows, dtype=bool)
    k = open_rows.shape[-1]
    carry = np.zeros(open_rows.shape[:-1], dtype=bool)
    for x in range(k):
        carry = open_rows[..., x] & (seed_rows[..., x] | carry)
        out[..., x] = carry
    return out


def monotone_flood(open_mask: np.ndarray, seed_mask: np.ndarray) -> np.ndarray:
    """Cells reachable from any seed via monotone (+1 per hop) moves.

    Seeds must themselves be open to be reachable.  Works for any
    dimension; 1-D is the stacked-row base case.
    """
    open_mask = np.asarray(open_mask, dtype=bool)
    seed_mask = np.asarray(seed_mask, dtype=bool)
    if open_mask.shape != seed_mask.shape:
        raise ValueError("open and seed masks must share a shape")
    if open_mask.ndim == 1:
        return _flood_1d_rows(open_mask, seed_mask)
    out = np.zeros_like(open_mask, dtype=bool)
    carry = np.zeros(open_mask.shape[1:], dtype=bool)
    for x0 in range(open_mask.shape[0]):
        slab = monotone_flood(open_mask[x0], seed_mask[x0] | carry)
        out[x0] = slab
        carry = slab
    return out


def monotone_flood_reference(
    open_mask: np.ndarray, seed_mask: np.ndarray
) -> np.ndarray:
    """Scalar BFS reference used by the test suite."""
    open_mask = np.asarray(open_mask, dtype=bool)
    out = np.zeros_like(open_mask, dtype=bool)
    frontier = [tuple(c) for c in np.argwhere(seed_mask & open_mask)]
    for c in frontier:
        out[c] = True
    while frontier:
        nxt = []
        for c in frontier:
            for axis in range(open_mask.ndim):
                n = list(c)
                n[axis] += 1
                if n[axis] < open_mask.shape[axis]:
                    n = tuple(n)
                    if open_mask[n] and not out[n]:
                        out[n] = True
                        nxt.append(n)
        frontier = nxt
    return out


def monotone_flood_many(open_mask: np.ndarray, seed_masks: np.ndarray) -> np.ndarray:
    """Batched monotone flood: one open mask, many seed masks.

    ``seed_masks`` has shape (B, *open_mask.shape); the result marks, per
    batch entry, the cells reachable from that entry's seeds.  The DP is
    the same slab recursion as :func:`monotone_flood` but every numpy
    operation carries the batch axis, so the Python-loop overhead is paid
    once per slab for B floods — the kernel behind the batch routing
    service's grouped reverse floods.
    """
    open_mask = np.asarray(open_mask, dtype=bool)
    seed_masks = np.asarray(seed_masks, dtype=bool)
    if seed_masks.shape[1:] != open_mask.shape:
        raise ValueError(
            f"seed batch shape {seed_masks.shape} must be (B, *{open_mask.shape})"
        )
    # The span wraps the whole batched DP once; the slab recursion lives
    # in the private helper so nested self-calls do not emit per-slab spans.
    with obs.span(
        "monotone_flood_many", cat="kernel",
        batch=int(seed_masks.shape[0]), shape=list(open_mask.shape),
    ):
        return _monotone_flood_many_rec(open_mask, seed_masks)


def _monotone_flood_many_rec(
    open_mask: np.ndarray, seed_masks: np.ndarray
) -> np.ndarray:
    if open_mask.ndim == 1:
        return _flood_1d_rows(
            np.broadcast_to(open_mask, seed_masks.shape), seed_masks
        )
    out = np.zeros_like(seed_masks)
    carry = np.zeros((seed_masks.shape[0],) + open_mask.shape[1:], dtype=bool)
    for x0 in range(open_mask.shape[0]):
        slab = _monotone_flood_many_rec(open_mask[x0], seed_masks[:, x0] | carry)
        out[:, x0] = slab
        carry = slab
    return out


def _seed_at(shape: Sequence[int], coord: Sequence[int]) -> np.ndarray:
    seed = np.zeros(tuple(shape), dtype=bool)
    seed[tuple(coord)] = True
    return seed


def forward_reachable(open_mask: np.ndarray, source: Sequence[int]) -> np.ndarray:
    """Cells reachable from ``source`` by monotone moves through open cells."""
    return monotone_flood(open_mask, _seed_at(open_mask.shape, source))


def reverse_reachable(open_mask: np.ndarray, dest: Sequence[int]) -> np.ndarray:
    """Cells from which ``dest`` is monotonically reachable.

    Computed by flipping every axis and flooding forward from the flipped
    destination (numpy flips are views — no copies).
    """
    axes = tuple(range(open_mask.ndim))
    flipped_open = np.flip(open_mask, axis=axes)
    flipped_dest = tuple(k - 1 - c for c, k in zip(dest, open_mask.shape, strict=True))
    flooded = monotone_flood(flipped_open, _seed_at(open_mask.shape, flipped_dest))
    return np.flip(flooded, axis=axes)


def reverse_reachable_many(
    open_mask: np.ndarray, dests: Sequence[Sequence[int]]
) -> np.ndarray:
    """Stacked :func:`reverse_reachable` masks, one per destination.

    Returns shape (len(dests), *open_mask.shape).  Equivalent to calling
    :func:`reverse_reachable` per destination but amortizes the DP's
    Python loops across the whole batch.
    """
    open_mask = np.asarray(open_mask, dtype=bool)
    axes = tuple(range(open_mask.ndim))
    flipped_open = np.flip(open_mask, axis=axes)
    seeds = np.zeros((len(dests),) + open_mask.shape, dtype=bool)
    for b, dest in enumerate(dests):
        seeds[b][tuple(k - 1 - c for c, k in zip(dest, open_mask.shape, strict=True))] = True
    flooded = monotone_flood_many(flipped_open, seeds)
    return np.flip(flooded, axis=tuple(a + 1 for a in axes))


#: Destinations per batched reverse-flood call in :func:`probe_reverse_reachable`
#: (bounds the transient stacked-mask memory, chunk x mesh bools).
PROBE_CHUNK = 64


def group_jobs_by_class(pairs, shape):
    """Group mesh-frame pairs by direction class as canonical probe jobs.

    Yields ``(orientation, jobs)`` per direction class touched, where
    ``jobs`` is a list of ``(index, canonical_source, canonical_dest)``
    ready for :func:`probe_reverse_reachable` — ``index`` is the pair's
    position in ``pairs``.  The shared front half of every batched
    reachability consumer (detection pass, fidelity records): one class
    grouping + coordinate mapping, then each caller picks its own open
    masks per class.
    """
    by_class: dict[tuple[int, ...], list[int]] = {}
    for i, (source, dest) in enumerate(pairs):
        signs = Orientation.for_pair(source, dest, shape).signs
        by_class.setdefault(signs, []).append(i)
    for signs, members in by_class.items():
        orientation = Orientation(signs, tuple(shape))
        yield orientation, [
            (
                i,
                orientation.map_coord(pairs[i][0]),
                orientation.map_coord(pairs[i][1]),
            )
            for i in members
        ]


def probe_reverse_reachable(
    open_mask: np.ndarray,
    jobs: Sequence[tuple[int, Sequence[int], Sequence[int]]],
    out: np.ndarray,
    keep: dict | None = None,
    chunk: int = PROBE_CHUNK,
) -> None:
    """Scatter reverse-reachability verdicts for many canonical pairs.

    ``jobs`` is a list of ``(index, source, dest)`` in the canonical
    frame of ``open_mask``; for each job, ``out[index]`` is set to
    whether ``dest`` is monotonically reachable from ``source`` through
    open cells.  Jobs are grouped by destination and flooded through
    :func:`reverse_reachable_many` in chunks, so the cost is one
    batched DP per ``chunk`` distinct destinations instead of one flood
    per pair — the shared kernel behind the batched detection pass and
    the fidelity experiment's oracle records.  With ``keep`` given, the
    per-destination reach masks are stored there keyed by destination.
    """
    by_dest: dict[tuple[int, ...], list] = {}
    for index, source, dest in jobs:
        by_dest.setdefault(tuple(dest), []).append((index, tuple(source)))
    dests = list(by_dest)
    for start in range(0, len(dests), chunk):
        block = dests[start : start + chunk]
        stacked = reverse_reachable_many(open_mask, block)
        for dest, reach in zip(block, stacked, strict=True):
            for index, source in by_dest[dest]:
                out[index] = bool(reach[source])
            if keep is not None:
                keep[dest] = reach


def minimal_path_exists(
    open_mask: np.ndarray, source: Sequence[int], dest: Sequence[int]
) -> bool:
    """True iff a monotone path source -> dest exists through open cells.

    ``source`` must be component-wise <= ``dest`` (canonical frame); use
    :class:`repro.mesh.orientation.Orientation` first for other classes.
    Restricting to the RMP box keeps the DP small — monotone paths cannot
    leave it and return.
    """
    source = tuple(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    if any(s > d for s, d in zip(source, dest, strict=True)):
        raise ValueError(
            f"oracle requires canonical frame (source {source} <= dest {dest})"
        )
    box = Box(source, dest)
    sl = box.slices()
    local_open = open_mask[sl]
    local_src = tuple(s - lo for s, lo in zip(source, box.lo, strict=True))
    local_dst = tuple(d - lo for d, lo in zip(dest, box.lo, strict=True))
    reach = monotone_flood(local_open, _seed_at(local_open.shape, local_src))
    return bool(reach[local_dst])


def blocked_for_dest(open_mask: np.ndarray, dest: Sequence[int]) -> np.ndarray:
    """Exact forbidden set for a destination: cells (within the lattice)
    from which no monotone path reaches ``dest`` through open cells.

    The adaptive router in oracle mode consults this mask; the MCC model
    must reproduce it inside the RMP (property P2/P3 tests).
    """
    return ~reverse_reachable(open_mask, dest)
