"""The adaptive minimal routing engine (Algorithm 3 / Algorithm 6 step 2).

``AdaptiveRouter`` carries a fault-information model ("mcc", "rfb",
"oracle", or "blind") for one fault pattern and routes arbitrary pairs:

1. map the pair into its direction class (canonical frame);
2. feasibility check (model condition; Theorem 1/2);
3. hop-by-hop forwarding: a candidate direction survives when its
   neighbor can still reach the destination through non-faulty,
   non-useless nodes — the exact informational content of Algorithm 3
   step 2(b)'s boundary records (see _ClassModel for why this is the
   distilled form and how it relates to the walls);

4. a pluggable policy picks among the survivors (step 2c).

In "oracle" mode the exclusion rule is exact reverse reachability — the
reference the MCC mode must match (property P3).  "blind" mode uses no
model at all (baseline).

All model state is cached: one ``_ClassModel`` per direction class and
one reverse-reachability mask per destination (LRU-bounded, see
``reach_cache_size``).  :mod:`repro.routing.batch` exploits exactly these
caches to route many pairs over one pattern without redundant work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.rfb import rfb_labelled
from repro.core.components import extract_mccs
from repro.core.labelling import FAULTY, USELESS, LabelledGrid, label_grid
from repro.core.model_cache import cached_class_assets
from repro.core.walls import Wall, build_walls
from repro.mesh.coords import Coord, manhattan
from repro.mesh.orientation import Orientation
from repro.routing.oracle import reverse_reachable, reverse_reachable_many
from repro.routing.policies import FixedOrderPolicy, Policy
from repro.util.caching import LRUCache

#: Default bound on cached per-destination reachability masks (per class).
DEFAULT_REACH_CACHE_SIZE = 1024


@dataclass
class RouteResult:
    """Outcome of one routing attempt (mesh-frame coordinates).

    ``feasible`` is the fault-information model's verdict on minimal-path
    existence: True/False when a model ran its check, ``None`` when no
    check ever ran (blind mode failures — the model has no opinion).
    A delivered result always reports ``feasible=True``: the traversed
    path itself is the existence proof.
    """

    delivered: bool
    path: list[Coord]
    feasible: bool | None
    stuck_at: Coord | None = None
    reason: str = ""
    #: Fault-model epoch the verdict was computed against.  ``None`` for
    #: static routers; :class:`repro.online.OnlineRoutingService` stamps
    #: it so callers can tell which version of a mutating fault set a
    #: result reflects.
    epoch: int | None = None

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def is_minimal(self) -> bool:
        """Delivered with hop count equal to the Manhattan distance."""
        return self.delivered and self.hops == manhattan(self.path[0], self.path[-1])


class _ClassModel:
    """Per-direction-class model state (canonical frame).

    The exact informational content of the paper's distributed model is
    property P1: a node is *useless* for this direction class iff every
    minimal path through it dies, so monotone reachability over the
    non-faulty, non-useless cells equals ground-truth reachability over
    the non-faulty cells (validated in test_minimality).  The engine
    evaluates the routing rule in that distilled form — one cached
    reverse flood per destination — while the message-passing layer in
    :mod:`repro.distributed` realizes the same decisions with literal
    per-node boundary records.  The wall structures stay available for
    the fidelity experiments (T5), which measure how closely the paper's
    region-membership forms track this exact rule.

    Can't-reach cells are *not* excluded here: they cannot be entered
    from within the direction class (a safe node's positive neighbor is
    never can't-reach — tested), so their exclusion is automatic, and
    degenerate pairs whose RMP is a lower-dimensional slice may stand on
    them legitimately.
    """

    def __init__(
        self,
        labelled: LabelledGrid,
        walls: list[Wall],
        labeller=label_grid,
        reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
        blocked: np.ndarray | None = None,
        open_mask: np.ndarray | None = None,
        unsafe: np.ndarray | None = None,
    ):
        """``blocked``/``open_mask``/``unsafe`` override the masks
        normally derived from ``labelled.status`` — the online router
        passes its dynamic class's live arrays here so fault events
        update the model in place instead of rebuilding it."""
        self.labelled = labelled
        self.walls = walls
        self.labeller = labeller
        self.unsafe = labelled.unsafe_mask if unsafe is None else unsafe
        status = labelled.status
        if blocked is None:
            blocked = (status == FAULTY) | (status == USELESS)
        self._blocked = blocked
        self._open = ~blocked if open_mask is None else open_mask
        # Reverse-reachability through permitted cells, per destination
        # (LRU-bounded: million-pair workloads touch many destinations).
        self._reach: LRUCache[Coord, np.ndarray] = LRUCache(reach_cache_size)

    def reach_mask(self, dest: Coord) -> np.ndarray:
        """Cells that can still reach ``dest`` through permitted cells.

        Entries are frozen on insert: every consumer treats reach masks
        as shared immutable snapshots (the batch scorer hands them out
        directly), so an in-place write must fail loudly.
        """
        mask = self._reach.get(dest)
        if mask is None:
            mask = reverse_reachable(self._open, dest)
            mask.setflags(write=False)
            self._reach.put(dest, mask)
        return mask

    def prime_reach(self, dests: Sequence[Coord]) -> None:
        """Warm the reach cache for many destinations with one batched DP."""
        missing = [d for d in dests if d not in self._reach]
        if not missing:
            return
        stacked = reverse_reachable_many(self._open, missing)
        for dest, mask in zip(missing, stacked, strict=True):
            mask = np.ascontiguousarray(mask)
            mask.setflags(write=False)
            self._reach.put(dest, mask)

    def _reach_ok(self, cell: Coord, dest: Coord) -> bool:
        """Can ``cell`` still reach ``dest`` through permitted cells?"""
        return bool(self.reach_mask(dest)[cell])

    def allowed(self, cell: Coord, dest: Coord) -> bool:
        """May a minimal routing toward ``dest`` step onto ``cell``?"""
        if cell == dest:
            return not self.labelled.fault_mask[cell]
        return self._reach_ok(cell, dest)

    def candidates(self, pos: Coord, dest: Coord) -> list[int]:
        """Surviving preferred axes at ``pos`` for ``dest`` (canonical)."""
        out = []
        for axis in range(len(pos)):
            if pos[axis] >= dest[axis]:
                continue
            nxt = list(pos)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if not self.allowed(nxt, dest):
                continue
            out.append(axis)
        return out

    def feasible(self, source: Coord, dest: Coord) -> bool:
        """Theorem 1/2: a minimal path exists iff the model permits one."""
        if source == dest:
            return True
        if self._blocked[source]:
            return False
        return self._reach_ok(source, dest)

    def endpoints_safe(self, source: Coord, dest: Coord) -> bool:
        return bool(
            self.labelled.safe_mask[source] and self.labelled.safe_mask[dest]
        )


class AdaptiveRouter:
    """Minimal adaptive router over one fault pattern.

    ``mode`` selects the fault-information model:

    * ``"mcc"``    — the paper's model (labelling + walls);
    * ``"rfb"``    — same machinery over rectangular faulty blocks;
    * ``"oracle"`` — exact reverse-reachability exclusions (reference);
    * ``"blind"``  — no model; only faulty neighbors are avoided.

    ``reach_cache_size`` bounds the per-destination reachability masks
    cached by each class model (and oracle mode's forbidden-set masks);
    ``None`` disables the bound.  ``label_cache=True`` (default) reuses
    canonical-class labellings across routers by fault-mask content
    (:mod:`repro.core.model_cache`), so sweeps that revisit a pattern —
    or several model consumers over one pattern — label each direction
    class once per process.
    """

    MODES = ("mcc", "rfb", "oracle", "blind")

    def __init__(
        self,
        fault_mask: np.ndarray,
        mode: str = "mcc",
        policy: Policy | None = None,
        max_hops: int | None = None,
        reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
        label_cache: bool = True,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown router mode {mode!r}; pick from {self.MODES}")
        self.fault_mask = np.asarray(fault_mask, dtype=bool)
        self.mode = mode
        self.policy = policy or FixedOrderPolicy()
        self.max_hops = max_hops
        self.reach_cache_size = reach_cache_size
        self.label_cache = label_cache
        self._models: dict[tuple[int, ...], _ClassModel] = {}
        # Oracle mode: reverse-reachability masks cached per (class, dest).
        self._blocked_cache: LRUCache[
            tuple[tuple[int, ...], Coord], np.ndarray
        ] = LRUCache(reach_cache_size)

    # -- model construction (cached per direction class) -------------------

    def _model_for(self, orientation: Orientation) -> _ClassModel:
        key = orientation.signs
        if key not in self._models:
            if self.mode in ("mcc", "rfb"):
                labeller = rfb_labelled if self.mode == "rfb" else label_grid
                if self.label_cache:
                    # Content-addressed: the digest is taken from the
                    # mask as it is *now*, so the cached labelling
                    # always matches the labelled content even when a
                    # caller mutates its mask array between builds.
                    labelled, _, walls = cached_class_assets(
                        self.fault_mask, orientation,
                        labeller=labeller, kind=self.mode,
                    )
                else:
                    labelled = labeller(self.fault_mask, orientation)
                    walls = build_walls(extract_mccs(labelled))
            else:
                # oracle/blind consult only the fault mask: skip the
                # labelling fixed point and mark faults directly.
                status = orientation.to_canonical(self.fault_mask).astype(np.int8)
                status *= FAULTY
                labelled = LabelledGrid(status=status, orientation=orientation)
                labeller = label_grid
                walls = []
            self._models[key] = _ClassModel(
                labelled, walls, labeller, self.reach_cache_size
            )
        return self._models[key]

    def _oracle_blocked(self, model: _ClassModel, dest: Coord) -> np.ndarray:
        """Oracle forbidden set for ``dest``: cells that cannot reach it."""
        key = (model.labelled.orientation.signs, dest)
        blocked = self._blocked_cache.get(key)
        if blocked is None:
            open_mask = ~model.labelled.fault_mask
            blocked = ~reverse_reachable(open_mask, dest)
            blocked.setflags(write=False)
            self._blocked_cache.put(key, blocked)
        return blocked

    def _prime_oracle(self, model: _ClassModel, dests: Sequence[Coord]) -> None:
        """Warm the oracle forbidden-set cache for many destinations."""
        signs = model.labelled.orientation.signs
        missing = [d for d in dests if (signs, d) not in self._blocked_cache]
        if not missing:
            return
        open_mask = ~model.labelled.fault_mask
        stacked = reverse_reachable_many(open_mask, missing)
        for dest, mask in zip(missing, stacked, strict=True):
            blocked = np.ascontiguousarray(~mask)
            blocked.setflags(write=False)
            self._blocked_cache.put((signs, dest), blocked)

    # -- routing -------------------------------------------------------------

    def route(self, source: Sequence[int], dest: Sequence[int]) -> RouteResult:
        """Route one packet; returns the mesh-frame path and verdicts."""
        source = tuple(int(c) for c in source)
        dest = tuple(int(c) for c in dest)
        if self.fault_mask[source] or self.fault_mask[dest]:
            # A failed result, not an exception: dynamic-fault workloads
            # (MeshNetwork.inject_fault) route to endpoints that died
            # mid-run, which must score as failures, not crash the sweep.
            return RouteResult(
                delivered=False,
                path=[source],
                feasible=False,
                reason="endpoint faulty",
            )
        orientation = Orientation.for_pair(source, dest, self.fault_mask.shape)
        s = orientation.map_coord(source)
        d = orientation.map_coord(dest)
        model = self._model_for(orientation)

        reason = self._infeasible_reason(model, s, d)
        if reason is not None:
            return RouteResult(
                delivered=False, path=[source], feasible=False, reason=reason
            )
        return self._forward(model, orientation, s, d)

    def _infeasible_reason(
        self, model: _ClassModel, s: Coord, d: Coord
    ) -> str | None:
        """The model's refusal reason for a canonical pair, or None (go).

        Blind mode has no feasibility check: it just tries.
        """
        if self.mode in ("mcc", "rfb"):
            if not model.endpoints_safe(s, d):
                return "endpoint inside fault region"
            if not model.feasible(s, d):
                return "infeasible"
        elif self.mode == "oracle":
            if self._oracle_blocked(model, d)[s]:
                return "infeasible"
        return None

    def _forward(
        self, model: _ClassModel, orientation: Orientation, s: Coord, d: Coord
    ) -> RouteResult:
        """Hop-by-hop forwarding loop after a passed (or absent) check."""
        pos = s
        canonical_path = [pos]
        budget = self.max_hops if self.max_hops is not None else manhattan(s, d) + 1
        while pos != d:
            if len(canonical_path) - 1 >= budget:
                return self._fail(orientation, canonical_path, "hop budget exceeded")
            candidates = self._candidates(model, pos, d)
            if not candidates:
                return self._fail(orientation, canonical_path, "stuck")
            axis = self.policy.choose(candidates, pos, d)
            if axis not in candidates:
                raise RuntimeError(f"policy chose non-candidate axis {axis}")
            nxt = list(pos)
            nxt[axis] += 1
            pos = tuple(nxt)
            canonical_path.append(pos)
        path = [orientation.unmap_coord(c) for c in canonical_path]
        return RouteResult(delivered=True, path=path, feasible=True)

    def _candidates(self, model: _ClassModel, pos: Coord, dest: Coord) -> list[int]:
        if self.mode in ("mcc", "rfb"):
            return model.candidates(pos, dest)
        if self.mode == "oracle":
            blocked = self._oracle_blocked(model, dest)
            out = []
            for axis in range(len(pos)):
                if pos[axis] >= dest[axis]:
                    continue
                nxt = list(pos)
                nxt[axis] += 1
                if not blocked[tuple(nxt)]:
                    out.append(axis)
            return out
        # blind
        out = []
        for axis in range(len(pos)):
            if pos[axis] >= dest[axis]:
                continue
            nxt = list(pos)
            nxt[axis] += 1
            if not model.labelled.fault_mask[tuple(nxt)]:
                out.append(axis)
        return out

    def _fail(
        self, orientation: Orientation, canonical_path: list[Coord], reason: str
    ) -> RouteResult:
        path = [orientation.unmap_coord(c) for c in canonical_path]
        # Reaching the forwarding loop means the model's feasibility check
        # passed — except in blind mode, where no check ever ran and the
        # honest verdict is "unknown".
        return RouteResult(
            delivered=False,
            path=path,
            feasible=None if self.mode == "blind" else True,
            stuck_at=path[-1],
            reason=reason,
        )


def route_adaptive(
    fault_mask: np.ndarray,
    source: Sequence[int],
    dest: Sequence[int],
    mode: str = "mcc",
    policy: Policy | None = None,
) -> RouteResult:
    """One-shot convenience wrapper around :class:`RoutingService`.

    .. deprecated:: 1.1
        Builds model state for a single pair and throws it away.  Use
        :func:`repro.service.make_service` and hold the returned
        service instead — ``make_service(mask, mode=...).route(s, d)``
        is the same verdict through the shared caches.
    """
    import warnings

    warnings.warn(
        "route_adaptive() rebuilds all model state per call and is "
        "deprecated; use repro.service.make_service(mask, mode=...) and "
        "route through the returned service",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.routing.batch import RoutingService

    return RoutingService(fault_mask, mode=mode, policy=policy).route(source, dest)


def explore_all_choices(
    router: AdaptiveRouter, source: Sequence[int], dest: Sequence[int]
) -> tuple[bool, int]:
    """Adversarial exploration: follow *every* candidate at every node.

    Returns (all_executions_deliver, number_of_distinct_nodes_explored).
    Used by the P3 property tests: under the MCC model, any adaptive
    choice sequence must end at the destination when the feasibility
    check passed.
    """
    source = tuple(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    orientation = Orientation.for_pair(source, dest, router.fault_mask.shape)
    s = orientation.map_coord(source)
    d = orientation.map_coord(dest)
    model = router._model_for(orientation)
    seen: set[Coord] = set()
    ok = True
    stack = [s]
    seen.add(s)
    while stack:
        pos = stack.pop()
        if pos == d:
            continue
        candidates = router._candidates(model, pos, d)
        if not candidates:
            ok = False
            continue
        for axis in candidates:
            nxt = list(pos)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return ok, len(seen)
