"""Adaptive-selection policies: how the router picks among candidates.

Algorithm 3 step 2(c): "apply any fully adaptive and minimal routing
process to pick up a forwarding direction from set F".  The paper leaves
the choice open — the guarantee must hold for *every* choice — so the
engine takes a pluggable policy and the test suite additionally explores
all choices exhaustively (adversarial stuck-freedom, property P3).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.util.rng import SeedLike, make_rng


class Policy(Protocol):
    """Selects one axis from the candidate set at the current node."""

    def choose(
        self, candidates: Sequence[int], pos: Sequence[int], dest: Sequence[int]
    ) -> int:  # pragma: no cover - protocol signature
        ...


class FixedOrderPolicy:
    """Always take the first candidate under a fixed axis priority.

    ``FixedOrderPolicy((0, 1, 2))`` reproduces dimension-order behaviour
    whenever the network permits it.
    """

    def __init__(self, order: Sequence[int] = (0, 1, 2)):
        self.order = tuple(order)

    def choose(self, candidates, pos, dest) -> int:
        ranked = [a for a in self.order if a in candidates]
        if not ranked:
            # Candidate axis outside the configured order (higher-D mesh).
            return candidates[0]
        return ranked[0]

    def __repr__(self) -> str:
        return f"FixedOrderPolicy(order={self.order})"


class RandomPolicy:
    """Uniformly random candidate — the fully adaptive stress test."""

    def __init__(self, seed: SeedLike = None):
        self.rng = make_rng(seed)

    def choose(self, candidates, pos, dest) -> int:
        return int(candidates[self.rng.integers(len(candidates))])

    def __repr__(self) -> str:
        return "RandomPolicy()"


class DiagonalPolicy:
    """Balance progress: take the axis with the largest remaining offset.

    Keeps maximal adaptivity in reserve (the router stays as far from
    the RMP faces as possible), the heuristic most adaptive-routing
    papers recommend.
    """

    def choose(self, candidates, pos, dest) -> int:
        return max(candidates, key=lambda a: (abs(dest[a] - pos[a]), -a))

    def __repr__(self) -> str:
        return "DiagonalPolicy()"


def make_policy(name: str, seed: SeedLike = None) -> Policy:
    """Policy factory used by experiments ('fixed', 'random', 'diagonal')."""
    if name == "fixed":
        return FixedOrderPolicy()
    if name == "random":
        return RandomPolicy(seed)
    if name == "diagonal":
        return DiagonalPolicy()
    raise ValueError(f"unknown policy {name!r}")
