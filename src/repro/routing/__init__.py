"""Routing engines and the ground-truth minimal-path oracle."""

from repro.routing.oracle import (
    forward_reachable,
    minimal_path_exists,
    monotone_flood,
    reverse_reachable,
)
from repro.routing.engine import AdaptiveRouter, RouteResult, route_adaptive
from repro.routing.policies import (
    DiagonalPolicy,
    FixedOrderPolicy,
    RandomPolicy,
    make_policy,
)

__all__ = [
    "monotone_flood",
    "forward_reachable",
    "reverse_reachable",
    "minimal_path_exists",
    "AdaptiveRouter",
    "RouteResult",
    "route_adaptive",
    "DiagonalPolicy",
    "FixedOrderPolicy",
    "RandomPolicy",
    "make_policy",
]
