"""Routing engines and the ground-truth minimal-path oracle."""

from repro.routing.oracle import (
    forward_reachable,
    minimal_path_exists,
    monotone_flood,
    monotone_flood_many,
    reverse_reachable,
    reverse_reachable_many,
)
from repro.routing.engine import AdaptiveRouter, RouteResult, route_adaptive
from repro.routing.batch import RoutingService, route_batch
from repro.routing.policies import (
    DiagonalPolicy,
    FixedOrderPolicy,
    RandomPolicy,
    make_policy,
)

__all__ = [
    "monotone_flood",
    "monotone_flood_many",
    "forward_reachable",
    "reverse_reachable",
    "reverse_reachable_many",
    "minimal_path_exists",
    "AdaptiveRouter",
    "RouteResult",
    "route_adaptive",
    "RoutingService",
    "route_batch",
    "DiagonalPolicy",
    "FixedOrderPolicy",
    "RandomPolicy",
    "make_policy",
]
