"""Batched routing service: many pairs over one fault pattern.

The experiment sweeps (T2/T4), the DES workloads, and the fault-block
literature's evaluation methodology all route *batches* — tens of
thousands of (source, destination) pairs against a single fault pattern.
Doing that through one-shot :func:`repro.routing.engine.route_adaptive`
re-derives every piece of model state per pair: the ``LabelledGrid``,
the MCC walls, and a reverse-reachability flood per destination.

:class:`RoutingService` shares all of it:

* pairs are grouped by **direction class**, so each ``LabelledGrid`` +
  wall set is built once per class (at most 2^n builds per batch);
* within a class, pairs are grouped by **destination**, so one reverse
  flood serves every pair headed there — and the grouped order makes
  the engine's LRU-bounded reach caches hit even at tiny capacities;
* the batch **feasibility check is vectorized**: the cached reach mask
  is indexed at all sources of a group in one fancy-index operation
  instead of one flood (or one mask probe) per pair;
* per-destination reach masks are LRU-bounded (``reach_cache_size``),
  so million-pair workloads do not grow memory without limit.

Results are element-wise identical to per-pair
:meth:`AdaptiveRouter.route` for stateless policies (fixed/diagonal —
property-tested).  A stateful policy such as ``RandomPolicy`` draws in
grouped order rather than input order, so individual paths may differ
while delivery verdicts still agree with the model — unless the service
is built with ``replay_policy=True``, which defers the forwarding walks
and replays them in input order: every policy draw then happens exactly
when a per-call loop would make it, so batched paths match per-call
paths element-wise even for stateful policies (feasibility checks never
consume draws, and infeasible or faulty-endpoint pairs are resolved
before any walk).  The deferred walks may re-flood destinations evicted
from the LRU reach cache, so leave replay off for stateless policies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.mesh.coords import Coord
from repro.mesh.orientation import Orientation
from repro.routing.engine import (
    DEFAULT_REACH_CACHE_SIZE,
    AdaptiveRouter,
    RouteResult,
    _ClassModel,
)
from repro.routing.policies import Policy

Pair = tuple[Coord, Coord]

#: Destinations per batched reverse-flood kernel call.  Bounds the
#: transient stacked-mask memory (chunk x mesh bools) while amortizing
#: the DP's Python loops across the chunk.
PRIME_CHUNK = 64


def _as_pair(pair: Sequence[Sequence[int]]) -> Pair:
    source, dest = pair
    return (
        tuple(int(c) for c in source),
        tuple(int(c) for c in dest),
    )


class RoutingService:
    """Routes batches of pairs over one fault pattern with shared state.

    A thin orchestration layer over :class:`AdaptiveRouter`: the router
    owns the per-class models and LRU reach caches; the service owns the
    batch decomposition (class -> destination -> vectorized feasibility)
    and result ordering.  ``service.route`` is exactly one-pair routing
    through the same shared caches.
    """

    def __init__(
        self,
        fault_mask: np.ndarray | None,
        mode: str = "mcc",
        policy: Policy | None = None,
        max_hops: int | None = None,
        reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
        replay_policy: bool = False,
        label_cache: bool = True,
        router: AdaptiveRouter | None = None,
    ):
        if router is not None:
            # Adopt a caller-owned router (the online service supplies
            # one whose models track a mutating fault set); the other
            # model knobs must then live on that router.
            self.router = router
        else:
            if fault_mask is None:
                raise ValueError("RoutingService needs a fault_mask or a router")
            self.router = AdaptiveRouter(
                fault_mask,
                mode=mode,
                policy=policy,
                max_hops=max_hops,
                reach_cache_size=reach_cache_size,
                label_cache=label_cache,
            )
        #: Replay forwarding walks in input order so stateful policies
        #: (``RandomPolicy``) draw exactly as a per-call loop would.
        self.replay_policy = replay_policy

    @property
    def fault_mask(self) -> np.ndarray:
        return self.router.fault_mask

    @property
    def mode(self) -> str:
        return self.router.mode

    def labelled(self, orientation: Orientation | None = None):
        """The cached :class:`LabelledGrid` for a direction class.

        Shares the router's per-class models, so e.g. the region
        experiments and a subsequent batch over the same pattern label
        the grid once.  Not available in blind mode for "mcc"/"rfb"
        semantics — it returns whatever grid the mode builds.
        """
        if orientation is None:
            orientation = Orientation.identity(self.router.fault_mask.shape)
        return self.router._model_for(orientation).labelled

    # -- single pair -------------------------------------------------------

    def route(self, source: Sequence[int], dest: Sequence[int]) -> RouteResult:
        """Route one pair through the shared model caches."""
        return self.router.route(source, dest)

    # -- batched routing ---------------------------------------------------

    def route_batch(
        self, pairs: Iterable[Sequence[Sequence[int]]]
    ) -> list[RouteResult]:
        """Route every (source, dest) pair; results in input order."""
        pairs = [_as_pair(p) for p in pairs]
        with obs.span("route_batch", cat="routing", n=len(pairs)) as sp:
            results: list[RouteResult | None] = [None] * len(pairs)
            deferred: list | None = [] if self.replay_policy else None
            for orientation, model, members in self._grouped(pairs, results):
                self._route_group(orientation, model, members, results, deferred)
            if deferred is not None:
                # Input order = the per-call draw order for stateful policies.
                deferred.sort(key=lambda job: job[0])
                for idx, model, orientation, s, d in deferred:
                    results[idx] = self.router._forward(model, orientation, s, d)
            sp.set(delivered=sum(1 for r in results if r is not None and r.delivered))
        return results  # type: ignore[return-value]

    def feasible_batch(
        self, pairs: Iterable[Sequence[Sequence[int]]]
    ) -> np.ndarray:
        """Vectorized model feasibility verdict per pair (input order).

        True exactly when :meth:`route` would proceed past its checks:
        non-faulty endpoints, model-safe endpoints (mcc/rfb), and a
        model-permitted minimal path.  Blind mode has no feasibility
        notion and raises.
        """
        if self.mode == "blind":
            raise ValueError("blind mode has no feasibility model")
        pairs = [_as_pair(p) for p in pairs]
        with obs.span("feasible_batch", cat="routing", n=len(pairs)) as sp:
            out = np.zeros(len(pairs), dtype=bool)
            results: list[RouteResult | None] = [None] * len(pairs)
            for _orientation, model, members in self._grouped(pairs, results):
                for chunk in self._primed_chunks(model, members):
                    for indices, sources, dest in chunk:
                        out[indices] = self._group_feasible(model, sources, dest)
            sp.set(feasible=int(out.sum()))
        return out

    # -- batch decomposition -----------------------------------------------

    def _grouped(self, pairs: list[Pair], results: list[RouteResult | None]):
        """Split pairs into per-direction-class groups.

        Faulty-endpoint pairs are resolved immediately into ``results``
        (vectorized mesh-frame check) and excluded from the groups.
        Yields ``(orientation, model, members)`` per class where
        ``members`` is a list of (input_index, canonical_src,
        canonical_dst, mesh_src).
        """
        fault_mask = self.router.fault_mask
        shape = fault_mask.shape
        if not pairs:
            return
        arr = np.asarray(pairs, dtype=np.intp)  # (n, 2, ndim)
        src_idx = tuple(arr[:, 0, a] for a in range(arr.shape[2]))
        dst_idx = tuple(arr[:, 1, a] for a in range(arr.shape[2]))
        endpoint_faulty = fault_mask[src_idx] | fault_mask[dst_idx]

        by_class: dict[tuple[int, ...], list] = {}
        for i, (source, dest) in enumerate(pairs):
            if endpoint_faulty[i]:
                results[i] = RouteResult(
                    delivered=False,
                    path=[source],
                    feasible=False,
                    reason="endpoint faulty",
                )
                continue
            signs = Orientation.for_pair(source, dest, shape).signs
            by_class.setdefault(signs, []).append((i, source, dest))
        for signs, items in by_class.items():
            orientation = Orientation(signs, tuple(shape))
            model = self.router._model_for(orientation)
            members = [
                (i, orientation.map_coord(src), orientation.map_coord(dst), src)
                for i, src, dst in items
            ]
            yield orientation, model, members

    @staticmethod
    def _dest_groups(members: list):
        """Regroup one class's members by canonical destination.

        Yields ``(indices, sources, dest)`` with ``indices`` an int array
        of input positions and ``sources`` the canonical source coords.
        """
        by_dest: dict[Coord, list] = {}
        for i, s, d, src in members:
            by_dest.setdefault(d, []).append((i, s, src))
        for dest, group in by_dest.items():
            indices = np.asarray([g[0] for g in group], dtype=np.intp)
            sources = [g[1] for g in group]
            yield indices, sources, dest

    def _group_feasible(
        self, model: _ClassModel, sources: list[Coord], dest: Coord
    ) -> np.ndarray:
        """Model verdicts for many sources sharing one destination.

        One cached flood + one fancy-index per group, replacing a flood
        (oracle) or mask probe (mcc/rfb) per pair.
        """
        coords = tuple(np.asarray(sources, dtype=np.intp).T)
        if self.mode == "oracle":
            blocked = self.router._oracle_blocked(model, dest)
            return ~blocked[coords]
        # mcc / rfb: safe endpoints, then model reachability.
        safe = model.labelled.safe_mask
        ok = np.full(len(sources), bool(safe[dest]), dtype=bool)
        if ok.any():
            ok &= safe[coords]
        if ok.any():
            ok &= model.reach_mask(dest)[coords]
        return ok

    def _route_group(
        self,
        orientation: Orientation,
        model: _ClassModel,
        members: list,
        results: list[RouteResult | None],
        deferred: list | None = None,
    ) -> None:
        """Route one direction-class group, destination-major.

        With ``deferred`` given, feasible pairs are queued as
        ``(index, model, orientation, src, dst)`` forwarding jobs
        instead of walked inline (policy-replay mode).
        """
        router = self.router
        by_index = {m[0]: m for m in members}
        for chunk in self._primed_chunks(model, members):
            for indices, sources, dest in chunk:
                if self.mode == "blind":
                    feasible = None
                else:
                    feasible = self._group_feasible(model, sources, dest)
                for k, idx in enumerate(indices):
                    _, s, d, src = by_index[int(idx)]
                    if feasible is not None and not feasible[k]:
                        # Match route()'s refusal reason exactly.
                        reason = router._infeasible_reason(model, s, d)
                        results[int(idx)] = RouteResult(
                            delivered=False,
                            path=[src],
                            feasible=False,
                            reason=reason or "infeasible",
                        )
                        continue
                    if deferred is not None:
                        deferred.append((int(idx), model, orientation, s, d))
                    else:
                        results[int(idx)] = router._forward(model, orientation, s, d)

    def _primed_chunks(self, model: _ClassModel, members: list):
        """Destination groups in chunks, reach caches pre-warmed per chunk.

        Each chunk's reverse floods run as ONE batched DP
        (:func:`repro.routing.oracle.reverse_reachable_many`) instead of
        one Python-loop flood per destination; the chunk size never
        exceeds the LRU bound, so a primed mask cannot be evicted before
        its group is processed.
        """
        groups = list(self._dest_groups(members))
        chunk = PRIME_CHUNK
        cache_bound = self.router.reach_cache_size
        if cache_bound is not None:
            chunk = min(chunk, cache_bound)
        for start in range(0, len(groups), chunk):
            block = groups[start : start + chunk]
            dests = [dest for _indices, _sources, dest in block]
            if self.mode in ("mcc", "rfb"):
                model.prime_reach(dests)
            elif self.mode == "oracle":
                self.router._prime_oracle(model, dests)
            yield block


def route_batch(
    fault_mask: np.ndarray,
    pairs: Iterable[Sequence[Sequence[int]]],
    mode: str = "mcc",
    policy: Policy | None = None,
    max_hops: int | None = None,
    reach_cache_size: int | None = DEFAULT_REACH_CACHE_SIZE,
    replay_policy: bool = False,
) -> list[RouteResult]:
    """Route many pairs over one fault pattern with shared model state."""
    service = RoutingService(
        fault_mask,
        mode=mode,
        policy=policy,
        max_hops=max_hops,
        reach_cache_size=reach_cache_size,
        replay_policy=replay_policy,
    )
    return service.route_batch(pairs)
