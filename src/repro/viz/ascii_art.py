"""ASCII renderings of labelled meshes (paper Figures 1, 5 style).

Conventions (canonical frame, +Y up, +X right):

* ``#`` faulty, ``u`` useless, ``c`` can't-reach, ``.`` safe
* overlays can add ``S``/``D`` endpoints, ``*`` route cells, ``|``/``-``
  wall records, ``F`` forbidden region, ``Q`` critical region.

These renderings regenerate the paper's illustrative figures in text
form (experiment IDs F1, F3–F8) and double as debugging tools.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.labelling import CANT_REACH, FAULTY, LabelledGrid, USELESS

_STATUS_CHARS = {0: ".", FAULTY: "#", USELESS: "u", CANT_REACH: "c"}


def render_grid(
    status: np.ndarray | LabelledGrid,
    overlays: Mapping[tuple[int, int], str] | None = None,
    legend: bool = True,
) -> str:
    """Render a 2-D status grid with the origin at the bottom-left."""
    if isinstance(status, LabelledGrid):
        status = status.status
    if status.ndim != 2:
        raise ValueError("render_grid draws 2-D grids; use render_slices for 3-D")
    overlays = dict(overlays or {})
    kx, ky = status.shape
    lines = []
    for y in range(ky - 1, -1, -1):
        row = []
        for x in range(kx):
            row.append(overlays.get((x, y), _STATUS_CHARS[int(status[x, y])]))
        lines.append(f"{y:3d} " + " ".join(row))
    lines.append("    " + " ".join(f"{x % 10}" for x in range(kx)))
    if legend:
        lines.append("    (# faulty, u useless, c can't-reach, . safe)")
    return "\n".join(lines)


def render_slices(
    status: np.ndarray | LabelledGrid,
    axis: int = 2,
    keep: Sequence[int] | None = None,
    overlays: Mapping[tuple[int, int, int], str] | None = None,
) -> str:
    """Render a 3-D grid as 2-D sections along ``axis``.

    ``keep`` restricts to specific section indices (default: sections
    containing any unsafe node — the interesting ones).
    """
    if isinstance(status, LabelledGrid):
        status = status.status
    if status.ndim != 3:
        raise ValueError("render_slices draws 3-D grids")
    overlays = dict(overlays or {})
    if keep is None:
        keep = [
            k
            for k in range(status.shape[axis])
            if (np.take(status, k, axis=axis) != 0).any()
        ]
    blocks = []
    axis_name = "XYZ"[axis]
    for k in keep:
        section = np.take(status, k, axis=axis)
        plane_overlays = {}
        for coord, ch in overlays.items():
            if coord[axis] == k:
                uv = tuple(c for i, c in enumerate(coord) if i != axis)
                plane_overlays[uv] = ch
        blocks.append(
            f"-- section {axis_name} = {k} --\n"
            + render_grid(section, plane_overlays, legend=False)
        )
    return "\n".join(blocks)


def render_route(
    status: np.ndarray | LabelledGrid,
    path: Sequence[Sequence[int]],
    source: Sequence[int] | None = None,
    dest: Sequence[int] | None = None,
) -> str:
    """Render a grid with a route overlaid (works for 2-D and 3-D)."""
    if isinstance(status, LabelledGrid):
        status = status.status
    overlays = {tuple(c): "*" for c in path}
    if path:
        source = source or path[0]
        dest = dest or path[-1]
    if source is not None:
        overlays[tuple(source)] = "S"
    if dest is not None:
        overlays[tuple(dest)] = "D"
    if status.ndim == 2:
        return render_grid(status, overlays)
    keep = sorted({c[2] for c in overlays})
    return render_slices(status, axis=2, keep=keep, overlays=overlays)
