"""ASCII visualization of meshes, fault regions, walls, and routes."""

from repro.viz.ascii_art import render_grid, render_slices, render_route

__all__ = ["render_grid", "render_slices", "render_route"]
