"""MCC extraction: connected components of the unsafe-node set.

After labelling, the disjoint faulty components of the paper are the
orthogonally-connected (4-connected in 2-D, 6-connected in 3-D)
components of the unsafe mask.  Each component, together with its
geometry, is a *minimal connected component* (MCC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import ndimage

from repro.core.labelling import LabelledGrid
from repro.mesh.coords import Coord
from repro.mesh.regions import Box


@dataclass(frozen=True)
class MCC:
    """One minimal connected component in the canonical frame.

    ``index`` is the 1-based label in the owning :class:`MCCSet`'s label
    grid.  ``cells`` is an (N, ndim) array of member coordinates, and
    ``box`` their bounding box.  ``fault_cells``/``nonfaulty_cells`` split
    members by original status — the *overhead* of a fault model is the
    number of non-faulty members (experiment T1).
    """

    index: int
    cells: np.ndarray
    box: Box
    fault_count: int
    nonfaulty_count: int

    @property
    def size(self) -> int:
        return int(self.cells.shape[0])

    @property
    def ndim(self) -> int:
        return int(self.cells.shape[1])

    def mask(self, shape: Sequence[int]) -> np.ndarray:
        """Boolean grid with True at member cells."""
        out = np.zeros(tuple(shape), dtype=bool)
        out[tuple(self.cells.T)] = True
        return out

    def initialization_corner(self) -> Coord:
        """The 2-D identification start: diagonally SW of (xmin, ymin).

        The labelling closure guarantees (xmin, ymin) itself belongs to a
        2-D MCC (tested in test_geometry2d), so this corner is unique.
        May fall outside the mesh when the MCC touches the low faces.
        """
        return tuple(lo - 1 for lo in self.box.lo)

    def opposite_corner(self) -> Coord:
        """Diagonally NE of (xmax, ymax) (may fall outside the mesh)."""
        return tuple(h + 1 for h in self.box.hi)

    def __repr__(self) -> str:
        return (
            f"MCC(#{self.index}, size={self.size}, box={self.box}, "
            f"faults={self.fault_count}, nonfaulty={self.nonfaulty_count})"
        )


@dataclass
class MCCSet:
    """All MCCs of a labelled grid plus the component-label grid.

    ``labels`` holds 0 for safe nodes and the 1-based MCC index
    otherwise, enabling O(1) membership and vectorized region queries.
    """

    labelled: LabelledGrid
    labels: np.ndarray
    mccs: list[MCC] = field(default_factory=list)

    def __iter__(self):
        return iter(self.mccs)

    def __len__(self) -> int:
        return len(self.mccs)

    def __getitem__(self, index: int) -> MCC:
        """1-based lookup matching the label grid values."""
        if not 1 <= index <= len(self.mccs):
            raise IndexError(f"MCC index {index} out of range [1, {len(self.mccs)}]")
        return self.mccs[index - 1]

    def component_at(self, coord: Sequence[int]) -> MCC | None:
        """The MCC containing ``coord``, or None for safe nodes."""
        idx = int(self.labels[tuple(coord)])
        return self[idx] if idx else None

    def mask_of(self, index: int) -> np.ndarray:
        """Boolean mask of one component (vectorized equality test)."""
        return self.labels == index

    @property
    def total_nonfaulty(self) -> int:
        """Total non-faulty nodes captured inside fault regions (T1)."""
        return sum(m.nonfaulty_count for m in self.mccs)

    @property
    def total_unsafe(self) -> int:
        return sum(m.size for m in self.mccs)


def extract_mccs(labelled: LabelledGrid, connectivity: int = 1) -> MCCSet:
    """Split the unsafe mask into MCCs.

    ``connectivity`` follows scipy's convention: 1 = face neighbors only
    (the default; exactness vs the oracle is proven empirically for this
    choice), 2 = faces+edges (the grouping the paper's Figure 5 uses when
    it reports "one MCC contains all the other unsafe nodes"), up to
    ndim = full corner adjacency.  Component granularity only affects
    reporting — the chain-merged walls give identical conditions either
    way (tested in test_conditions).
    """
    unsafe = labelled.unsafe_mask
    structure = ndimage.generate_binary_structure(unsafe.ndim, connectivity)
    labels, count = ndimage.label(unsafe, structure=structure)
    mccs: list[MCC] = []
    fault = labelled.fault_mask
    # ndimage.find_objects gives each component's bounding slices in
    # label order, avoiding a per-component full-grid scan.
    for index, slc in enumerate(ndimage.find_objects(labels), start=1):
        local = labels[slc] == index
        offsets = np.array([s.start for s in slc], dtype=np.int64)
        cells = np.argwhere(local) + offsets
        fault_count = int((fault[slc] & local).sum())
        box = Box(
            tuple(int(c) for c in cells.min(axis=0)),
            tuple(int(c) for c in cells.max(axis=0)),
        )
        mccs.append(
            MCC(
                index=index,
                cells=cells,
                box=box,
                fault_count=fault_count,
                nonfaulty_count=int(cells.shape[0]) - fault_count,
            )
        )
    return MCCSet(labelled=labelled, labels=labels, mccs=mccs)
