"""Source-side feasibility detection (Algorithm 3 step 1, Algorithm 6 step 1).

These are the *operational*, message-walk forms of Theorems 1 and 2: the
source sends detection messages hugging the low faces of the RMP (region
of minimal paths); each message prefers its surface directions and makes
the minimal escape turn when an MCC obstructs it.  In 2-D a minimal path
exists iff both walks reach their target segments; in 3-D the surface
messages are necessary but not sufficient (three face-reaching paths
need not combine into one corner-reaching path), so the feasibility
verdict additionally applies the model's exact reachability rule — see
:func:`detect_canonical`.

2-D (Algorithm 3): two walks from s —

* the Y-message prefers +Y along x = xs, detours +X around MCCs, and
  must reach the segment [xs:xd, yd:yd] (the top edge of the RMP);
* the X-message prefers +X along y = ys, detours +Y, and must reach
  [xd:xd, ys:yd] (the right edge).

3-D (Algorithm 6): three surface floods from s —

* the (−X)-surface message spreads along +Y/+Z, detouring +X, and must
  reach the surface [xs:xd, yd:yd, zs:zd];
* the (−Y)-surface spreads along +X/+Z, detouring +Y, target
  [xs:xd, ys:yd, zd:zd];
* the (−Z)-surface spreads along +X/+Y, detouring +Z, target
  [xd:xd, ys:yd, zs:zd].

Detour moves are only permitted from cells where an in-surface move is
blocked by an *unsafe node* (not by the RMP boundary), matching "if the
propagation … intersects with another MCC, it will make a turn … and
then turn back … as soon as possible".

Everything operates in the canonical frame on the unsafe mask produced
by :func:`repro.core.labelling.label_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.model_cache import cached_labelled
from repro.mesh.orientation import Orientation
from repro.routing.oracle import (
    group_jobs_by_class,
    minimal_path_exists,
    probe_reverse_reachable,
)


@dataclass
class DetectionReport:
    """Outcome of one feasibility check, with per-message detail."""

    feasible: bool
    messages: dict[str, bool] = field(default_factory=dict)
    trails: dict[str, list[tuple[int, ...]]] = field(default_factory=dict)


def _walk_2d(
    unsafe: np.ndarray,
    source: tuple[int, int],
    dest: tuple[int, int],
    prefer_axis: int,
) -> tuple[bool, list[tuple[int, ...]]]:
    """One 2-D detection walk: prefer ``prefer_axis``, detour the other.

    Succeeds on reaching dest's coordinate along the preferred axis while
    still inside the RMP.  Fails when stuck or pushed past the RMP.
    """
    detour_axis = 1 - prefer_axis
    pos = list(source)
    trail = [tuple(pos)]
    while True:
        if pos[prefer_axis] == dest[prefer_axis]:
            return True, trail
        ahead = list(pos)
        ahead[prefer_axis] += 1
        if not unsafe[tuple(ahead)]:
            pos = ahead
        else:
            side = list(pos)
            side[detour_axis] += 1
            if side[detour_axis] > dest[detour_axis] or unsafe[tuple(side)]:
                return False, trail
            pos = side
        trail.append(tuple(pos))


def _flood_surface_3d(
    unsafe: np.ndarray,
    source: tuple[int, int, int],
    dest: tuple[int, int, int],
    surface_axes: tuple[int, int],
    detour_axis: int,
    target_axis: int,
) -> tuple[bool, list[tuple[int, ...]]]:
    """One 3-D surface flood; returns success and the visited cells.

    BFS from the source.  In-surface moves (+ along ``surface_axes``) are
    always allowed into open RMP cells; the +``detour_axis`` move is
    allowed only from cells where an in-surface move is blocked by an
    unsafe node.  Succeeds when any cell reaches ``dest[target_axis]``
    along ``target_axis``.
    """
    start = tuple(source)
    if unsafe[start]:
        return False, []
    visited = {start}
    queue = [start]
    order = [start]
    while queue:
        cell = queue.pop()
        if cell[target_axis] == dest[target_axis]:
            return True, order
        moves = []
        obstructed = False
        for axis in surface_axes:
            ahead = list(cell)
            ahead[axis] += 1
            if ahead[axis] > dest[axis]:
                continue
            if unsafe[tuple(ahead)]:
                obstructed = True
            else:
                moves.append(tuple(ahead))
        if obstructed:
            ahead = list(cell)
            ahead[detour_axis] += 1
            if ahead[detour_axis] <= dest[detour_axis] and not unsafe[tuple(ahead)]:
                moves.append(tuple(ahead))
        for nxt in moves:
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
                order.append(nxt)
    # Exhausted without touching the target face.
    return False, order


def detect_canonical(
    unsafe: np.ndarray, source: Sequence[int], dest: Sequence[int]
) -> DetectionReport:
    """Feasibility detection in the canonical frame (source <= dest).

    Assumes a full-dimensional direction class (``source < dest`` on
    every axis): each surface message verifies one coordinate, which is
    vacuous along a zero-offset axis.  :func:`detection_feasible`
    reduces degenerate pairs to the slice problem before calling this.
    """
    source = tuple(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    ndim = unsafe.ndim
    if any(s > d for s, d in zip(source, dest, strict=True)):
        raise ValueError(f"not in canonical frame: source {source} !<= dest {dest}")
    if unsafe[source] or unsafe[dest]:
        raise ValueError("detection requires safe source and destination")
    report = DetectionReport(feasible=True)
    if ndim == 2:
        specs = {"+Y along x=xs": 1, "+X along y=ys": 0}
        for name, prefer in specs.items():
            ok, trail = _walk_2d(unsafe, source, dest, prefer)
            report.messages[name] = ok
            report.trails[name] = trail
    elif ndim == 3:
        specs = {
            "(-X)-surface": ((1, 2), 0, 1),
            "(-Y)-surface": ((0, 2), 1, 2),
            "(-Z)-surface": ((0, 1), 2, 0),
        }
        for name, (surf, detour, target) in specs.items():
            ok, trail = _flood_surface_3d(unsafe, source, dest, surf, detour, target)
            report.messages[name] = ok
            report.trails[name] = trail
    else:
        raise NotImplementedError(
            f"detection walks are defined for 2-D and 3-D meshes, not {ndim}-D"
        )
    # The walk conjunction is exact in 2-D (theorem-tested) but provably
    # incomplete in 3-D: each surface message certifies that one RMP
    # face is reachable, yet three face-reaching paths need not combine
    # into a single corner-reaching path (a diagonal barrier can cut
    # every s->d path while leaving all three faces reachable).  The
    # verdict therefore comes from the model's distilled exact rule —
    # monotone reachability over the labelled-safe cells, equal to the
    # ground truth for safe endpoints by property P1 — while the
    # per-message outcomes stay in the report for the fidelity
    # experiments (T5) and the figures.
    report.feasible = minimal_path_exists(~unsafe, source, dest)
    return report


def detection_feasible(
    fault_mask: np.ndarray, source: Sequence[int], dest: Sequence[int]
) -> bool:
    """End-to-end detection for an arbitrary mesh-frame pair.

    Axes with zero source/dest offset collapse the RMP into a
    lower-dimensional slice a minimal path can never leave; the surface
    walks of Algorithm 6 are only meaningful for full-dimensional
    classes (each message verifies one coordinate, vacuous for a
    degenerate axis), so such pairs are detected on the slice problem:
    3-D pairs with one degenerate axis run the 2-D walks on the slice,
    two degenerate axes reduce to a fault-free-segment check.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    source = tuple(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    if fault_mask[source] or fault_mask[dest]:
        raise ValueError("detection requires safe source and destination")
    live = tuple(a for a in range(fault_mask.ndim) if source[a] != dest[a])
    if len(live) < fault_mask.ndim:
        if not live:
            return True  # source == dest, both non-faulty
        idx = tuple(
            slice(None) if a in live else source[a]
            for a in range(fault_mask.ndim)
        )
        sub_mask = fault_mask[idx]
        sub_source = tuple(source[a] for a in live)
        sub_dest = tuple(dest[a] for a in live)
        if len(live) == 1:
            lo, hi = sorted((sub_source[0], sub_dest[0]))
            return not bool(sub_mask[lo : hi + 1].any())
        return detection_feasible(sub_mask, sub_source, sub_dest)

    orientation = Orientation.for_pair(source, dest, fault_mask.shape)
    labelled = cached_labelled(fault_mask, orientation)
    cs = orientation.map_coord(source)
    cd = orientation.map_coord(dest)
    if labelled.unsafe_mask[cs] or labelled.unsafe_mask[cd]:
        # The walk theorems assume class-safe endpoints (the paper's
        # protocol refuses others).  A degenerate reduction can land
        # here even when the full-dimensional labels were safe: the
        # slice relabelling has fewer escape dimensions and may swallow
        # an endpoint.  The paper leaves the case undefined — answer
        # with exact reachability so callers get the ground truth.
        return minimal_path_exists(orientation.to_canonical(~fault_mask), cs, cd)
    report = detect_canonical(labelled.unsafe_mask, cs, cd)
    return report.feasible


def detection_feasible_batch(
    fault_mask: np.ndarray,
    pairs: Sequence[Sequence[Sequence[int]]],
) -> np.ndarray:
    """Detection verdicts for many pairs over one fault pattern.

    Pair-for-pair identical to :func:`detection_feasible`
    (property-tested), but the per-pair work is batched: one cached
    labelling per direction class, and the exact-reachability verdicts
    — both the labelled-safe rule behind :func:`detect_canonical` and
    the unsafe-endpoint ground-truth fallback — run through the
    destination-grouped flood kernel
    (:func:`repro.routing.oracle.probe_reverse_reachable`), one batched
    DP per destination chunk instead of one flood per pair.  The
    per-message walk trails of :func:`detect_canonical` are not
    materialized (they never feed the verdict); degenerate pairs (any
    zero-offset axis) and meshes without defined walks fall back to the
    per-pair path, reductions and all.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    ndim = fault_mask.ndim
    norm = [
        (
            tuple(int(c) for c in source),
            tuple(int(c) for c in dest),
        )
        for source, dest in pairs
    ]
    out = np.zeros(len(norm), dtype=bool)
    eligible: list[int] = []
    for i, (source, dest) in enumerate(norm):
        if fault_mask[source] or fault_mask[dest]:
            raise ValueError("detection requires safe source and destination")
        live = sum(1 for a in range(ndim) if source[a] != dest[a])
        if live < ndim or ndim not in (2, 3):
            out[i] = detection_feasible(fault_mask, source, dest)
        else:
            eligible.append(i)
    sub = [norm[i] for i in eligible]
    for orientation, jobs in group_jobs_by_class(sub, fault_mask.shape):
        labelled = cached_labelled(fault_mask, orientation)
        unsafe = labelled.unsafe_mask
        open_masks = {
            "labelled": labelled.safe_mask,
            "exact": orientation.to_canonical(~fault_mask),
        }
        split: dict[str, list] = {which: [] for which in open_masks}
        for j, cs, cd in jobs:
            which = "exact" if unsafe[cs] or unsafe[cd] else "labelled"
            split[which].append((eligible[j], cs, cd))
        for which, open_mask in open_masks.items():
            probe_reverse_reachable(open_mask, split[which], out)
    return out
