"""Cross-pattern reuse of canonical-class labellings (content-addressed).

Sweeps and ablations revisit fault patterns: the A1/A4 policy ablations
score the same masks under several variants, and a single T5 pattern is
labelled by three consumers (``ConditionEvaluator``, the adaptive
router, and the detection pass) — each previously running its own
fixed point per direction class.  This module keys the expensive
per-class derivations by **fault-mask content**
(:func:`repro.util.caching.mask_digest`), so any consumer that meets a
(pattern, class, model-kind) combination already labelled anywhere in
the process skips the work entirely.

Two granularities share one bounded LRU:

* :func:`cached_labelled` — just the :class:`LabelledGrid` fixed point;
* :func:`cached_class_assets` — labelled grid + extracted MCCs + walls
  (what the engine and the condition evaluator consume).

Cached arrays are frozen (``writeable=False``): every consumer treats
model state as immutable, and the flag turns an accidental in-place
mutation — which would silently corrupt *other* patterns' results —
into an immediate error.  The online dynamic-fault subsystem
(:mod:`repro.online`) deliberately bypasses this cache: it mutates its
label arrays in place per epoch.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.components import MCCSet, extract_mccs
from repro.core.labelling import LabelledGrid, label_grid
from repro.core.walls import Wall, build_walls
from repro.mesh.orientation import Orientation
from repro.util.caching import LRUCache, mask_digest

#: Bound on cached (pattern, class, kind) entries.  An entry is one int8
#: status grid plus its MCC/wall structures — 64 keeps the ablations'
#: whole revisit window resident without pinning unbounded sweeps.
DEFAULT_LABELLING_CACHE_SIZE = 64

LABELLING_CACHE: LRUCache[tuple, tuple] = LRUCache(DEFAULT_LABELLING_CACHE_SIZE)


def _freeze(labelled: LabelledGrid) -> LabelledGrid:
    labelled.status.setflags(write=False)
    return labelled


def _freeze_assets(mccs: MCCSet, walls: list[Wall]) -> None:
    """Pin every array a cached (labelled, mccs, walls) entry exposes.

    Consumers hold these for the lifetime of a pattern; an in-place
    write through any of them would corrupt *other* callers' results
    for the same mask digest.  ``DynamicFaultModel``
    (:mod:`repro.online.dynamic_model`) is the one sanctioned
    mutable-alias holder — it never goes through this cache, building
    its own label arrays so it can relabel in place per epoch.
    """
    mccs.labels.setflags(write=False)
    for mcc in mccs.mccs:
        mcc.cells.setflags(write=False)
    for wall in walls:
        wall.forbidden.setflags(write=False)
        wall.critical.setflags(write=False)
        for records in wall.records.values():
            records.setflags(write=False)


def _resolve_orientation(
    fault_mask: np.ndarray, orientation: Orientation | None
) -> Orientation:
    if orientation is None:
        return Orientation.identity(fault_mask.shape)
    return orientation


def cached_labelled(
    fault_mask: np.ndarray,
    orientation: Orientation | None = None,
    labeller: Callable[..., LabelledGrid] = label_grid,
    kind: str = "mcc",
    digest: bytes | None = None,
) -> LabelledGrid:
    """The class labelling for a mask, reused across patterns by content.

    ``digest`` lets callers that label many classes of one mask hash it
    once; omitted, it is computed here.  ``kind`` namespaces different
    labellers ("mcc", "rfb", ...) so their entries never collide.
    ``orientation`` defaults to the identity class, matching
    :func:`~repro.core.labelling.label_grid`.
    """
    orientation = _resolve_orientation(fault_mask, orientation)
    if digest is None:
        digest = mask_digest(fault_mask)
    key = (digest, orientation.signs, kind, "labelled")
    hit = LABELLING_CACHE.get(key)
    if hit is not None:
        return hit[0]
    labelled = _freeze(labeller(fault_mask, orientation))
    LABELLING_CACHE.put(key, (labelled,))
    return labelled


def cached_class_assets(
    fault_mask: np.ndarray,
    orientation: Orientation | None = None,
    labeller: Callable[..., LabelledGrid] = label_grid,
    kind: str = "mcc",
    digest: bytes | None = None,
) -> tuple[LabelledGrid, MCCSet, list[Wall]]:
    """Labelled grid + MCCs + walls for one (pattern, class, kind).

    The heavy trio the router and condition evaluator both need; the
    labelled grid is shared with :func:`cached_labelled` entries via the
    same digest, so mixed consumers still label once.
    """
    orientation = _resolve_orientation(fault_mask, orientation)
    if digest is None:
        digest = mask_digest(fault_mask)
    key = (digest, orientation.signs, kind, "assets")
    hit = LABELLING_CACHE.get(key)
    if hit is not None:
        return hit
    labelled = cached_labelled(
        fault_mask, orientation, labeller=labeller, kind=kind, digest=digest
    )
    mccs = extract_mccs(labelled)
    walls = build_walls(mccs)
    _freeze_assets(mccs, walls)
    assets = (labelled, mccs, walls)
    LABELLING_CACHE.put(key, assets)
    return assets


#: Bound on cached :class:`~repro.routing.batch.RoutingService`
#: instances.  A service pins its router's per-class models and
#: LRU-bounded reach caches, so the bound stays small — enough for the
#: sweeps' revisit window (T4 scoring, ablation variants) without
#: pinning every pattern of a long sweep.
DEFAULT_SERVICE_CACHE_SIZE = 8

_SERVICE_CACHE: LRUCache[tuple, object] = LRUCache(DEFAULT_SERVICE_CACHE_SIZE)


def cached_routing_service(fault_mask: np.ndarray, mode: str = "oracle"):
    """A process-wide :class:`RoutingService`, keyed by mask content.

    The cross-pattern analog of :func:`cached_class_assets` for the
    *flood* side of the model: oracle-mode scoring keeps no labellings,
    but its per-destination reverse-reachability masks live in the
    router's caches, so consumers that revisit a fault pattern (the T4
    DES scorer, ablation variants re-scoring one mask) reuse the floods
    instead of re-deriving them.  The mask is copied before keying so a
    caller mutating its array cannot silently poison the cached service.

    Only stateless-policy modes are safely shareable; the default
    oracle service is what the DES experiments need.
    """
    from repro.routing.batch import RoutingService  # avoid import cycle

    fault_mask = np.asarray(fault_mask, dtype=bool)
    key = (mask_digest(fault_mask), mode, "service")
    hit = _SERVICE_CACHE.get(key)
    if hit is not None:
        return hit
    service = RoutingService(fault_mask.copy(), mode=mode)
    _SERVICE_CACHE.put(key, service)
    return service


def clear_labelling_cache() -> None:
    """Drop every cached labelling and service (tests, memory pressure)."""
    LABELLING_CACHE.clear()
    _SERVICE_CACHE.clear()
