"""The paper's primary contribution: the MCC fault information model.

Centralized reference implementations (vectorized with numpy) of:

* unsafe-node labelling (Algorithms 1 and 4, any dimension),
* MCC component extraction and geometry,
* forbidden/critical regions (Q, Q'),
* boundary walls with chain merging,
* the minimal-path existence conditions (Lemma 1, Theorems 1 and 2),
* the source-side detection walks.

The distributed, message-passing realization of the same pipeline lives
in :mod:`repro.distributed`; it is validated against this package.
"""

from repro.core.labelling import (
    CANT_REACH,
    FAULTY,
    SAFE,
    USELESS,
    LabelledGrid,
    label_grid,
    label_mesh,
    unsafe_mask,
)
from repro.core.components import MCC, extract_mccs
from repro.core.shadows import shadow_masks
from repro.core.walls import Wall, build_walls
from repro.core.conditions import (
    minimal_path_exists_lemma1,
    minimal_path_exists_theorem,
)
from repro.core.detection import detection_feasible

__all__ = [
    "SAFE",
    "FAULTY",
    "USELESS",
    "CANT_REACH",
    "LabelledGrid",
    "label_grid",
    "label_mesh",
    "unsafe_mask",
    "MCC",
    "extract_mccs",
    "shadow_masks",
    "Wall",
    "build_walls",
    "minimal_path_exists_lemma1",
    "minimal_path_exists_theorem",
    "detection_feasible",
]
