"""Geometric validators for MCC shapes.

Wang [7] proves 2-D MCCs are rectilinear monotone polygons; this module
provides the predicates the property-based tests use to confirm our
labelling reproduces that geometry, plus section/interval utilities
shared by the figures and the distributed layer's validation.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.regions import Box


def axis_intervals(mask: np.ndarray, axis: int) -> dict[tuple, tuple[int, int]]:
    """Per-line (fixed other coords) [min, max] span of True cells."""
    out: dict[tuple, tuple[int, int]] = {}
    for cell in np.argwhere(mask):
        key = tuple(int(c) for i, c in enumerate(cell) if i != axis)
        v = int(cell[axis])
        lo, hi = out.get(key, (v, v))
        out[key] = (min(lo, v), max(hi, v))
    return out


def is_orthogonally_convex(mask: np.ndarray) -> bool:
    """Every axis-aligned line meets the region in one contiguous run.

    For 2-D MCCs this is the "rectilinear monotone polygon" property:
    each row and each column intersection is a single interval.
    """
    for axis in range(mask.ndim):
        moved = np.moveaxis(mask, axis, -1)
        for line in moved.reshape(-1, mask.shape[axis]):
            idx = np.flatnonzero(line)
            if idx.size and (idx[-1] - idx[0] + 1 != idx.size):
                return False
    return True


def has_sw_corner_cell(mask: np.ndarray) -> bool:
    """(min per axis) cell belongs to the region (2-D MCC invariant).

    The useless-closure fills every southwest notch, so a 2-D MCC always
    contains its bounding box's low corner — the fact that makes the
    initialization corner well-defined.
    """
    cells = np.argwhere(mask)
    if cells.size == 0:
        return True
    lo = tuple(int(c) for c in cells.min(axis=0))
    return bool(mask[lo])


def sections_along(mask: np.ndarray, axis: int) -> dict[int, np.ndarray]:
    """The non-empty 2-D sections of a 3-D region along one axis.

    ``axis`` is the *fixed* axis: ``sections_along(m, 2)`` returns the
    XY sections (keyed by z), matching the paper's section families.
    """
    if mask.ndim != 3:
        raise ValueError("sections_along expects a 3-D mask")
    out: dict[int, np.ndarray] = {}
    for k in range(mask.shape[axis]):
        idx = [slice(None)] * 3
        idx[axis] = k
        section = mask[tuple(idx)]
        if section.any():
            out[k] = section
    return out


def bounding_box(mask: np.ndarray) -> Box | None:
    """Bounding box of the True cells (None when empty)."""
    cells = np.argwhere(mask)
    if cells.size == 0:
        return None
    return Box(
        tuple(int(c) for c in cells.min(axis=0)),
        tuple(int(c) for c in cells.max(axis=0)),
    )
