"""Unsafe-node labelling: Algorithm 1 (2-D), Algorithm 4 (3-D), any n.

Status codes
------------
``SAFE`` (0), ``FAULTY`` (1), ``USELESS`` (2), ``CANT_REACH`` (3).

The rules, for the canonical all-positive direction class:

* a safe node becomes USELESS when *every* positive-axis neighbor exists
  in the mesh and is faulty-or-useless (Algorithm 1 step 2 / Algorithm 4
  step 2);
* a safe node becomes CANT_REACH when every negative-axis neighbor
  exists and is faulty-or-can't-reach (step 3);
* repeat to a fixed point (step 4).

Mesh borders do **not** count as blocking (DESIGN.md interpretation 1):
otherwise the origin corner would be labelled can't-reach in every
fault-free mesh.  With this rule the key invariants hold (and are
property-tested in ``tests/test_minimality.py``):

* a USELESS node u ≠ d cannot appear on any monotone path that ends at
  a safe destination d — all its onward moves lead to useless nodes
  forever;
* a CANT_REACH node u ≠ s cannot be entered by any monotone path that
  starts at a safe source s.

Implementation: a numpy fixed-point sweep.  Each iteration shifts the
blocked mask along every axis and combines with logical AND — O(n · N)
per iteration, at most O(diameter) iterations; grids up to 100³ label in
milliseconds (HPC guide: vectorize the inner loops, keep memory flat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.mesh.orientation import Orientation
from repro.mesh.topology import Mesh

SAFE: int = 0
FAULTY: int = 1
USELESS: int = 2
CANT_REACH: int = 3

STATUS_NAMES = {SAFE: "safe", FAULTY: "faulty", USELESS: "useless", CANT_REACH: "cant-reach"}


def _shifted_blocked(blocked: np.ndarray, axis: int, sign: int) -> np.ndarray:
    """Blocked-status of each node's neighbor along (axis, sign).

    Nodes whose neighbor falls outside the mesh get ``False`` (mesh
    borders are not blocking).
    """
    out = np.zeros_like(blocked)
    src = [slice(None)] * blocked.ndim
    dst = [slice(None)] * blocked.ndim
    if sign > 0:
        # neighbor at +1: out[..., i, ...] = blocked[..., i+1, ...]
        src[axis] = slice(1, None)
        dst[axis] = slice(None, -1)
    else:
        src[axis] = slice(None, -1)
        dst[axis] = slice(1, None)
    out[tuple(dst)] = blocked[tuple(src)]
    return out


def _closure(fault_mask: np.ndarray, sign: int) -> np.ndarray:
    """Fixed point of one labelling rule.

    ``sign=+1`` computes the USELESS set (positive neighbors blocked),
    ``sign=-1`` the CANT_REACH set.  Returns a boolean mask of the newly
    labelled (non-faulty) nodes.
    """
    ndim = fault_mask.ndim
    blocked = fault_mask.copy()
    while True:
        neigh = _shifted_blocked(blocked, 0, sign)
        for axis in range(1, ndim):
            neigh &= _shifted_blocked(blocked, axis, sign)
        # Only not-yet-blocked nodes can change; count them and update
        # in place rather than allocating a fresh mask per sweep.
        neigh &= ~blocked
        if int(neigh.sum()) == 0:
            break
        blocked |= neigh
    return blocked & ~fault_mask


def closure_region(
    blocked: np.ndarray,
    sign: int,
    lo: Sequence[int],
    hi: Sequence[int],
) -> int:
    """Run one labelling rule to its fixed point inside a dirty box.

    ``blocked`` is the *full* blocked mask of one closure (faults plus
    already-labelled nodes) and is updated **in place**; only cells in
    the inclusive box ``[lo, hi]`` may change, cells outside are frozen
    and only read as neighbor values.  Returns the number of newly
    blocked cells.

    Soundness (the dirty-region argument used by
    :class:`repro.online.DynamicFaultModel`): the closure operator is
    monotone, so iterating it from any seed between the generators
    (faults) and the true least fixed point converges to that fixed
    point.  When every cell that can still change lies inside the box —
    e.g. after injecting faults ``P``, a newly blocked cell of the
    ``sign=+1`` closure has a monotone increasing chain of newly blocked
    cells ending at some ``f`` in ``P``, hence sits in ``[0, max(P)]`` —
    the restricted sweep computes exactly the full closure.  The box is
    extended one layer along the neighbor direction so border cells read
    real frozen values; the mesh border itself stays non-blocking.
    """
    ndim = blocked.ndim
    lo = tuple(int(c) for c in lo)
    hi = tuple(int(c) for c in hi)
    if any(a > b for a, b in zip(lo, hi, strict=True)):
        return 0
    with obs.span(
        "closure_region", cat="kernel", sign=sign, lo=list(lo), hi=list(hi)
    ) as sp:
        # Extend one layer toward the neighbor side (clipped to the mesh) so
        # core cells at the box face read true frozen values instead of the
        # border rule; the extra layer itself is never written.
        if sign > 0:
            ext = tuple(
                slice(a, min(b + 2, k))
                for a, b, k in zip(lo, hi, blocked.shape, strict=True)
            )
        else:
            ext = tuple(slice(max(a - 1, 0), b + 1) for a, b in zip(lo, hi, strict=True))
        view = blocked[ext]
        core = np.ones(view.shape, dtype=bool)
        for axis in range(ndim):
            span = hi[axis] - lo[axis] + 1
            idx = [slice(None)] * ndim
            if sign > 0:
                idx[axis] = slice(span, None)
            else:
                idx[axis] = slice(None, view.shape[axis] - span)
            core[tuple(idx)] = False
        changed = 0
        while True:
            neigh = _shifted_blocked(view, 0, sign)
            for axis in range(1, ndim):
                neigh &= _shifted_blocked(view, axis, sign)
            neigh &= ~view
            neigh &= core
            new = int(neigh.sum())
            if new == 0:
                sp.set(changed=changed)
                return changed
            changed += new
            view |= neigh


def _closure_reference(fault_mask: np.ndarray, sign: int) -> np.ndarray:
    """Scalar reference implementation (used by tests, not by callers).

    Literal transcription of Algorithm 1/4: repeatedly scan all nodes and
    apply the local rule until nothing changes.
    """
    shape = fault_mask.shape
    ndim = fault_mask.ndim
    blocked = {tuple(c) for c in np.argwhere(fault_mask)}
    changed = True
    while changed:
        changed = False
        for coord in np.ndindex(shape):
            if coord in blocked:
                continue
            all_blocked = True
            for axis in range(ndim):
                n = list(coord)
                n[axis] += sign
                if not 0 <= n[axis] < shape[axis]:
                    all_blocked = False
                    break
                if tuple(n) not in blocked:
                    all_blocked = False
                    break
            if all_blocked:
                blocked.add(coord)
                changed = True
    out = np.zeros(shape, dtype=bool)
    for coord in blocked:
        out[coord] = True
    return out & ~fault_mask


@dataclass(frozen=True)
class LabelledGrid:
    """The outcome of the labelling procedure, in the canonical frame.

    ``status`` holds SAFE/FAULTY/USELESS/CANT_REACH per node; the
    convenience masks are views derived once.  ``orientation`` records the
    direction class so that callers can map coordinates back to the mesh
    frame.
    """

    status: np.ndarray
    orientation: Orientation

    @property
    def fault_mask(self) -> np.ndarray:
        return self.status == FAULTY

    @property
    def useless_mask(self) -> np.ndarray:
        return self.status == USELESS

    @property
    def cant_reach_mask(self) -> np.ndarray:
        return self.status == CANT_REACH

    @property
    def unsafe_mask(self) -> np.ndarray:
        """Faulty or useless or can't-reach (the MCC node set)."""
        return self.status != SAFE

    @property
    def safe_mask(self) -> np.ndarray:
        return self.status == SAFE

    @property
    def shape(self) -> tuple[int, ...]:
        return self.status.shape

    def status_at(self, coord: Sequence[int]) -> int:
        return int(self.status[tuple(coord)])

    def counts(self) -> dict[str, int]:
        """Node counts per status (reporting helper)."""
        return {
            name: int((self.status == code).sum())
            for code, name in STATUS_NAMES.items()
        }


def label_grid(
    fault_mask: np.ndarray, orientation: Orientation | None = None
) -> LabelledGrid:
    """Run the labelling procedure for one direction class.

    ``fault_mask`` is in mesh-frame coordinates; the returned
    :class:`LabelledGrid` is in the *canonical* frame of ``orientation``
    (identity by default).  A node that satisfies both rules (useless and
    can't-reach) is reported as USELESS — either way it is unsafe, and
    the tie is impossible for non-degenerate meshes larger than 1 per
    axis except through faults on both sides.
    """
    if orientation is None:
        orientation = Orientation.identity(fault_mask.shape)
    canonical_faults = orientation.to_canonical(np.asarray(fault_mask, dtype=bool))
    useless = _closure(canonical_faults, +1)
    cant = _closure(canonical_faults, -1)
    status = np.zeros(canonical_faults.shape, dtype=np.int8)
    status[cant] = CANT_REACH
    status[useless] = USELESS  # USELESS wins ties, see docstring
    status[canonical_faults] = FAULTY
    return LabelledGrid(status=status, orientation=orientation)


def label_mesh(
    mesh: Mesh,
    fault_mask: np.ndarray,
    source: Sequence[int] | None = None,
    dest: Sequence[int] | None = None,
) -> LabelledGrid:
    """Label for the direction class of a concrete (source, dest) pair."""
    if fault_mask.shape != mesh.shape:
        raise ValueError(
            f"fault mask shape {fault_mask.shape} != mesh shape {mesh.shape}"
        )
    if source is None or dest is None:
        orientation = Orientation.identity(mesh.shape)
    else:
        orientation = Orientation.for_pair(
            mesh.require(source, "source"), mesh.require(dest, "dest"), mesh.shape
        )
    return label_grid(fault_mask, orientation)


def unsafe_mask(fault_mask: np.ndarray) -> np.ndarray:
    """Shorthand: canonical-class unsafe mask for a fault mask."""
    return label_grid(np.asarray(fault_mask, dtype=bool)).unsafe_mask
