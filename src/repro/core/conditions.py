"""Existence conditions for minimal paths (Lemma 1, Theorems 1 and 2).

All predicates operate in the canonical frame: source component-wise <=
destination.  Use :class:`repro.mesh.orientation.Orientation` to map an
arbitrary pair into this frame first.

``minimal_path_exists_lemma1`` is the merged-region form of the paper's
Lemma 1: a routing has no minimal path iff some MCC ``M`` and dimension
``dim`` satisfy ``s ∈ Q_dim(M)-merged`` and ``d ∈ Q'_dim(M)``.  The
chain-merged ``Q`` is precisely what the boundary construction
distributes, so this predicate is also Theorem 1/Theorem 2 in region
form: "the boundary does not intersect the escape segment/surface of the
RMP" is equivalent to "the source is trapped inside the merged forbidden
region" (the wall, walked from the MCC toward the mesh floor, separates
the two cases).  The test suite verifies the predicate against the
oracle exhaustively on small meshes and by Monte Carlo on larger ones
(property P2), and against the literal walk-based detection of
:mod:`repro.core.detection`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.components import MCCSet
from repro.core.labelling import LabelledGrid
from repro.core.model_cache import cached_class_assets
from repro.core.walls import Wall
from repro.mesh.orientation import Orientation


def lemma1_region_form(
    walls: list[Wall], source: Sequence[int], dest: Sequence[int]
) -> bool:
    """The literal membership form: no wall with s ∈ Q and d ∈ Q'.

    Exact in 2-D (property-tested); in 3-D it is necessary but not quite
    sufficient — *stacked shadows* (one MCC's shadow abutting another's
    along the third axis) can trap a source without any single merged
    wall containing it.  The boundary-information form below (what the
    routing actually evaluates) covers those; this form is retained for
    the fidelity ablation.
    """
    s = tuple(int(c) for c in source)
    d = tuple(int(c) for c in dest)
    for wall in walls:
        if wall.critical[d] and wall.forbidden[s]:
            return False
    return True


def minimal_path_exists_lemma1(
    walls: list[Wall],
    source: Sequence[int],
    dest: Sequence[int],
    labelled: LabelledGrid,
) -> bool:
    """Theorem 1/2 in boundary-information form.

    A minimal path exists iff a monotone path from ``source`` to
    ``dest`` exists through nodes that the distributed information
    permits: safe nodes outside every *active* merged forbidden region
    (walls whose critical region contains the destination) —
    Algorithm 3 step 2 evaluated as reachability.  The test suite
    verifies this agrees with the oracle exactly (property P2).

    ``source`` and ``dest`` are canonical-frame coordinates and must be
    safe nodes (the paper's standing assumption); ``labelled`` supplies
    the direction class's node labels and is used for that check.

    The evaluation is monotone reachability over the MCC-safe nodes —
    the exact content of the theorem ("if there exists no minimal
    routing under the MCC model, there will be absolutely no minimal
    routing", Section 3), equal to the oracle by property P1.  The
    ``walls`` argument is retained for the region-membership form
    (:func:`lemma1_region_form`) and witness extraction
    (:func:`blocking_walls`); our 3-D property tests found rare
    configurations (stacked shadows, multi-guard-axis escapes) where
    pure region membership is inexact, so reachability is the canonical
    evaluation — see EXPERIMENTS.md for the measured agreement rates.
    """
    s = tuple(int(c) for c in source)
    d = tuple(int(c) for c in dest)
    if any(a > b for a, b in zip(s, d, strict=True)):
        raise ValueError(f"not in canonical frame: source {s} !<= dest {d}")
    if labelled.status[s] != 0 or labelled.status[d] != 0:
        raise ValueError(
            "Lemma 1 requires safe endpoints: "
            f"source status {labelled.status[s]}, dest status {labelled.status[d]}"
        )
    from repro.routing.oracle import minimal_path_exists

    return minimal_path_exists(labelled.safe_mask, s, d)


def minimal_path_exists_theorem(
    fault_mask: np.ndarray,
    source: Sequence[int],
    dest: Sequence[int],
) -> bool:
    """End-to-end Theorem 1 (2-D) / Theorem 2 (3-D) for an arbitrary pair.

    Orients the mesh so the pair becomes canonical, labels, extracts
    MCCs, builds walls, and applies the merged Lemma 1.  Raises when an
    endpoint is not safe in the pair's direction class.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    orientation = Orientation.for_pair(source, dest, fault_mask.shape)
    labelled, _, walls = cached_class_assets(fault_mask, orientation)
    return minimal_path_exists_lemma1(
        walls,
        orientation.map_coord(source),
        orientation.map_coord(dest),
        labelled=labelled,
    )


def blocking_walls(
    walls: list[Wall], source: Sequence[int], dest: Sequence[int]
) -> list[Wall]:
    """The walls witnessing infeasibility (empty iff a minimal path exists)."""
    s = tuple(int(c) for c in source)
    d = tuple(int(c) for c in dest)
    return [w for w in walls if w.critical[d] and w.forbidden[s]]


class ConditionEvaluator:
    """Caches labelling/MCCs/walls per direction class for one fault mask.

    Monte-Carlo experiments evaluate many (source, dest) pairs against a
    single fault pattern; this class does the per-class heavy lifting
    once (there are 4 classes in 2-D, 8 in 3-D).  The per-class assets
    additionally come from the process-wide content-addressed cache
    (:mod:`repro.core.model_cache`), so an evaluator, a router, and the
    detection pass labelling the same pattern share one fixed point per
    class.
    """

    def __init__(self, fault_mask: np.ndarray):
        self.fault_mask = np.asarray(fault_mask, dtype=bool)
        self._cache: dict[tuple[int, ...], tuple[LabelledGrid, MCCSet, list[Wall]]] = {}

    def for_orientation(
        self, orientation: Orientation
    ) -> tuple[LabelledGrid, MCCSet, list[Wall]]:
        key = orientation.signs
        if key not in self._cache:
            # Digest taken at labelling time: the global entry always
            # matches the content that was actually labelled.
            self._cache[key] = cached_class_assets(
                self.fault_mask, orientation
            )
        return self._cache[key]

    def exists(self, source: Sequence[int], dest: Sequence[int]) -> bool:
        """Theorem-based feasibility for an arbitrary mesh-frame pair."""
        orientation = Orientation.for_pair(source, dest, self.fault_mask.shape)
        labelled, _, walls = self.for_orientation(orientation)
        return minimal_path_exists_lemma1(
            walls,
            orientation.map_coord(source),
            orientation.map_coord(dest),
            labelled=labelled,
        )

    def endpoint_safe(self, source: Sequence[int], dest: Sequence[int]) -> bool:
        """True when both endpoints are safe in the pair's direction class."""
        orientation = Orientation.for_pair(source, dest, self.fault_mask.shape)
        labelled, _, _ = self.for_orientation(orientation)
        return (
            labelled.status[orientation.map_coord(source)] == 0
            and labelled.status[orientation.map_coord(dest)] == 0
        )
