"""Boundary walls with chain merging (Algorithm 2 step 3, Algorithm 5 step 4).

A wall for MCC ``M`` and dimension ``dim`` carries three pieces of
information along the cells from which a routing could step into the
forbidden region: the region shape ``M``, the (chain-merged) forbidden
region ``Q_dim``, and the critical region ``Q'_dim``.

Chain merging reproduces the paper's boundary joining: when the wall of
``M`` runs into another MCC ``M'`` (i.e. ``M'`` occupies cells where the
wall would stand), the wall continues along ``M'``'s boundary and the
forbidden regions merge (``Q(M) := Q(M) ∪ Q(M')``).  Here that is
computed as a fixpoint:

    Z := Q_dim(M)
    while some component M' ≠ M occupies an entry cell of Z:
        Z := Z ∪ Q_dim(M')

Entry cells of the final ``Z`` that are safe are the wall's *record
cells*: the distributed protocol deposits its boundary records exactly
there, and the centralized router reads them from this module.  The
critical region stays ``Q'_dim(M)`` — chains extend the forbidden side
only (Algorithm 5 step 4: "merge Q_Y(v) into Q_Y(u)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.components import MCCSet
from repro.core.shadows import entry_cells, negative_shadow, positive_shadow


@dataclass(frozen=True)
class Wall:
    """The merged boundary information of one (MCC, dimension) pair.

    ``forbidden`` is the chain-merged Q; ``critical`` the originating
    MCC's Q'; ``records`` maps each entry axis to the boolean mask of
    safe cells holding this wall's record for that axis; ``chain`` lists
    the MCC indices merged into the forbidden region (starting with the
    owner).
    """

    mcc_index: int
    dim: int
    forbidden: np.ndarray
    critical: np.ndarray
    records: dict[int, np.ndarray]
    chain: tuple[int, ...]

    def guards(self, coord: Sequence[int], entry_axis: int) -> bool:
        """True when ``coord`` holds this wall's record for ``entry_axis``."""
        return bool(self.records[entry_axis][tuple(coord)])


def merged_forbidden(
    mccs: MCCSet, mcc_index: int, dim: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Chain-merged forbidden region of one MCC along ``dim``.

    Returns the merged mask and the tuple of merged component indices.
    The fixpoint terminates because each iteration adds at least one of
    finitely many components.
    """
    labels = mccs.labels
    ndim = labels.ndim

    def shadow_of(idx):
        return negative_shadow(mccs.mask_of(idx), dim)

    merged = [mcc_index]
    z = shadow_of(mcc_index)
    entry_axes = [a for a in range(ndim) if a != dim]
    while True:
        obstructing: set[int] = set()
        for axis in entry_axes:
            wall_cells = entry_cells(z, axis)
            hit = np.unique(labels[wall_cells])
            obstructing.update(int(i) for i in hit if i != 0)
        new = [i for i in sorted(obstructing) if i not in merged]
        if not new:
            return z, tuple(merged)
        for idx in new:
            z |= shadow_of(idx)
            merged.append(idx)


def build_walls(mccs: MCCSet) -> list[Wall]:
    """All walls (one per MCC per dimension) with merged regions.

    Walls whose forbidden region is empty (the MCC hugs the mesh floor
    along ``dim`` everywhere) are still returned — their record masks are
    empty and they never guard anything — so callers can index walls as
    ``mcc_count × ndim`` deterministically.
    """
    ndim = mccs.labels.ndim
    safe = mccs.labelled.safe_mask
    walls: list[Wall] = []
    for mcc in mccs:
        own_mask = mccs.mask_of(mcc.index)
        for dim in range(ndim):
            forbidden, chain = merged_forbidden(mccs, mcc.index, dim)
            critical = positive_shadow(own_mask, dim)
            records = {
                axis: entry_cells(forbidden, axis) & safe
                for axis in range(ndim)
                if axis != dim
            }
            walls.append(
                Wall(
                    mcc_index=mcc.index,
                    dim=dim,
                    forbidden=forbidden,
                    critical=critical,
                    records=records,
                    chain=chain,
                )
            )
    return walls


def walls_for(walls: list[Wall], mcc_index: int) -> list[Wall]:
    """The ndim walls belonging to one MCC."""
    return [w for w in walls if w.mcc_index == mcc_index]


def active_walls(walls: list[Wall], dest: Sequence[int]) -> list[Wall]:
    """Walls whose critical region contains the destination.

    Only these constrain a routing toward ``dest`` (Algorithm 3 step 2b:
    exclude a direction only when "the destination is in the critical
    region").
    """
    dest = tuple(dest)
    return [w for w in walls if bool(w.critical[dest])]


def forbidden_mask_for_dest(
    walls: list[Wall], dest: Sequence[int], shape: Sequence[int]
) -> np.ndarray:
    """Union of merged forbidden regions of all walls active for ``dest``.

    This is the model's prediction of the oracle's exact blocked set
    (restricted to safe cells inside the RMP) — compared head-to-head in
    the fidelity experiment (T5).
    """
    out = np.zeros(tuple(shape), dtype=bool)
    for wall in active_walls(walls, dest):
        out |= wall.forbidden
    return out
