"""Forbidden and critical regions (Q and Q') of fault regions.

For a region ``M`` and a dimension ``dim`` (canonical frame):

* the *forbidden region* ``Q_dim(M)`` is the shadow strictly on the
  negative side of ``M`` along ``dim``: cells whose remaining coordinates
  match some M-cell sitting strictly above them in ``dim`` ("the region
  right below it" in the paper's 2-D prose);
* the *critical region* ``Q'_dim(M)`` is the shadow strictly on the
  positive side ("the region right above it").

A routing whose destination lies in ``Q'_dim(M)`` must never enter
``Q_dim(M)``: it would have to cross ``M`` itself within the shadow
columns, forcing a detour.  Entry into a negative-side shadow is only
possible along the *other* axes (moving +dim inside a column only leaves
the shadow), which is why one wall per (dim, entry-axis) pair — the
paper's six boundary types in 3-D, two in 2-D — suffices to guard it.
"""

from __future__ import annotations

import numpy as np


def _shift_along(mask: np.ndarray, axis: int, sign: int) -> np.ndarray:
    """Shift a boolean grid by one cell along ``axis``; vacated cells False.

    ``sign=+1`` moves content toward higher indices (so ``out[i] =
    mask[i-1]``); ``sign=-1`` the reverse.
    """
    out = np.zeros_like(mask)
    src = [slice(None)] * mask.ndim
    dst = [slice(None)] * mask.ndim
    if sign > 0:
        src[axis] = slice(None, -1)
        dst[axis] = slice(1, None)
    else:
        src[axis] = slice(1, None)
        dst[axis] = slice(None, -1)
    out[tuple(dst)] = mask[tuple(src)]
    return out


def negative_shadow(mask: np.ndarray, axis: int) -> np.ndarray:
    """Cells strictly below some mask cell along ``axis`` (Q_dim).

    Vectorized as a reversed running-OR along the axis, shifted by one so
    the region is strict (mask cells with nothing above are excluded).
    """
    rev = np.flip(mask, axis=axis)
    acc = np.logical_or.accumulate(rev, axis=axis)
    above_or_equal = np.flip(acc, axis=axis)
    return _shift_along(above_or_equal, axis, sign=-1)


def positive_shadow(mask: np.ndarray, axis: int) -> np.ndarray:
    """Cells strictly above some mask cell along ``axis`` (Q'_dim)."""
    acc = np.logical_or.accumulate(mask, axis=axis)
    return _shift_along(acc, axis, sign=+1)


def shadow_masks(mask: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """(forbidden, critical) = (Q_axis, Q'_axis) of a region mask."""
    return negative_shadow(mask, axis), positive_shadow(mask, axis)


def entry_cells(shadow: np.ndarray, entry_axis: int) -> np.ndarray:
    """Cells just outside ``shadow`` whose +entry_axis neighbor is inside.

    These are exactly the positions where the paper's boundaries place
    their information: a routing message can only step into the shadow
    from one of them (or start inside).  Includes unsafe cells — callers
    intersect with the safe mask for wall *records* and with the unsafe
    mask for wall *obstructions* (chain merging).
    """
    inside_ahead = _shift_along(shadow, entry_axis, sign=-1)
    return inside_ahead & ~shadow
