"""Parameter sweeps and result tables for the experiment harness.

``ResultTable`` is intentionally tiny: rows are dictionaries, columns are
discovered from the rows, and rendering produces the fixed-width text
tables that ``EXPERIMENTS.md`` and the benchmark harness print.  No
pandas dependency — the offline environment ships numpy/scipy only.
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class ParamSweep:
    """A cartesian sweep over named parameter axes.

    >>> sweep = ParamSweep({"k": [8, 16], "faults": [1, 2, 3]})
    >>> len(list(sweep))
    6
    """

    axes: Mapping[str, Sequence[Any]]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total


class ResultTable:
    """An append-only table of experiment rows with text/CSV rendering."""

    def __init__(self, title: str = "", columns: Sequence[str] | None = None):
        self.title = title
        self._columns: list[str] = list(columns) if columns else []
        self.rows: list[dict[str, Any]] = []

    def add(self, **row: Any) -> None:
        """Append one row; unseen keys become new columns (ordered)."""
        for key in row:
            if key not in self._columns:
                self._columns.append(key)
        self.rows.append(row)

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> list[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def _format_cell(self, value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering, suitable for terminal output."""
        header = self._columns
        body = [[self._format_cell(r.get(c)) for c in header] for r in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows)."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self._columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self._columns})
        return buf.getvalue()

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultTable({self.title!r}, rows={len(self.rows)})"
