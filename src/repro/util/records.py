"""Parameter sweeps, result tables, and their on-disk format.

``ResultTable`` is intentionally tiny: rows are dictionaries, columns are
discovered from the rows, and rendering produces the fixed-width text
tables that ``EXPERIMENTS.md`` and the benchmark harness print.  No
pandas dependency — the offline environment ships numpy/scipy only.

The durable format is JSON Lines: one header object (format marker,
schema version, title, column order, optional spec fingerprint) followed
by one object per row.  JSON round-trips the value kinds the sweeps
produce exactly — ``int`` stays ``int``, ``float`` repr round-trips
bit-for-bit, ``None``/``NaN``/``±inf`` survive — so a reloaded table
reduces and renders byte-identically.  The same primitives
(:func:`json_line`, :func:`read_jsonl`, :func:`fingerprint_of`) back the
sweep checkpoints in :mod:`repro.parallel.sharding`.  CSV stays a
render-only export: it flattens types (``1`` vs ``1.0`` vs ``"1"``) and
carries no header metadata, so nothing is ever loaded back from it.
"""

from __future__ import annotations

import csv
import hashlib
import io
import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

#: Format marker + schema version of the result-table JSONL header.
RESULT_TABLE_FORMAT = "repro.result-table"
RESULT_TABLE_SCHEMA = 1


class TablePersistenceError(ValueError):
    """A persisted table/checkpoint file cannot be trusted as written."""


class SchemaVersionError(TablePersistenceError):
    """The file declares a schema version this build does not read."""


class FingerprintMismatchError(TablePersistenceError):
    """The file's spec fingerprint differs from the expected one."""


def _json_default(value: Any) -> Any:
    """Map numpy scalars onto the plain types the format is defined over."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"{type(value).__name__} is not JSONL-persistable")


def json_line(obj: Mapping[str, Any]) -> str:
    """One compact JSON line (no trailing newline), numpy-scalar safe.

    Non-finite floats are emitted as the ``NaN``/``Infinity`` literals
    Python's own parser accepts, keeping the round trip lossless.
    """
    return json.dumps(obj, default=_json_default, separators=(",", ":"))


def fingerprint_of(payload: Any) -> str:
    """SHA-256 over the canonical JSON of ``payload`` (sorted keys).

    Used to stamp persisted tables and sweep checkpoints with the spec
    that produced them, so a resume against different parameters fails
    loudly instead of merging incompatible records.
    """
    canonical = json.dumps(
        payload, default=_json_default, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def read_jsonl(
    path: str | os.PathLike, drop_partial_tail: bool = False
) -> tuple[dict[str, Any], list[dict[str, Any]], int]:
    """Read a JSONL file: ``(header, rows, clean_bytes)``.

    ``clean_bytes`` is the length of the newline-terminated prefix —
    a writer killed mid-append leaves a partial final line, and an
    appender must truncate back to this offset before continuing.  With
    ``drop_partial_tail`` the partial line is discarded (checkpoint
    recovery); without it the file is required to be complete and a
    ragged tail raises :class:`TablePersistenceError`.

    ``newline=""`` disables universal-newline translation so
    ``clean_bytes`` counts real file bytes on every platform (with
    translation, Windows ``\\r\\n`` files would make the offset
    undercount and a truncate-then-append would corrupt the file).
    """
    with open(path, "r", encoding="utf-8", newline="") as fh:
        text = fh.read()
    body, newline, tail = text.rpartition("\n")
    if tail:
        if not drop_partial_tail:
            raise TablePersistenceError(
                f"{path}: truncated final line {tail[:80]!r}; "
                "the file was not completely written"
            )
        text = body + newline
    clean_bytes = len(text.encode("utf-8"))
    lines = text.splitlines()
    if not lines:
        raise TablePersistenceError(f"{path}: empty file, no header line")
    try:
        parsed = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise TablePersistenceError(f"{path}: invalid JSONL ({exc})") from exc
    header, rows = parsed[0], parsed[1:]
    if not isinstance(header, dict) or "format" not in header:
        raise TablePersistenceError(
            f"{path}: first line is not a format header (missing 'format' key)"
        )
    if any(not isinstance(row, dict) for row in rows):
        raise TablePersistenceError(f"{path}: non-object row line")
    return header, rows, clean_bytes


def check_header(
    header: Mapping[str, Any],
    path: str | os.PathLike,
    expected_format: str,
    expected_schema: int,
    fingerprint: str | None = None,
) -> None:
    """Validate a JSONL header's format marker, schema, and fingerprint."""
    if header.get("format") != expected_format:
        raise TablePersistenceError(
            f"{path}: format marker {header.get('format')!r} is not "
            f"{expected_format!r}"
        )
    if header.get("schema") != expected_schema:
        raise SchemaVersionError(
            f"{path}: schema version {header.get('schema')!r} is not readable "
            f"by this build (expected {expected_schema}); "
            "regenerate the file or upgrade"
        )
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise FingerprintMismatchError(
            f"{path}: spec fingerprint {header.get('fingerprint')!r} does not "
            f"match the expected {fingerprint!r}; this file belongs to a "
            "different sweep specification"
        )


@dataclass(frozen=True)
class ParamSweep:
    """A cartesian sweep over named parameter axes.

    >>> sweep = ParamSweep({"k": [8, 16], "faults": [1, 2, 3]})
    >>> len(list(sweep))
    6
    """

    axes: Mapping[str, Sequence[Any]]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo, strict=True))

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total


class ResultTable:
    """An append-only table of experiment rows with text/CSV rendering."""

    def __init__(self, title: str = "", columns: Sequence[str] | None = None):
        self.title = title
        self._columns: list[str] = list(columns) if columns else []
        self.rows: list[dict[str, Any]] = []
        #: Canonical digest of the spec that produced this table, when
        #: known (set by ``run_sweep`` and by :meth:`load`); used as the
        #: default stamp in :meth:`save`.
        self.fingerprint: str | None = None

    def add(self, **row: Any) -> None:
        """Append one row; unseen keys become new columns (ordered)."""
        for key in row:
            if key not in self._columns:
                self._columns.append(key)
        self.rows.append(row)

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> list[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def _format_cell(self, value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering, suitable for terminal output."""
        header = self._columns
        body = [[self._format_cell(r.get(c)) for c in header] for r in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows).

        Render-only: CSV flattens value types and drops the header
        metadata, so there is deliberately no ``from_csv`` — durable
        storage goes through :meth:`save`/:meth:`load`.
        """
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self._columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self._columns})
        return buf.getvalue()

    def save(self, path: str | os.PathLike, fingerprint: str | None = None) -> None:
        """Write the table as JSONL: header line, then one line per row.

        ``fingerprint`` (see :func:`fingerprint_of`) stamps the file
        with the sweep spec that produced it; :meth:`load` can then
        refuse files from a different spec.  When omitted, the table's
        own :attr:`fingerprint` (if any) is used.
        """
        header = {
            "format": RESULT_TABLE_FORMAT,
            "schema": RESULT_TABLE_SCHEMA,
            "title": self.title,
            "columns": self._columns,
            "fingerprint": (
                fingerprint if fingerprint is not None else self.fingerprint
            ),
        }
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(json_line(header) + "\n")
            for row in self.rows:
                fh.write(json_line(row) + "\n")

    @classmethod
    def load(
        cls, path: str | os.PathLike, fingerprint: str | None = None
    ) -> "ResultTable":
        """Read a table written by :meth:`save`, verifying the header.

        Raises :class:`TablePersistenceError` for files that are not
        result tables or were cut off mid-write,
        :class:`SchemaVersionError` for unknown schema versions, and —
        when an expected ``fingerprint`` is given —
        :class:`FingerprintMismatchError` if the file was produced by a
        different sweep spec.
        """
        header, rows, _ = read_jsonl(path)
        check_header(
            header, path, RESULT_TABLE_FORMAT, RESULT_TABLE_SCHEMA, fingerprint
        )
        table = cls(title=header.get("title", ""), columns=header.get("columns"))
        table.fingerprint = header.get("fingerprint")
        for row in rows:
            table.add(**row)
        return table

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultTable({self.title!r}, rows={len(self.rows)})"
