"""Shared utilities: deterministic RNG handling, validation, result records."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.validation import (
    check_index,
    check_positive,
    check_probability,
    check_shape_member,
)
from repro.util.records import ParamSweep, ResultTable

__all__ = [
    "make_rng",
    "spawn_rngs",
    "check_index",
    "check_positive",
    "check_probability",
    "check_shape_member",
    "ParamSweep",
    "ResultTable",
]
