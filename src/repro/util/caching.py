"""Bounded caches for the routing hot path.

The per-destination reverse-reachability masks the router memoizes are
small (one bool per node) but unbounded workloads touch unboundedly many
destinations: a million-pair batch over a 64^3 mesh would otherwise pin
hundreds of thousands of masks.  ``LRUCache`` keeps the most recently
used entries and evicts the rest; the batch layer orders work by
destination, so grouped workloads hit the cache even at tiny capacities.

:func:`mask_digest` supports the *cross-pattern* caches layered on top
(:mod:`repro.core.model_cache`): sweeps and ablations that revisit a
fault pattern — e.g. the A1/A4 policy ablations, or T5's three
consumers labelling the same mask — key canonical-class labellings by
fault-mask content so the fixed point runs once per (pattern, class).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

import numpy as np


def mask_digest(mask: np.ndarray) -> bytes:
    """Content address of a boolean mask: digest of shape + packed bits.

    Two masks share a digest iff they have the same shape and the same
    cell values (BLAKE2b, 16-byte digest — collisions are not a
    practical concern).  The mask is packed to bits first so hashing a
    64^3 mesh touches 32 KiB, a few microseconds next to one labelling
    fixed point.
    """
    mask = np.asarray(mask, dtype=bool)
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(mask.shape).encode("ascii"))
    h.update(np.packbits(mask, axis=None).tobytes())
    return h.digest()

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A dict bounded to ``maxsize`` entries with least-recently-used eviction.

    ``maxsize=None`` disables eviction (plain dict behaviour); ``maxsize``
    must otherwise be positive.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"LRUCache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        """The cached value (refreshing recency), or None."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: K, value: V) -> V:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
        return value

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[K]:
        """Snapshot of the cached keys (least recently used first)."""
        return list(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(list(self._data))

    def pop(self, key: K) -> V | None:
        """Remove and return one entry (None when absent).

        Selective eviction for callers that can scope an invalidation —
        e.g. the online routing service drops only the reachability
        masks a fault event can have changed instead of the whole cache.
        Does not count as an eviction (it is an invalidation, not a
        capacity decision) and does not touch the hit/miss counters.
        """
        return self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()
