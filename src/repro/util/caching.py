"""Bounded caches for the routing hot path.

The per-destination reverse-reachability masks the router memoizes are
small (one bool per node) but unbounded workloads touch unboundedly many
destinations: a million-pair batch over a 64^3 mesh would otherwise pin
hundreds of thousands of masks.  ``LRUCache`` keeps the most recently
used entries and evicts the rest; the batch layer orders work by
destination, so grouped workloads hit the cache even at tiny capacities.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A dict bounded to ``maxsize`` entries with least-recently-used eviction.

    ``maxsize=None`` disables eviction (plain dict behaviour); ``maxsize``
    must otherwise be positive.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"LRUCache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        """The cached value (refreshing recency), or None."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: K, value: V) -> V:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
        return value

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
