"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Sequence


def check_positive(name: str, value: int | float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` > 0 (or >= 0 when not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_index(name: str, value: int, size: int) -> None:
    """Raise ``IndexError`` unless ``0 <= value < size``."""
    if not 0 <= value < size:
        raise IndexError(f"{name}={value!r} out of range [0, {size})")


def check_shape_member(name: str, coord: Sequence[int], shape: Sequence[int]) -> None:
    """Raise unless ``coord`` is a valid node address for a mesh of ``shape``."""
    if len(coord) != len(shape):
        raise ValueError(
            f"{name}={tuple(coord)!r} has {len(coord)} coordinates; "
            f"mesh is {len(shape)}-dimensional"
        )
    for axis, (c, k) in enumerate(zip(coord, shape, strict=True)):
        if not 0 <= c < k:
            raise IndexError(
                f"{name}={tuple(coord)!r} outside mesh: axis {axis} "
                f"requires 0 <= {c} < {k}"
            )
