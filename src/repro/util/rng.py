"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed
or a :class:`numpy.random.Generator`.  Centralizing the coercion here
keeps experiments reproducible: the same seed always yields the same
fault patterns, workloads, and adaptive routing choices.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    thread one RNG through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    A ``SeedSequence`` input is *copied* (same entropy and spawn key,
    spawn counter reset) so that repeated calls spawn the same children
    — ``SeedSequence.spawn`` is stateful, and the sharded sweep runner
    needs positional, replayable derivation.  Generators are consumed
    for one draw so a fresh sequence is derived from their stream,
    mirroring :func:`spawn_rngs`.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=seed.spawn_key,
            pool_size=seed.pool_size,
        )
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def spawn_seed_sequences(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences (picklable).

    The sharded sweep runner ships these to worker processes: a child
    sequence fully determines its pattern's stream, so results do not
    depend on which shard — or process — evaluates it.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    return list(as_seed_sequence(seed).spawn(n))


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by parameter sweeps so every grid point gets its own stream and
    results do not depend on evaluation order (the HPC guides' rule:
    determinism first, parallelism later).

    A ``SeedSequence`` input is used *statefully*: successive calls on
    the same sequence keep yielding fresh independent children.  For
    positional, replayable derivation use :func:`spawn_seed_sequences`.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = as_seed_sequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def replayable_seed_payload(seed: SeedLike) -> Union[int, None, dict]:
    """A JSON-safe, canonical payload identifying a replayable seed.

    Used wherever a seed participates in a persistent identity — the
    sweep runner's checkpoint fingerprints, saved result-table headers —
    so the same seed always serializes to the same bytes.  ``int`` and
    ``None`` pass through; a :class:`numpy.random.SeedSequence` is
    reduced to its defining (entropy, spawn_key, pool_size) triple.  A
    live :class:`numpy.random.Generator` has hidden stream state that
    cannot be replayed from any serialization and raises ``TypeError``.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "a live Generator is not replayable; use an int, None, or a "
            "SeedSequence where a persistent seed identity is needed"
        )
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        return {
            "entropy": list(entropy)
            if isinstance(entropy, (list, tuple))
            else entropy,
            "spawn_key": list(seed.spawn_key),
            "pool_size": seed.pool_size,
        }
    return seed


def sample_distinct(
    rng: np.random.Generator, population: int, k: int
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(population)``.

    Thin wrapper over ``Generator.choice(..., replace=False)`` with bounds
    checking and a stable dtype, shared by fault and workload generators.
    """
    if k > population:
        raise ValueError(f"cannot draw {k} distinct items from {population}")
    if k < 0:
        raise ValueError(f"cannot draw a negative number of items ({k})")
    return rng.choice(population, size=k, replace=False).astype(np.int64)


def iter_seeds(seed: SeedLike, labels: Iterable[str]) -> dict[str, np.random.Generator]:
    """Give each label in ``labels`` its own derived generator (by order)."""
    labels = list(labels)
    rngs = spawn_rngs(seed, len(labels))
    return dict(zip(labels, rngs, strict=True))


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a shuffled copy of ``items`` (the input is left untouched)."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]
