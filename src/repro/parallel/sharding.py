"""Sharded sweep runner: one fault pattern per task, shards per process.

The paper's headline curves (T1 region overhead, T2 success rate, T4 DES
routing) average over many independently sampled fault patterns.  Each
pattern is embarrassingly parallel — it owns its own
:class:`repro.routing.batch.RoutingService` and scores its pair workload
with one batched call — so the sweep scales on the *pattern* axis:

1. :func:`plan_tasks` derives one :class:`PatternTask` per (fault count,
   trial) cell, each carrying its own :class:`numpy.random.SeedSequence`
   child.  A task's stream depends only on the sweep seed and its
   position, never on which shard or process evaluates it.
2. :func:`partition_tasks` deals tasks round-robin into shards.
3. Workers evaluate their shards (``multiprocessing`` pool, or in-process
   when ``workers=1`` — the debuggable fallback) and return compact
   per-pattern records: plain dicts of counters, no arrays, no services.
4. The reducer merges records **in global task order**, so the merged
   table is byte-identical for any shard or worker count (float
   summation order is fixed; property-tested in test_sweep_sharding).

Experiments register themselves in :data:`EXPERIMENTS` as dotted
``module:function`` paths (resolved lazily, so worker processes under
the ``spawn`` start method re-import them cleanly and there is no
import cycle with :mod:`repro.experiments`).

Command-line interface (also see ``benchmarks/bench_sweep_sharding.py``)::

    PYTHONPATH=src python -m repro.parallel \
        t2 --shape 12 12 12 \
        --fault-counts 20 60 120 --trials 8 --pairs 200 \
        --workers 4 --seed 2005

The positional experiment accepts registered names (``success_rate``,
``region_overhead``, ``des_routing``, ``protocol_overhead``,
``fidelity``, ``churn``, ``load``, ``ablation_rfb``, ``ablation_4d``)
or the table aliases (``t1``–``t7``, ``a1``, ``a4``; ``t6`` is the
fault-churn workload and ``t7`` the contended-link load sweep, both
added on top of the paper); ``--experiment NAME`` is kept
for scripts.  ``--shape``/``--fault-counts``/``--trials``/``--seed``
define the pattern grid; ``--pairs`` (T1/T2/T5) or ``--queries`` (T4)
size the per-pattern workload; ``--workers`` sets the process count
(1 = in-process) and ``--shards`` overrides the partition count
(defaults to ``workers``) for shard-invariance checks; ``--csv`` emits
CSV instead of the text table; ``--save PATH`` writes the merged table
in the durable JSONL format.

Checkpoint & resume
-------------------

Long sweeps survive interruption: ``run_sweep(..., checkpoint=path)``
(CLI ``--checkpoint PATH``) opens a JSONL journal whose header carries
the canonical :meth:`SweepSpec.fingerprint`, and appends one compact
record per completed fault pattern as shards finish (flushed + fsynced,
so a kill loses at most the in-flight shard).  Restarting the same
command validates the fingerprint — a checkpoint from a different spec
fails loudly with :class:`repro.util.records.FingerprintMismatchError` —
drops any partially written final line, skips the task indices already
on disk, and reduces old+new records in global task order, so the
resumed table is byte-identical to an uninterrupted run (property-tested
in ``tests/test_sweep_sharding.py``)::

    PYTHONPATH=src python -m repro.parallel t3 --workers 4 \
        --checkpoint out/t3.jsonl

Run the command again after an interruption (same flags, same
checkpoint path) and only the missing patterns are evaluated; a
checkpoint that already holds every record reduces straight from disk
without touching a worker.
"""

from __future__ import annotations

import argparse
import importlib
import json
import multiprocessing as mp
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.util.records import (
    ResultTable,
    TablePersistenceError,
    check_header,
    fingerprint_of,
    json_line,
    read_jsonl,
)
from repro.util.rng import (
    SeedLike,
    replayable_seed_payload,
    spawn_seed_sequences,
)

#: Registered experiments: name -> (evaluator path, reducer path).
#: An evaluator maps ``(spec, task) -> dict`` of plain numbers for one
#: fault pattern; a reducer maps ``(spec, records) -> ResultTable`` with
#: the records already sorted in global task order.
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "success_rate": (
        "repro.experiments.exp_success_rate:evaluate_pattern",
        "repro.experiments.exp_success_rate:reduce_records",
    ),
    "region_overhead": (
        "repro.experiments.exp_region_overhead:evaluate_pattern",
        "repro.experiments.exp_region_overhead:reduce_records",
    ),
    "des_routing": (
        "repro.experiments.exp_des_routing:evaluate_pattern",
        "repro.experiments.exp_des_routing:reduce_records",
    ),
    "protocol_overhead": (
        "repro.experiments.exp_protocol_overhead:evaluate_pattern",
        "repro.experiments.exp_protocol_overhead:reduce_records",
    ),
    "fidelity": (
        "repro.experiments.exp_fidelity:evaluate_pattern",
        "repro.experiments.exp_fidelity:reduce_records",
    ),
    "ablation_rfb": (
        "repro.experiments.exp_ablation:evaluate_rfb_pattern",
        "repro.experiments.exp_ablation:reduce_rfb_records",
    ),
    "ablation_4d": (
        "repro.experiments.exp_ablation:evaluate_mesh4d_pattern",
        "repro.experiments.exp_ablation:reduce_mesh4d_records",
    ),
    "churn": (
        "repro.experiments.exp_churn:evaluate_pattern",
        "repro.experiments.exp_churn:reduce_records",
    ),
    "churn_des": (
        "repro.experiments.exp_churn:evaluate_des_pattern",
        "repro.experiments.exp_churn:reduce_des_records",
    ),
    "load": (
        "repro.experiments.exp_load:evaluate_pattern",
        "repro.experiments.exp_load:reduce_records",
    ),
}

#: Paper-table shorthands accepted by the CLI's positional argument.
CLI_ALIASES: dict[str, str] = {
    "t1": "region_overhead",
    "t2": "success_rate",
    "t3": "protocol_overhead",
    "t4": "des_routing",
    "t5": "fidelity",
    "t6": "churn",
    "t7": "load",
    "a1": "ablation_rfb",
    "a4": "ablation_4d",
}

#: CLI dispatch: experiment -> (``run_*`` wrapper path, workload flags).
#: The wrapper is the one place the experiment's SweepSpec is built, so
#: CLI- and Python-started checkpoints share fingerprints by
#: construction.  The parser's experiment choices derive from this dict
#: (plus :data:`CLI_ALIASES`), so an experiment registered only in
#: :data:`EXPERIMENTS` is cleanly rejected by argparse instead of
#: crashing at dispatch; ``tests/test_sweep_sharding.py`` pins the two
#: registries to the same key set.
CLI_RUNNERS: dict[str, tuple[str, tuple[str, ...]]] = {
    "success_rate": (
        "repro.experiments.exp_success_rate:run_success_rate",
        ("pairs",),
    ),
    "region_overhead": (
        "repro.experiments.exp_region_overhead:run_region_overhead",
        (),
    ),
    "des_routing": (
        "repro.experiments.exp_des_routing:run_des_routing",
        ("queries",),
    ),
    "protocol_overhead": (
        "repro.experiments.exp_protocol_overhead:run_protocol_overhead",
        (),
    ),
    "fidelity": ("repro.experiments.exp_fidelity:run_fidelity", ("pairs",)),
    "ablation_rfb": ("repro.experiments.exp_ablation:run_rfb_variants", ()),
    "ablation_4d": ("repro.experiments.exp_ablation:run_mesh4d_extension", ()),
    "churn": (
        "repro.experiments.exp_churn:run_churn",
        ("pairs", "epochs", "churn", "mode", "des"),
    ),
    # ``churn_des`` is reached through ``run_churn(des=True)`` — the CLI
    # exposes it as ``t6 --des`` so the sweep spec is built in exactly
    # one place and CLI/Python checkpoints share fingerprints.
    "churn_des": (
        "repro.experiments.exp_churn:run_churn",
        ("pairs", "epochs", "churn", "mode", "des"),
    ),
    "load": (
        "repro.experiments.exp_load:run_load_sweep",
        ("rates", "duration", "capacity"),
    ),
}

#: Format marker + schema version of the sweep-checkpoint JSONL header.
CHECKPOINT_FORMAT = "repro.sweep-checkpoint"
CHECKPOINT_SCHEMA = 1


class PatternTaskError(RuntimeError):
    """A worker failed evaluating one fault pattern (task identified)."""


@dataclass(frozen=True)
class SweepSpec:
    """A deterministic multi-pattern sweep description (picklable).

    ``params`` carries experiment-specific knobs (e.g. ``pairs`` for the
    success-rate sweep, ``queries`` for the DES sweep); evaluators read
    them with :meth:`param`.
    """

    experiment: str
    shape: tuple[int, ...]
    fault_counts: tuple[int, ...]
    trials: int
    seed: SeedLike = 2005
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; "
                f"pick from {sorted(EXPERIMENTS)}"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        object.__setattr__(self, "shape", tuple(int(k) for k in self.shape))
        object.__setattr__(
            self, "fault_counts", tuple(int(c) for c in self.fault_counts)
        )

    def param(self, name: str, default: Any) -> Any:
        return self.params.get(name, default)

    def fingerprint(self) -> str:
        """Canonical digest of the sweep: same spec ⇔ same fingerprint.

        Stamped into checkpoint and result-table headers so a resume
        against different parameters (or a different experiment) is
        rejected instead of silently merging incompatible records.
        Only replayable seeds can be fingerprinted: an ``int``/``None``
        or a :class:`numpy.random.SeedSequence`; a live ``Generator``
        has hidden stream state and raises ``TypeError``.
        """
        try:
            seed = replayable_seed_payload(self.seed)
        except TypeError as exc:
            raise TypeError(
                "cannot fingerprint a sweep seeded with a live Generator; "
                "checkpointed sweeps need a replayable seed "
                "(int, None, or SeedSequence)"
            ) from exc
        return fingerprint_of(
            {
                "experiment": self.experiment,
                "shape": list(self.shape),
                "fault_counts": list(self.fault_counts),
                "trials": self.trials,
                "seed": seed,
                "params": dict(self.params),
            }
        )


@dataclass(frozen=True)
class PatternTask:
    """One fault pattern to evaluate: grid position + private seed."""

    index: int  # global position in the sweep (reduce order)
    count_index: int  # position of ``count`` in spec.fault_counts
    count: int  # number of faults in this pattern
    trial: int  # trial number within the fault count
    seed: np.random.SeedSequence

    def rng(self) -> np.random.Generator:
        """The pattern's private generator (mask + workload draws)."""
        return np.random.default_rng(self.seed)


def _resolve(path: str | Callable) -> Callable:
    """Import ``"module:attribute"`` lazily (worker-process safe).

    Already-callable registry entries pass through, so tests can patch
    :data:`EXPERIMENTS` with plain functions for in-process runs.
    """
    if callable(path):
        return path
    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def legacy_rng(
    spec: SweepSpec,
    task: PatternTask,
    replay: Callable[[np.random.Generator], None],
) -> np.random.Generator:
    """The retired serial sweeps' stateful stream, positioned at ``task``.

    The pre-sharding T3/T5/ablation loops drew one generator per fault
    count (``spawn_rngs``) and threaded it through that count's trials,
    so trial ``t``'s draws depend on trials ``0..t-1``.  To shard those
    sweeps per-pattern *without changing their published numbers*, an
    evaluator re-derives the count generator here and replays the
    earlier trials' draws via ``replay(rng)`` — draws only (masks, pair
    samples), never the expensive scoring, so the replay cost is
    O(trials) cheap RNG calls per task.
    """
    seqs = spawn_seed_sequences(spec.seed, len(spec.fault_counts))
    rng = np.random.default_rng(seqs[task.count_index])
    for _ in range(task.trial):
        replay(rng)
    return rng


def plan_tasks(spec: SweepSpec) -> list[PatternTask]:
    """All pattern tasks of the sweep, in global (reduce) order.

    Seed derivation is positional: one child sequence per fault count,
    then one grandchild per trial — the same tree for every shard
    layout, so any partition of the tasks replays identical patterns.
    """
    count_seqs = spawn_seed_sequences(spec.seed, len(spec.fault_counts))
    tasks: list[PatternTask] = []
    for count_index, (count, seq) in enumerate(zip(spec.fault_counts, count_seqs, strict=True)):
        for trial, child in enumerate(seq.spawn(spec.trials)):
            tasks.append(
                PatternTask(
                    index=len(tasks),
                    count_index=count_index,
                    count=count,
                    trial=trial,
                    seed=child,
                )
            )
    return tasks


def partition_tasks(
    tasks: Sequence[PatternTask], shards: int
) -> list[list[PatternTask]]:
    """Deal tasks round-robin into ``shards`` lists (some may be empty).

    Round-robin balances the expensive high-fault-count tail across
    shards; correctness never depends on the layout because the reducer
    re-sorts by global task index.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [list(tasks[s::shards]) for s in range(shards)]


def evaluate_shard(
    spec: SweepSpec, tasks: Sequence[PatternTask], trace: bool = False
) -> list[dict[str, Any]]:
    """Evaluate one shard's patterns; records tagged with task positions.

    A pattern that raises is re-raised as :class:`PatternTaskError`
    naming the task's global index, fault count, trial, and seed, so a
    failure deep inside a long parallel sweep identifies exactly which
    pattern died and how to replay it.

    With ``trace=True`` each pattern evaluates under its own
    :class:`repro.obs.Tracer` (one Perfetto track per pattern, rooted in
    a ``pattern`` harness span) and ships its span buffer on the record
    as ``"_spans"`` — plain dicts, popped again by :func:`run_sweep`
    before any journaling so checkpoint bytes never change.
    """
    evaluator = _resolve(EXPERIMENTS[spec.experiment][0])
    records = []
    for task in tasks:
        tracer = None
        try:
            if trace:
                tracer = obs.Tracer(track=f"pattern-{task.index:04d}")
                with obs.tracing(tracer), tracer.span(
                    "pattern",
                    cat="harness",
                    index=task.index,
                    faults=task.count,
                    trial=task.trial,
                ):
                    record = dict(evaluator(spec, task))
            else:
                record = dict(evaluator(spec, task))
        except Exception as exc:
            raise PatternTaskError(
                f"pattern task {task.index} failed (experiment="
                f"{spec.experiment!r}, faults={task.count}, "
                f"trial={task.trial}, seed entropy={task.seed.entropy}, "
                f"spawn_key={task.seed.spawn_key}): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        record["_index"] = task.index
        record["_count_index"] = task.count_index
        record["_count"] = task.count
        if tracer is not None:
            record["_spans"] = [sp.to_dict() for sp in tracer.spans]
        records.append(record)
    return records


def _evaluate_shard_star(args: tuple[SweepSpec, list[PatternTask], bool]):
    return evaluate_shard(*args)


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern records into the experiment's summary table.

    Records are sorted by global task index first, so the reduction —
    including float accumulation — happens in one canonical order
    regardless of how many shards (or processes) produced them.
    """
    reducer = _resolve(EXPERIMENTS[spec.experiment][1])
    ordered = sorted(records, key=lambda r: r["_index"])
    return reducer(spec, ordered)


def _checkpoint_header(spec: SweepSpec) -> dict[str, Any]:
    return {
        "format": CHECKPOINT_FORMAT,
        "schema": CHECKPOINT_SCHEMA,
        "experiment": spec.experiment,
        "fingerprint": spec.fingerprint(),
    }


def _has_complete_header(path: str | os.PathLike) -> bool:
    """True when ``path`` holds at least one newline-terminated line."""
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return False
    with open(path, "rb") as fh:
        return fh.readline(1 << 20).endswith(b"\n")


def load_checkpoint(
    path: str | os.PathLike, spec: SweepSpec
) -> dict[int, dict[str, Any]]:
    """Completed per-pattern records from a checkpoint, keyed by index.

    Validates the header (format marker, schema version, spec
    fingerprint) and truncates any partially written final line — a
    killed writer may leave one — so the file is append-clean again.
    Duplicate indices keep the first occurrence.
    """
    header, rows, clean_bytes = read_jsonl(path, drop_partial_tail=True)
    check_header(
        header, path, CHECKPOINT_FORMAT, CHECKPOINT_SCHEMA, spec.fingerprint()
    )
    if os.path.getsize(path) > clean_bytes:
        os.truncate(path, clean_bytes)
    records: dict[int, dict[str, Any]] = {}
    for row in rows:
        index = row.get("_index")
        if isinstance(index, int) and index not in records:
            records[index] = row
    return records


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    shards: int | None = None,
    checkpoint: str | os.PathLike | None = None,
    save: str | os.PathLike | None = None,
    trace: str | os.PathLike | None = None,
) -> ResultTable:
    """Run the sweep: plan, partition, evaluate (maybe in parallel), reduce.

    ``workers=1`` evaluates every shard in the calling process — same
    code path as the parallel run minus the pool, for debugging.
    ``shards`` defaults to ``max(workers, 1)``; passing a different
    value checks shard invariance or over-partitions for balance.

    ``checkpoint`` names a JSONL journal: records append as they
    complete (per pattern in-process, per shard under the pool, each
    batch flushed and fsynced), and a rerun with the same spec skips the
    patterns already on disk.  Because the reducer consumes records in
    global task order, the resumed table is byte-identical to an
    uninterrupted run for any shard/worker count and any interruption
    point.  Records pass through the JSON codec even on the first run,
    so fresh and reloaded records are the same plain types.

    ``save`` writes the merged table as durable JSONL — the same flag
    every ``run_*`` entry point and the CLI expose (the shared kwargs
    contract normalized by ``repro.experiments.harness.ExperimentSpec``).

    ``trace`` names a Perfetto trace-event JSON output: every evaluated
    pattern runs under a per-task tracer (one trace track per pattern)
    and the buffers merge in global task order, so the trace's
    virtual-time stream is byte-identical for any shard/worker layout.
    Span buffers ride the in-memory records only — they are stripped
    before checkpoint journaling (checkpoint bytes are unchanged by
    tracing), which also means patterns resumed *from* a checkpoint
    contribute no spans.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tasks = plan_tasks(spec)
    done: dict[int, dict[str, Any]] = {}
    journal = None
    if checkpoint is not None:
        if _has_complete_header(checkpoint):
            done = load_checkpoint(checkpoint, spec)
        else:
            # Missing, empty, or killed mid-header-write (a non-empty
            # file with no newline yet): (re)start a fresh journal.
            # Overwriting is only safe when the stub really is our own
            # interrupted header — a prefix of this spec's header line —
            # otherwise a mistyped path would destroy an unrelated file.
            header_line = (json_line(_checkpoint_header(spec)) + "\n").encode(
                "utf-8"
            )
            if os.path.exists(checkpoint) and os.path.getsize(checkpoint) > 0:
                with open(checkpoint, "rb") as fh:
                    stub = fh.read(len(header_line) + 1)
                if not header_line.startswith(stub):
                    raise TablePersistenceError(
                        f"{checkpoint}: existing file is not a checkpoint "
                        "for this sweep (nor an interrupted header write); "
                        "refusing to overwrite it"
                    )
            with open(checkpoint, "w", encoding="utf-8", newline="") as fh:
                fh.write(header_line.decode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
        journal = open(checkpoint, "a", encoding="utf-8", newline="")

    remaining = [t for t in tasks if t.index not in done]
    shard_lists = partition_tasks(
        remaining, shards if shards is not None else workers
    )
    work = [(spec, shard, trace is not None) for shard in shard_lists if shard]
    new_records: list[dict[str, Any]] = []
    spans_by_index: dict[int, list[dict[str, Any]]] = {}

    def absorb(shard_records: list[dict[str, Any]]) -> None:
        # Span buffers never reach the journal or the reducer: pop them
        # here so checkpoint files and tables are byte-identical whether
        # or not the run was traced.
        for r in shard_records:
            spans = r.pop("_spans", None)
            if spans is not None:
                spans_by_index[r["_index"]] = spans
        if journal is None:
            new_records.extend(shard_records)
            return
        lines = [json_line(r) for r in shard_records]
        journal.write("".join(line + "\n" for line in lines))
        journal.flush()
        os.fsync(journal.fileno())
        # Keep the in-memory copy JSON-typed, exactly as a resume would
        # reload it, so checkpointed and resumed reductions are
        # bit-for-bit the same arithmetic.
        new_records.extend(json.loads(line) for line in lines)

    try:
        if workers == 1 or len(work) <= 1:
            for s, shard, traced in work:
                if journal is None:
                    absorb(evaluate_shard(s, shard, traced))
                else:
                    # Per-pattern journal granularity: a kill mid-shard
                    # loses only the pattern being evaluated.
                    for task in shard:
                        absorb(evaluate_shard(s, [task], traced))
        else:
            # Fork is cheap and safe on Linux; elsewhere take the platform
            # default (macOS forks crash in Accelerate/objc after numpy
            # import — tasks are picklable by design, so spawn just works).
            ctx = (
                mp.get_context("fork")
                if sys.platform == "linux"
                else mp.get_context()
            )
            with ctx.Pool(processes=min(workers, len(work))) as pool:
                for shard_records in pool.imap_unordered(
                    _evaluate_shard_star, work
                ):
                    absorb(shard_records)
    finally:
        if journal is not None:
            journal.close()
    if trace is not None:
        # Merge worker buffers in global task order: the same stream for
        # any shard/worker layout (sequence numbers reassigned on absorb).
        merged = obs.Tracer()
        for index in sorted(spans_by_index):
            merged.absorb(spans_by_index[index])
        obs.write_perfetto(trace, merged.spans)
    table = reduce_records(spec, list(done.values()) + new_records)
    try:
        table.fingerprint = spec.fingerprint()
    except TypeError:
        pass  # Generator-seeded sweeps have no canonical fingerprint.
    if save is not None:
        table.save(save)
    return table


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run a sharded multi-pattern experiment sweep."
    )
    parser.add_argument(
        "experiment_name",
        nargs="?",
        metavar="experiment",
        choices=sorted(CLI_RUNNERS) + sorted(CLI_ALIASES),
        help="registered experiment or paper-table alias (t1..t7, a1, a4)",
    )
    parser.add_argument(
        "--experiment",
        choices=sorted(CLI_RUNNERS),
        help="registered experiment (script-friendly form of the positional)",
    )
    parser.add_argument("--shape", type=int, nargs="+", default=[12, 12, 12])
    parser.add_argument(
        "--fault-counts", type=int, nargs="+", default=[20, 60, 120]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--queries", type=int, default=30)
    parser.add_argument(
        "--epochs", type=int, default=6,
        help="fault events per pattern (churn/t6 sweep)",
    )
    parser.add_argument(
        "--churn", type=int, default=2,
        help="cells injected/repaired per event (churn/t6 sweep)",
    )
    parser.add_argument(
        "--mode", choices=["mcc", "rfb", "oracle", "blind"], default="mcc",
        help="fault-information model the online service maintains (t6)",
    )
    parser.add_argument(
        "--des", action="store_true",
        help="score the distributed stack under churn next to the "
        "centralized mcc/rfb services (t6 --des)",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+", default=[0.2, 0.5, 1.0],
        help="offered session arrivals per time unit (load/t7 sweep)",
    )
    parser.add_argument(
        "--duration", type=float, default=40.0,
        help="Poisson arrival window per rate (load/t7 sweep)",
    )
    parser.add_argument(
        "--capacity", type=int, default=1,
        help="messages per directed link per link delay (load/t7 sweep)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSONL journal: append per-pattern records, resume if it exists",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the merged table as durable JSONL",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Perfetto trace-event JSON of the sweep's spans",
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV")
    args = parser.parse_args(argv)
    if args.experiment_name and args.experiment:
        parser.error(
            "give the experiment either positionally or via --experiment, "
            "not both"
        )
    name = args.experiment_name or args.experiment
    if name is None:
        parser.error("an experiment is required (positional or --experiment)")
    # Lazy import: harness imports this module's registries at top
    # level, so the reverse edge must stay inside main().
    from repro.experiments.harness import ExperimentSpec

    experiment = CLI_ALIASES.get(name, name)
    if experiment == "churn_des":
        # Selecting the DES variant by name is the same as ``t6 --des``.
        experiment, args.des = "churn", True
    _, workload_flags = CLI_RUNNERS[experiment]
    spec = ExperimentSpec(
        experiment,
        tuple(args.shape),
        tuple(args.fault_counts),
        trials=args.trials,
        seed=args.seed,
        workload={
            flag: getattr(args, flag)
            for flag in workload_flags
            if flag != "mode"
        },
    )
    table = spec.run(
        workers=args.workers,
        shards=args.shards,
        checkpoint=args.checkpoint,
        save=args.save,
        trace=args.trace,
        mode=args.mode if "mode" in workload_flags else None,
    )
    print(table.to_csv() if args.csv else table.render())


if __name__ == "__main__":
    main()
