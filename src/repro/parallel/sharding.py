"""Sharded sweep runner: one fault pattern per task, shards per process.

The paper's headline curves (T1 region overhead, T2 success rate, T4 DES
routing) average over many independently sampled fault patterns.  Each
pattern is embarrassingly parallel — it owns its own
:class:`repro.routing.batch.RoutingService` and scores its pair workload
with one batched call — so the sweep scales on the *pattern* axis:

1. :func:`plan_tasks` derives one :class:`PatternTask` per (fault count,
   trial) cell, each carrying its own :class:`numpy.random.SeedSequence`
   child.  A task's stream depends only on the sweep seed and its
   position, never on which shard or process evaluates it.
2. :func:`partition_tasks` deals tasks round-robin into shards.
3. Workers evaluate their shards (``multiprocessing`` pool, or in-process
   when ``workers=1`` — the debuggable fallback) and return compact
   per-pattern records: plain dicts of counters, no arrays, no services.
4. The reducer merges records **in global task order**, so the merged
   table is byte-identical for any shard or worker count (float
   summation order is fixed; property-tested in test_sweep_sharding).

Experiments register themselves in :data:`EXPERIMENTS` as dotted
``module:function`` paths (resolved lazily, so worker processes under
the ``spawn`` start method re-import them cleanly and there is no
import cycle with :mod:`repro.experiments`).

Command-line interface (also see ``benchmarks/bench_sweep_sharding.py``)::

    PYTHONPATH=src python -m repro.parallel \
        --experiment success_rate --shape 12 12 12 \
        --fault-counts 20 60 120 --trials 8 --pairs 200 \
        --workers 4 --seed 2005

Flags: ``--experiment`` picks the registered sweep (``success_rate``,
``region_overhead``, ``des_routing``); ``--shape``/``--fault-counts``/
``--trials``/``--seed`` define the pattern grid; ``--pairs`` (T1/T2) or
``--queries`` (T4) size the per-pattern workload; ``--workers`` sets the
process count (1 = in-process) and ``--shards`` overrides the partition
count (defaults to ``workers``) for shard-invariance checks; ``--csv``
emits CSV instead of the text table.
"""

from __future__ import annotations

import argparse
import importlib
import multiprocessing as mp
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.util.records import ResultTable
from repro.util.rng import SeedLike, spawn_seed_sequences

#: Registered experiments: name -> (evaluator path, reducer path).
#: An evaluator maps ``(spec, task) -> dict`` of plain numbers for one
#: fault pattern; a reducer maps ``(spec, records) -> ResultTable`` with
#: the records already sorted in global task order.
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "success_rate": (
        "repro.experiments.exp_success_rate:evaluate_pattern",
        "repro.experiments.exp_success_rate:reduce_records",
    ),
    "region_overhead": (
        "repro.experiments.exp_region_overhead:evaluate_pattern",
        "repro.experiments.exp_region_overhead:reduce_records",
    ),
    "des_routing": (
        "repro.experiments.exp_des_routing:evaluate_pattern",
        "repro.experiments.exp_des_routing:reduce_records",
    ),
}


@dataclass(frozen=True)
class SweepSpec:
    """A deterministic multi-pattern sweep description (picklable).

    ``params`` carries experiment-specific knobs (e.g. ``pairs`` for the
    success-rate sweep, ``queries`` for the DES sweep); evaluators read
    them with :meth:`param`.
    """

    experiment: str
    shape: tuple[int, ...]
    fault_counts: tuple[int, ...]
    trials: int
    seed: SeedLike = 2005
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; "
                f"pick from {sorted(EXPERIMENTS)}"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        object.__setattr__(self, "shape", tuple(int(k) for k in self.shape))
        object.__setattr__(
            self, "fault_counts", tuple(int(c) for c in self.fault_counts)
        )

    def param(self, name: str, default: Any) -> Any:
        return self.params.get(name, default)


@dataclass(frozen=True)
class PatternTask:
    """One fault pattern to evaluate: grid position + private seed."""

    index: int  # global position in the sweep (reduce order)
    count_index: int  # position of ``count`` in spec.fault_counts
    count: int  # number of faults in this pattern
    trial: int  # trial number within the fault count
    seed: np.random.SeedSequence

    def rng(self) -> np.random.Generator:
        """The pattern's private generator (mask + workload draws)."""
        return np.random.default_rng(self.seed)


def _resolve(path: str) -> Callable:
    """Import ``"module:attribute"`` lazily (worker-process safe)."""
    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def plan_tasks(spec: SweepSpec) -> list[PatternTask]:
    """All pattern tasks of the sweep, in global (reduce) order.

    Seed derivation is positional: one child sequence per fault count,
    then one grandchild per trial — the same tree for every shard
    layout, so any partition of the tasks replays identical patterns.
    """
    count_seqs = spawn_seed_sequences(spec.seed, len(spec.fault_counts))
    tasks: list[PatternTask] = []
    for count_index, (count, seq) in enumerate(zip(spec.fault_counts, count_seqs)):
        for trial, child in enumerate(seq.spawn(spec.trials)):
            tasks.append(
                PatternTask(
                    index=len(tasks),
                    count_index=count_index,
                    count=count,
                    trial=trial,
                    seed=child,
                )
            )
    return tasks


def partition_tasks(
    tasks: Sequence[PatternTask], shards: int
) -> list[list[PatternTask]]:
    """Deal tasks round-robin into ``shards`` lists (some may be empty).

    Round-robin balances the expensive high-fault-count tail across
    shards; correctness never depends on the layout because the reducer
    re-sorts by global task index.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [list(tasks[s::shards]) for s in range(shards)]


def evaluate_shard(
    spec: SweepSpec, tasks: Sequence[PatternTask]
) -> list[dict[str, Any]]:
    """Evaluate one shard's patterns; records tagged with task positions."""
    evaluator = _resolve(EXPERIMENTS[spec.experiment][0])
    records = []
    for task in tasks:
        record = dict(evaluator(spec, task))
        record["_index"] = task.index
        record["_count_index"] = task.count_index
        record["_count"] = task.count
        records.append(record)
    return records


def _evaluate_shard_star(args: tuple[SweepSpec, list[PatternTask]]):
    return evaluate_shard(*args)


def reduce_records(
    spec: SweepSpec, records: Sequence[Mapping[str, Any]]
) -> ResultTable:
    """Merge per-pattern records into the experiment's summary table.

    Records are sorted by global task index first, so the reduction —
    including float accumulation — happens in one canonical order
    regardless of how many shards (or processes) produced them.
    """
    reducer = _resolve(EXPERIMENTS[spec.experiment][1])
    ordered = sorted(records, key=lambda r: r["_index"])
    return reducer(spec, ordered)


def run_sweep(
    spec: SweepSpec, workers: int = 1, shards: int | None = None
) -> ResultTable:
    """Run the sweep: plan, partition, evaluate (maybe in parallel), reduce.

    ``workers=1`` evaluates every shard in the calling process — same
    code path as the parallel run minus the pool, for debugging.
    ``shards`` defaults to ``max(workers, 1)``; passing a different
    value checks shard invariance or over-partitions for balance.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tasks = plan_tasks(spec)
    shard_lists = partition_tasks(tasks, shards if shards is not None else workers)
    work = [(spec, shard) for shard in shard_lists if shard]
    if workers == 1 or len(work) <= 1:
        shard_records = [evaluate_shard(s, ts) for s, ts in work]
    else:
        # Fork is cheap and safe on Linux; elsewhere take the platform
        # default (macOS forks crash in Accelerate/objc after numpy
        # import — tasks are picklable by design, so spawn just works).
        ctx = mp.get_context("fork") if sys.platform == "linux" else mp.get_context()
        with ctx.Pool(processes=min(workers, len(work))) as pool:
            shard_records = pool.map(_evaluate_shard_star, work)
    return reduce_records(spec, [r for shard in shard_records for r in shard])


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run a sharded multi-pattern experiment sweep."
    )
    parser.add_argument("--experiment", choices=sorted(EXPERIMENTS), required=True)
    parser.add_argument("--shape", type=int, nargs="+", default=[12, 12, 12])
    parser.add_argument(
        "--fault-counts", type=int, nargs="+", default=[20, 60, 120]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--queries", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--csv", action="store_true", help="emit CSV")
    args = parser.parse_args(argv)
    spec = SweepSpec(
        experiment=args.experiment,
        shape=tuple(args.shape),
        fault_counts=tuple(args.fault_counts),
        trials=args.trials,
        seed=args.seed,
        params={"pairs": args.pairs, "queries": args.queries},
    )
    table = run_sweep(spec, workers=args.workers, shards=args.shards)
    print(table.to_csv() if args.csv else table.render())


if __name__ == "__main__":
    main()
