"""Multi-pattern sharding: sweep many fault patterns across processes.

The experiments average over many independently sampled fault patterns;
:mod:`repro.parallel.sharding` partitions that pattern axis across
``multiprocessing`` workers (one :class:`repro.routing.batch.RoutingService`
per pattern inside each worker) and merges the per-pattern records into
the experiment's summary table, seed-stably for any shard count.  All
five paper tables (T1–T5) and the A1/A4 ablations run through this one
execution path.

Checkpoint & resume
-------------------

``run_sweep(..., checkpoint=path)`` journals one compact JSONL record
per completed fault pattern under a header carrying the canonical
:meth:`SweepSpec.fingerprint`.  Re-running the same sweep validates the
fingerprint, skips the pattern indices already on disk, and reduces
old+new records in global task order, so a sweep interrupted at any
point resumes to a byte-identical merged table::

    PYTHONPATH=src python -m repro.parallel t3 --workers 4 \\
        --checkpoint out/t3.jsonl

Interrupt it, run the exact command again, and only the missing
patterns are evaluated.  See :mod:`repro.parallel.sharding` for the
full CLI and format details.
"""

from repro.parallel.sharding import (
    PatternTask,
    PatternTaskError,
    SweepSpec,
    legacy_rng,
    load_checkpoint,
    partition_tasks,
    plan_tasks,
    run_sweep,
)

__all__ = [
    "PatternTask",
    "PatternTaskError",
    "SweepSpec",
    "legacy_rng",
    "load_checkpoint",
    "partition_tasks",
    "plan_tasks",
    "run_sweep",
]
