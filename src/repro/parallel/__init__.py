"""Multi-pattern sharding: sweep many fault patterns across processes.

The experiments average over many independently sampled fault patterns;
:mod:`repro.parallel.sharding` partitions that pattern axis across
``multiprocessing`` workers (one :class:`repro.routing.batch.RoutingService`
per pattern inside each worker) and merges the per-pattern records into
the experiment's summary table, seed-stably for any shard count.
"""

from repro.parallel.sharding import (
    PatternTask,
    SweepSpec,
    partition_tasks,
    plan_tasks,
    run_sweep,
)

__all__ = [
    "PatternTask",
    "SweepSpec",
    "partition_tasks",
    "plan_tasks",
    "run_sweep",
]
