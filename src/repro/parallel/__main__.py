"""Entry point: ``python -m repro.parallel`` runs the sweep CLI."""

from repro.parallel.sharding import main

main()
