"""Structured span tracer: nested, attributed, off-by-default.

One :class:`Tracer` collects :class:`Span` records — named, nested
(depth-tracked), attributed intervals — from the instrumented seams of
the stack (``route_batch``, the flood kernels, fault events, DES
quiescence runs, serve ticks).  Spans carry **two timelines**:

* *wall time* (``t0``/``t1``, read through the sanctioned
  :mod:`repro.obs.clockio` shim) — what Perfetto renders, and what
  overhead accounting uses.  Wall stamps are observability only: they
  are excluded from every determinism comparison and never enter a
  ``ResultTable``.
* *virtual time* (``vt0``/``vt1``, optional) — the DES/serve clock at
  the span's bounds, set explicitly by seams that have one
  (:meth:`SpanHandle.set_vt`).  Together with names, attributes, and
  nesting order these form the **virtual-time span stream**, which is
  byte-identical across replays and shard/worker layouts
  (``tests/test_obs.py`` pins it).

Discipline — the design constraint that shapes the API:

* **Off by default, near-zero overhead.**  No tracer installed means
  :func:`span`/:func:`instant` return a shared no-op handle: one module
  global read, no allocation beyond the kwargs dict.  The CI
  ``obs-smoke`` job (``benchmarks/bench_obs_overhead.py``) gates the
  disabled-mode cost at <=5% of the T4 smoke runtime.
* **Deterministic stream.**  Spans are recorded in *entry* order with a
  per-tracer sequence number; worker processes buffer their own spans
  and the sweep runner merges them in global task order, so the merged
  stream is layout-independent.
* **No behavioral coupling.**  Tracing only observes: no RNG, no
  mutation of traced objects, and results (tables, checkpoints) are
  byte-identical traced vs untraced (CI-gated).

Usage::

    from repro import obs

    with obs.span("route_batch", cat="routing", n=len(pairs)) as sp:
        ...
        sp.set(groups=n_groups)          # exit-time attributes

    @obs.traced(cat="kernel")
    def hot_entry(...): ...

    tracer = obs.Tracer()
    with obs.tracing(tracer):            # install for a scope
        run_workload()
    obs.export.write_perfetto("out.json", tracer.spans)
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from repro.obs.clockio import wall_now

#: Span kinds: a duration interval or a zero-width instant marker.
SPAN = "span"
INSTANT = "instant"


class Span:
    """One recorded interval (or instant) with attributes.

    Mutable by design: it is appended to the tracer at *entry* (so the
    stream is in entry order) and finalized at exit.  ``t0``/``t1`` are
    wall seconds from :func:`repro.obs.clockio.wall_now`;
    ``vt0``/``vt1`` are virtual-clock stamps or ``None`` when the seam
    has no virtual timeline.
    """

    __slots__ = (
        "name", "cat", "track", "seq", "depth", "kind",
        "t0", "t1", "vt0", "vt1", "attrs",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        seq: int,
        depth: int,
        kind: str,
        t0: float,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.cat = cat
        self.track = track
        self.seq = seq
        self.depth = depth
        self.kind = kind
        self.t0 = t0
        self.t1: float | None = None
        self.vt0: float | None = None
        self.vt1: float | None = None
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (what worker processes ship to the merger)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
            "seq": self.seq,
            "depth": self.depth,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "vt0": self.vt0,
            "vt1": self.vt1,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = None if self.t1 is None else self.t1 - self.t0
        return f"Span({self.name!r}, seq={self.seq}, depth={self.depth}, dur={dur})"


class SpanHandle:
    """Context manager for one live span (what ``obs.span`` returns)."""

    __slots__ = ("_tracer", "_name", "_cat", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> "SpanHandle":
        self._span = self._tracer._open(self._name, self._cat, self._attrs)
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._span is not None
        self._tracer._close(self._span)

    def set(self, **attrs: Any) -> None:
        """Merge exit-time attributes into the span."""
        if self._span is not None:
            self._span.attrs.update(attrs)

    def set_vt(self, start: float | None = None, end: float | None = None) -> None:
        """Stamp the span's virtual-time bounds (DES / serve clocks)."""
        if self._span is not None:
            if start is not None:
                self._span.vt0 = float(start)
            if end is not None:
                self._span.vt1 = float(end)


class _NullHandle:
    """Shared no-op handle: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None

    def set_vt(self, start: float | None = None, end: float | None = None) -> None:
        return None


NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects spans for one scope (process, worker task, or service).

    ``track`` names the Perfetto thread-track the spans render on —
    sharded sweep workers use one track per fault pattern so a merged
    trace shows patterns side by side.
    """

    def __init__(self, track: str = "main"):
        self.track = track
        self.spans: list[Span] = []
        self._seq = 0
        self._depth = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "", **attrs: Any) -> SpanHandle:
        """A context manager recording one nested interval."""
        return SpanHandle(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "", **attrs: Any) -> Span:
        """Record a zero-width marker at the current wall time."""
        sp = Span(
            name, cat, self.track, self._seq, self._depth, INSTANT,
            wall_now(), attrs,
        )
        sp.t1 = sp.t0
        self._seq += 1
        self.spans.append(sp)
        return sp

    def _open(self, name: str, cat: str, attrs: dict[str, Any]) -> Span:
        sp = Span(
            name, cat, self.track, self._seq, self._depth, SPAN,
            wall_now(), attrs,
        )
        self._seq += 1
        self._depth += 1
        self.spans.append(sp)
        return sp

    def _close(self, span: Span) -> None:
        span.t1 = wall_now()
        self._depth -= 1

    # -- merging (sharded workers) ----------------------------------------

    def absorb(
        self, span_dicts: list[Mapping[str, Any]], track: str | None = None
    ) -> None:
        """Append spans shipped from another tracer (dict form).

        Sequence numbers are reassigned in arrival order, so absorbing
        worker buffers in global task order yields one deterministic
        stream regardless of which process produced which buffer.
        """
        for d in span_dicts:
            sp = Span(
                d["name"], d["cat"], track if track is not None else d["track"],
                self._seq, d["depth"], d["kind"], d["t0"], dict(d["attrs"]),
            )
            sp.t1 = d["t1"]
            sp.vt0 = d["vt0"]
            sp.vt1 = d["vt1"]
            self._seq += 1
            self.spans.append(sp)

    def __len__(self) -> int:
        return len(self.spans)


# -- module-level current tracer (the instrumentation seams' API) ----------

#: The installed tracer, or ``None`` (tracing disabled — the default).
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The currently installed tracer (``None`` when tracing is off)."""
    return _TRACER


def enabled() -> bool:
    """True when a tracer is installed."""
    return _TRACER is not None


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide current tracer."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall() -> Tracer | None:
    """Remove and return the current tracer (tracing goes back off)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for a scope, restoring the previous one after.

    >>> with tracing() as tracer:
    ...     run_workload()
    >>> len(tracer.spans)  # doctest: +SKIP
    """
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def span(name: str, cat: str = "", **attrs: Any):
    """Record a span on the current tracer; no-op when tracing is off.

    The disabled path returns a shared null handle — this is the hot
    fast path every instrumented seam pays unconditionally, kept to a
    global read plus the call itself.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_HANDLE
    return tracer.span(name, cat, **attrs)


def instant(name: str, cat: str = "", **attrs: Any) -> Span | None:
    """Record an instant marker on the current tracer (None when off)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.instant(name, cat, **attrs)


def traced(name: str | None = None, cat: str = "") -> Callable:
    """Decorator form: wrap a callable in a span named after it.

    >>> @traced(cat="kernel")
    ... def flood(mask): ...
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(span_name, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
