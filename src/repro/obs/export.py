"""Exporters: Perfetto trace-event JSON and metrics JSONL.

Two formats, two audiences:

* :func:`write_perfetto` produces Chrome trace-event JSON — open the
  file at https://ui.perfetto.dev (or ``chrome://tracing``) and the span
  stream renders as a flame chart, one thread track per
  :attr:`~repro.obs.tracer.Tracer.track`, with virtual-time bounds and
  span attributes in the ``args`` pane.
* :func:`write_metrics_jsonl` persists a
  :class:`~repro.obs.metrics.MetricsRegistry` through the standard
  :mod:`repro.util.records` JSONL primitives (header + one row per
  instrument), loadable with :func:`repro.util.records.read_jsonl`.

Determinism surface: :func:`virtual_stream` strips the wall-clock
fields from a span stream, leaving names, categories, tracks,
sequencing, nesting, virtual-time bounds, and attributes.  That reduced
stream — not the Perfetto file, whose ``ts``/``dur`` are wall time — is
what the byte-identity tests compare across replays and worker layouts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import INSTANT, Span
from repro.util.records import json_line

#: Format marker + schema version of the metrics JSONL header.
METRICS_FORMAT = "repro.metrics"
METRICS_SCHEMA = 1

#: Wall-clock span fields — excluded from every determinism comparison.
WALL_FIELDS = ("t0", "t1")

#: Microseconds per wall-clock second (trace-event ``ts``/``dur`` unit).
_US = 1e6


def _as_dicts(spans: Iterable[Span | Mapping[str, Any]]) -> list[dict[str, Any]]:
    return [sp.to_dict() if isinstance(sp, Span) else dict(sp) for sp in spans]


def virtual_stream(spans: Iterable[Span | Mapping[str, Any]]) -> list[dict[str, Any]]:
    """The deterministic view of a span stream: everything but wall time.

    Byte-identical (after ``json_line``) across replays and
    shard/worker layouts for the same workload — the property
    ``tests/test_obs.py`` pins and CI gates.
    """
    out = []
    for d in _as_dicts(spans):
        out.append({k: v for k, v in d.items() if k not in WALL_FIELDS})
    return out


def perfetto_events(
    spans: Iterable[Span | Mapping[str, Any]], pid: int = 1
) -> list[dict[str, Any]]:
    """Chrome trace-event objects for a span stream.

    Durations become ``"X"`` complete events, instants ``"i"`` events.
    Wall stamps are rebased to the earliest span in the stream (worker
    processes have unrelated ``perf_counter`` epochs; rebasing to a
    shared zero keeps merged tracks on one axis even if their relative
    offsets are approximate).  Tracks map to ``tid`` in first-appearance
    order — deterministic because the merged stream itself is — and each
    gets a ``thread_name`` metadata event so Perfetto labels it.
    """
    dicts = _as_dicts(spans)
    events: list[dict[str, Any]] = []
    t_base = min((d["t0"] for d in dicts), default=0.0)
    tids: dict[str, int] = {}
    for d in dicts:
        tid = tids.get(d["track"])
        if tid is None:
            tid = tids[d["track"]] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": d["track"]},
                }
            )
        args = dict(d["attrs"])
        if d["vt0"] is not None:
            args["vt0"] = d["vt0"]
        if d["vt1"] is not None:
            args["vt1"] = d["vt1"]
        args["seq"] = d["seq"]
        args["depth"] = d["depth"]
        ts = (d["t0"] - t_base) * _US
        if d["kind"] == INSTANT:
            events.append(
                {
                    "name": d["name"],
                    "cat": d["cat"] or "default",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "args": args,
                }
            )
        else:
            t1 = d["t1"] if d["t1"] is not None else d["t0"]
            events.append(
                {
                    "name": d["name"],
                    "cat": d["cat"] or "default",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "dur": (t1 - d["t0"]) * _US,
                    "args": args,
                }
            )
    return events


def write_perfetto(
    path: str | os.PathLike, spans: Iterable[Span | Mapping[str, Any]]
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    events = perfetto_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8", newline="") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")
    return len(events)


def write_metrics_jsonl(
    path: str | os.PathLike, registry: MetricsRegistry, title: str = ""
) -> int:
    """Dump a metrics registry as header + one JSONL row per instrument."""
    rows = registry.rows()
    header = {
        "format": METRICS_FORMAT,
        "schema": METRICS_SCHEMA,
        "title": title,
        "count": len(rows),
    }
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(json_line(header) + "\n")
        for row in rows:
            fh.write(json_line(row) + "\n")
    return len(rows)
