"""The project's sanctioned wall-clock shim (the one D101 site).

Every deterministic guarantee in this repository — byte-identical
tables across shard/worker layouts, replayable serve soaks, resumable
checkpoints — rests on library code never reading the wall clock.  The
``repro-check`` D101 rule bans ``time.*``/``datetime.*`` reads in
``src/``; this module is the **single sanctioned exception** (the lint
exempts exactly this file, see
:data:`repro.analysis.lint.WALL_CLOCK_SANCTIONED`).

Two consumers are allowed to tell wall time, and both go through here:

* the span tracer (:mod:`repro.obs.tracer`) stamps wall-clock span
  bounds — but those stamps are *observability only*: they are excluded
  from the deterministic virtual-time stream
  (:func:`repro.obs.export.virtual_stream`) and never enter a
  ``ResultTable``;
* the live serving clock (:class:`repro.serve.clock.WallClock`)
  delegates its ``now()`` here — deterministic runs inject
  :class:`~repro.serve.clock.VirtualClock` instead.

Keeping one shim (rather than one inline suppression per reader) means
a determinism audit reduces to grepping for imports of this module.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Monotonic wall-clock seconds (arbitrary epoch, never goes back)."""
    return time.perf_counter()


def wall_now_ns() -> int:
    """Monotonic wall-clock nanoseconds (for overhead micro-accounting)."""
    return time.perf_counter_ns()
