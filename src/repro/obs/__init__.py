"""`repro.obs` — unified telemetry: spans, metrics, trace export.

The observability subsystem for the whole stack.  Three pieces:

* **Span tracer** (:mod:`repro.obs.tracer`): ``obs.span(...)`` context
  managers at the instrumented seams (routing batches, flood kernels,
  fault events, DES quiescence, distributed sessions, serve ticks,
  sweep workers).  Off by default; installing a :class:`Tracer` (or
  passing ``--trace out.json`` to any experiment CLI) turns it on.
* **Metrics registry** (:mod:`repro.obs.metrics`): labelled counters,
  gauges, and the latency :class:`Histogram` backing the serve layer's
  p50/p99 math.
* **Exporters** (:mod:`repro.obs.export`): Perfetto trace-event JSON
  (open in https://ui.perfetto.dev) and metrics JSONL.

Discipline (see DESIGN.md "Observability"): wall-clock reads happen
only through :mod:`repro.obs.clockio` (the one sanctioned D101 site);
wall stamps never enter ResultTables or determinism comparisons; the
virtual-time span stream is byte-identical across replays and worker
layouts.
"""

from repro.obs import clockio, export, metrics
from repro.obs.export import (
    perfetto_events,
    virtual_stream,
    write_metrics_jsonl,
    write_perfetto,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    INSTANT,
    NULL_HANDLE,
    SPAN,
    Span,
    SpanHandle,
    Tracer,
    enabled,
    get_tracer,
    install,
    instant,
    span,
    traced,
    tracing,
    uninstall,
)

__all__ = [
    "INSTANT",
    "NULL_HANDLE",
    "SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanHandle",
    "Tracer",
    "clockio",
    "enabled",
    "export",
    "get_tracer",
    "install",
    "instant",
    "metrics",
    "perfetto_events",
    "span",
    "traced",
    "tracing",
    "uninstall",
    "virtual_stream",
    "write_metrics_jsonl",
    "write_perfetto",
]
