"""Metrics registry: labelled counters, gauges, and latency histograms.

One :class:`MetricsRegistry` is the sink the stack's ad-hoc counter
islands feed into — :class:`repro.simkit.stats.StatsCollector` publishes
its per-kind message counters and gauges
(:meth:`~repro.simkit.stats.StatsCollector.publish`), the serving
layer's :class:`~repro.serve.service.MetricsSnapshot` publishes its SLO
fields, and :class:`Histogram` is the one latency type backing the
p50/p99 math both already compute (``numpy.percentile`` over the exact
observations, bit-for-bit the arithmetic the serve layer and the load
generator used before it existed).

Metrics are keyed by ``(name, labels)``; asking for the same key twice
returns the same instrument.  :meth:`MetricsRegistry.rows` is the
deterministic flat form (sorted by name, then labels) that
:func:`repro.obs.export.write_metrics_jsonl` persists through the
standard :mod:`repro.util.records` JSONL primitives.

Nothing here reads a clock: durations and latencies are *observed* by
callers (from their own virtual clocks or from span wall stamps), so a
registry fed by a deterministic run is itself deterministic.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

import numpy as np

#: Canonical label form: sorted (key, value) pairs.
LabelsKey = tuple[tuple[str, Any], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), v) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def as_row(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value (last write wins; ``update_max`` for peaks)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def as_row(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Exact-observation latency histogram with percentile math.

    Keeps every observation (the existing p50/p99 consumers are
    bounded-run: one serve soak or one experiment pattern), so
    :meth:`percentile` reproduces ``float(np.percentile(values, q))``
    bit-for-bit — the arithmetic ``MetricsSnapshot`` and
    ``loadgen.summarize`` computed inline before this type existed.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str = "", labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    def percentile(self, q: float) -> float:
        """``float(np.percentile(values, q))``; 0.0 when empty."""
        if not self.values:
            return 0.0
        return float(np.percentile(np.asarray(self.values, dtype=float), q))

    def max(self) -> float:
        if not self.values:
            return 0.0
        return float(np.asarray(self.values, dtype=float).max())

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return float(np.asarray(self.values, dtype=float).mean())

    def as_row(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max(),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by (name, labels)."""

    def __init__(self):
        self._metrics: dict[tuple[str, str, LabelsKey], Any] = {}

    def _get(self, cls, name: str, labels: Mapping[str, Any]):
        key = (cls.kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[2])
        elif not isinstance(metric, cls):  # pragma: no cover - defensive
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Any]:
        for key in sorted(self._metrics, key=repr):
            yield self._metrics[key]

    def rows(self) -> list[dict[str, Any]]:
        """Deterministic flat rows: kind, name, labels, then the values."""
        out = []
        for metric in self:
            row: dict[str, Any] = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": {k: v for k, v in metric.labels},
            }
            row.update(metric.as_row())
            out.append(row)
        return out
