"""Distributed labelling: Algorithm 1 (2-D) / Algorithm 4 (n-D) as gossip.

Protocol (canonical direction class; run the mesh through an
:class:`~repro.mesh.orientation.Orientation` for the other classes):

1. At start, every live node detects faulty neighbors locally
   (link-level liveness — the paper's "each node knows only the status
   of its neighbors") and assumes unknown neighbors are safe.
2. A node re-evaluates its own label whenever its knowledge changes:

   * USELESS when every positive-axis neighbor exists and is
     faulty/useless;
   * CANT_REACH when every negative-axis neighbor exists and is
     faulty/can't-reach.

3. On a label change it sends ``LABEL`` to all live neighbors.  The
   fixed point is reached when the network quiesces; each node then
   holds its own label and its neighbors' labels — exactly the local
   knowledge later phases (identification, boundaries, routing) build on.

Message complexity: one ``LABEL`` per label transition per neighbor —
O(unsafe-region size), not mesh size (experiment T3 measures this).
"""

from __future__ import annotations

import numpy as np

from repro.core.labelling import CANT_REACH, FAULTY, SAFE, USELESS
from repro.mesh.coords import Coord, Direction
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.network import MeshNetwork
from repro.simkit.node import NodeProcess


class LabellingNode(NodeProcess):
    """One node of the distributed labelling protocol."""

    def on_start(self) -> None:
        self.store["label"] = SAFE
        # Node-local knowledge: neighbor labels, seeded by local fault
        # detection.  Missing (off-mesh) neighbors stay absent.
        known: dict[Coord, int] = {}
        for n in self.neighbors():
            known[n] = FAULTY if self.network.is_faulty(n) else SAFE
        self.store["known_labels"] = known
        self._reevaluate(announce_if_unchanged=False)

    def on_message(self, msg: Message) -> None:
        if msg.kind != "LABEL":
            return
        known = self.store["known_labels"]
        new_label = int(msg.payload["label"])
        if known.get(msg.src) == new_label:
            return
        known[msg.src] = new_label
        self._reevaluate(announce_if_unchanged=False)

    # -- local rule ------------------------------------------------------------

    def _blocked_toward(self, sign: int, blocking: set[int]) -> bool:
        """All existing neighbors on ``sign`` side carry a blocking label."""
        mesh = self.network.mesh
        known = self.store["known_labels"]
        for axis in range(mesh.ndim):
            n = mesh.neighbor(self.coord, Direction(axis, sign))
            if n is None:
                # Mesh border: not blocking (DESIGN.md interpretation 1).
                return False
            if known.get(n, SAFE) not in blocking:
                return False
        return True

    # -- incremental re-stabilization hooks (fault churn) -----------------------

    def notice_neighbor_died(self, neighbor: Coord) -> None:
        """Link-level liveness: ``neighbor`` stopped responding.

        Labels only *escalate* under the closure rules, so an injection
        needs no reset at all: updating the local knowledge and
        re-running the rule converges to the new fixed point from the
        old one (warm start; see DESIGN.md).
        """
        known = self.store.setdefault("known_labels", {})
        neighbor = tuple(neighbor)
        if known.get(neighbor) == FAULTY:
            return
        known[neighbor] = FAULTY
        self._reevaluate(announce_if_unchanged=False)

    def reset_labelling(self, reset_set: set[Coord]) -> None:
        """Drop this node's label ahead of a scoped repair re-stabilization.

        ``reset_set`` is the set of nodes being reset together (the
        labelled cells of the event's dirty slabs plus the repaired
        cells): knowledge about *those* neighbors is re-seeded from
        link-level liveness, while knowledge about every other neighbor
        — whose label the dirty-slab argument proves unchanged — is
        kept.  The caller resets every member first and then schedules
        :meth:`announce_labelling`, so announcements only flow once all
        seeds are in place.
        """
        self.store["label"] = SAFE
        known = self.store.setdefault("known_labels", {})
        for n in self.neighbors():
            if n in reset_set or n not in known:
                known[n] = FAULTY if self.network.is_faulty(n) else SAFE

    def announce_labelling(self) -> None:
        """Re-run the local rule and announce even an unchanged label.

        After a reset the label may legitimately *shrink* (repair);
        nodes outside the reset set would otherwise keep stale knowledge
        forever because the protocol only announces changes.
        """
        self._reevaluate(announce_if_unchanged=True)

    def _reevaluate(self, announce_if_unchanged: bool) -> None:
        old = self.store["label"]
        label = old
        # Labels only escalate: SAFE -> CANT_REACH -> USELESS.  A node
        # can satisfy both rules (its +neighbors useless AND its
        # -neighbors can't-reach); the centralized fixed point resolves
        # such ties to USELESS, and the upgrade matters — only USELESS
        # labels feed further useless fills at the +X/+Y/+Z neighbors.
        if label in (SAFE, CANT_REACH) and self._blocked_toward(
            +1, {FAULTY, USELESS}
        ):
            label = USELESS
        elif label == SAFE and self._blocked_toward(-1, {FAULTY, CANT_REACH}):
            label = CANT_REACH
        if label != old or announce_if_unchanged:
            self.store["label"] = label
            for n in self.neighbors():
                if not self.network.is_faulty(n):
                    self.send(n, "LABEL", {"label": label})


def run_distributed_labelling(
    mesh: Mesh, fault_mask: np.ndarray, trace: bool = False
) -> MeshNetwork:
    """Run the labelling protocol to quiescence; returns the network.

    Per-node results are in ``node.store["label"]``; compare with
    :func:`repro.core.labelling.label_grid` for the equivalence test.
    """
    net = MeshNetwork(mesh, fault_mask, node_factory=LabellingNode, trace=trace)
    net.start()
    net.run_to_quiescence()
    return net


def labels_as_grid(net: MeshNetwork) -> np.ndarray:
    """Collect per-node labels into a status grid (faulty from the mask)."""
    out = np.full(net.mesh.shape, FAULTY, dtype=np.int8)
    for coord, label in net.gather("label", default=SAFE).items():
        out[coord] = label
    return out
