"""Distributed MCC identification (Algorithm 2 steps 1–2, Algorithm 5 step 1).

Runs after the labelling protocol has quiesced.  Phases, all strictly
node-local:

1. **Edge announcement** — every safe node that sees an unsafe neighbor
   (in-plane) broadcasts ``EDGE`` with the offending directions; nodes
   store their neighbors' announcements.
2. **Corner detection** — a node whose +u neighbor reports unsafe at +v
   and whose +v neighbor reports unsafe at +u is an *initialization
   corner* (the outer node diagonally below-left of the region's
   (umin, vmin) cell).
3. **Two-head-on identification** — each initialization corner launches
   one clockwise and one counter-clockwise ``IDENT`` message.  Each
   message wall-follows the edge ring, accumulating the unsafe boundary
   cells its hosts observe, and leaves a visit marker at every node.
   When a message arrives at a node already marked by its counterpart,
   the two have met (the paper: "may meet at any edge node … not
   necessary a corner node"): the union of both partial boundaries
   covers the whole ring, the section shape is assembled by boundary
   fill, and ``SHAPE`` messages retrace both trails, depositing the
   shape at every ring node and finally at the initialization corner.
4. **TTL/stability** — messages carry a TTL proportional to the mesh
   perimeter; anything that wanders (unstable regions, border-broken
   rings) is discarded in flight, and the corner simply never completes
   — the paper's discard semantics.  A message that walks the full ring
   back to its corner without meeting its counterpart is discarded too
   ("if only one message is received … this message should also be
   discarded").

In 3-D the same protocol runs per plane family (XY, XZ, YZ sections):
each message moves only within its plane, matching "the identification
process … starts from the identification of each 2-D section".
"""

from __future__ import annotations

from repro.core.labelling import SAFE
from repro.mesh.coords import Coord
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.distributed.ringwalk import (
    fill_interior,
    initial_heading,
    plane_step,
    ring_step,
)


def plane_families(ndim: int) -> list[tuple[int, int]]:
    """The (axis_u, axis_v) section families: one in 2-D, three in 3-D."""
    if ndim == 2:
        return [(0, 1)]
    if ndim == 3:
        return [(0, 1), (0, 2), (1, 2)]
    raise NotImplementedError(f"identification supports 2-D/3-D, got {ndim}-D")


class IdentificationMixin(NodeProcess):
    """Identification behaviour layered onto a labelled node.

    Requires ``store["label"]`` and ``store["known_labels"]`` from the
    labelling protocol.  Results:

    * ``store["shapes"]`` — {(plane, corner): frozenset(mesh cells)} for
      every identified section this node is a ring node of;
    * ``store["corner_of"]`` — [(plane, corner), shape] pairs this node
      initiated and completed.
    """

    # -- local knowledge helpers ------------------------------------------------

    def _is_unsafe(self, coord: Coord) -> bool:
        """Node-local safety knowledge about a *neighbor* cell."""
        if not self.network.mesh.contains(coord):
            return False
        if self.network.is_faulty(coord):
            return True
        return self.store["known_labels"].get(tuple(coord), SAFE) != SAFE

    def _passable_local(self, coord: Coord) -> bool:
        return self.network.mesh.contains(coord) and not self._is_unsafe(coord)

    def _unsafe_plane_dirs(self, axis_u: int, axis_v: int) -> list[tuple[int, int]]:
        """In-plane (du, dv) unit directions pointing at unsafe neighbors."""
        out = []
        for du, dv in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            n = plane_step(self.coord, axis_u, axis_v, du, dv)
            if self.network.mesh.contains(n) and self._is_unsafe(n):
                out.append((du, dv))
        return out

    def _ring_contacts(self, plane: tuple[int, int]) -> set[Coord]:
        """Unsafe cells 8-adjacent (in-plane) to this node.

        Strictly local knowledge: orthogonal neighbors via own labels,
        diagonals via the EDGE announcements of the two shared
        orthogonal neighbors.
        """
        axis_u, axis_v = plane
        contacts: set[Coord] = set()
        for du, dv in self._unsafe_plane_dirs(axis_u, axis_v):
            contacts.add(plane_step(self.coord, axis_u, axis_v, du, dv))
        for du in (-1, 1):
            for dv in (-1, 1):
                nu = plane_step(self.coord, axis_u, axis_v, du, 0)
                nv = plane_step(self.coord, axis_u, axis_v, 0, dv)
                if self._neighbor_reports(nu, plane, (0, dv)) or (
                    self._neighbor_reports(nv, plane, (du, 0))
                ):
                    contacts.add(plane_step(self.coord, axis_u, axis_v, du, dv))
        return contacts

    def _on_ring(self, plane: tuple[int, int]) -> bool:
        """Is this node 8-adjacent (in-plane) to some unsafe cell?"""
        return bool(self._ring_contacts(plane))

    # -- phase 1: edge announcements -------------------------------------------

    def start_identification(self, announce_empty: bool = False) -> None:
        """Phase-1 edge announcements plus the corner-check timer.

        ``announce_empty`` sends an EDGE message even when this node has
        no unsafe neighbors: re-stabilization after a fault event uses
        it so neighbors replace stale edge knowledge about this node (an
        initial build has nothing stale to clear and skips the empty
        broadcast).
        """
        if self.store.get("label", SAFE) != SAFE:
            return  # unsafe nodes take no part
        self.store.setdefault("shapes", {})
        self.store.setdefault("edge_info", {})
        self.store.setdefault("corner_of", [])
        self.store.setdefault("_ident_marks", {})
        announce = []
        for plane in plane_families(self.network.mesh.ndim):
            dirs = self._unsafe_plane_dirs(*plane)
            if dirs:
                announce.append([list(plane), [list(d) for d in dirs]])
        if announce or announce_empty:
            for n in self.neighbors():
                if not self.network.is_faulty(n):
                    self.send(n, "EDGE", {"planes": announce})
        # Corner detection needs one announcement round; check after the
        # announcements have propagated (2 link delays).
        self.set_timer(2.5, "corner-check")

    def _on_edge(self, msg: Message) -> None:
        info = self.store.setdefault("edge_info", {})
        info[tuple(msg.src)] = {
            tuple(plane): {tuple(d) for d in dirs}
            for plane, dirs in msg.payload["planes"]
        }

    # -- phase 2: corner detection ----------------------------------------------

    def _neighbor_reports(
        self, neighbor: Coord, plane: tuple[int, int], direction: tuple[int, int]
    ) -> bool:
        info = self.store.get("edge_info", {}).get(tuple(neighbor), {})
        return tuple(direction) in info.get(tuple(plane), set())

    def _is_init_corner(self, plane: tuple[int, int]) -> bool:
        """+u neighbor is an edge node at +v, +v neighbor an edge node at +u."""
        axis_u, axis_v = plane
        nu = plane_step(self.coord, axis_u, axis_v, 1, 0)
        nv = plane_step(self.coord, axis_u, axis_v, 0, 1)
        return (
            self._passable_local(nu)
            and self._passable_local(nv)
            and self._neighbor_reports(nu, plane, (0, 1))
            and self._neighbor_reports(nv, plane, (1, 0))
        )

    def _corner_check(self) -> None:
        for plane in plane_families(self.network.mesh.ndim):
            if self._is_init_corner(plane):
                self._launch_identification(plane)

    # -- phase 3: the two-head-on walk -----------------------------------------

    def _ttl(self) -> int:
        return 6 * (2 * sum(self.network.mesh.shape) + 8)

    def _launch_identification(self, plane: tuple[int, int]) -> None:
        axis_u, axis_v = plane
        for clockwise in (True, False):
            du, dv = initial_heading(clockwise)
            first = plane_step(self.coord, axis_u, axis_v, du, dv)
            if not self._passable_local(first):
                return  # ring broken right at the corner; discard section
            payload = {
                "plane": list(plane),
                "corner": list(self.coord),
                "clockwise": clockwise,
                "heading": [du, dv],
                "trail": [list(self.coord)],
            }
            self.send(first, "IDENT", payload, ttl=self._ttl())

    def _on_ident(self, msg: Message) -> None:
        if self.store.get("label", SAFE) != SAFE:
            return  # walked onto a node that turned unsafe: drop (instability)
        plane = tuple(msg.payload["plane"])
        axis_u, axis_v = plane
        corner = tuple(msg.payload["corner"])
        clockwise = bool(msg.payload["clockwise"])
        trail = [tuple(c) for c in msg.payload["trail"]] + [self.coord]
        snapshot = {"trail": trail}

        if self.coord == corner:
            return  # full loop without meeting the counterpart: discard

        contacts = self._ring_contacts(plane)
        if not contacts:
            # Left the region's ring (border-broken ring): reverse and
            # bring the partial trail back to the initialization corner.
            self._reverse_ident(plane, corner, clockwise, trail)
            return
        prev_contacts = {tuple(c) for c in msg.payload.get("contact", [])}
        if prev_contacts and not any(
            all(abs(a - b) <= 1 for a, b in zip(mine_c, prev_c, strict=True))
            for mine_c in contacts
            for prev_c in prev_contacts
        ):
            # Contour discontinuity: this cell hugs a *different* MCC
            # (rings of nearby components touch near mesh borders).
            # Walking on would assemble a bogus union region — reverse.
            self._reverse_ident(plane, corner, clockwise, trail)
            return

        marks = self.store.setdefault("_ident_marks", {})
        other_key = (plane, corner, not clockwise)
        if other_key in marks:
            self._assemble(plane, corner, snapshot, marks[other_key])
            return  # first contact: stop this walker
        marks[(plane, corner, clockwise)] = snapshot

        heading = tuple(msg.payload["heading"])
        nxt = ring_step(
            self.coord, heading, clockwise, axis_u, axis_v, self._passable_local
        )
        if nxt is None:
            self._reverse_ident(plane, corner, clockwise, trail, include_self=True)
            return
        cell, new_heading = nxt
        if len(trail) >= 2 and cell == trail[-2]:
            # Dead-end arc (pinched against the border): the only move is
            # a retreat.  Reverse with this on-ring cell kept in the chain.
            self._reverse_ident(plane, corner, clockwise, trail, include_self=True)
            return
        payload = dict(msg.payload)
        payload["trail"] = [list(c) for c in trail]
        payload["heading"] = list(new_heading)
        payload["contact"] = [list(c) for c in contacts]
        fwd = Message(
            "IDENT", self.coord, cell, payload,
            hops=msg.hops + 1, ttl=msg.ttl, msg_id=msg.msg_id,
        )
        self.network.transmit(fwd)

    def _reverse_ident(
        self, plane, corner, clockwise, trail, include_self: bool = False
    ) -> None:
        """Send the partial trail back to the corner (broken ring).

        ``include_self`` keeps the current cell in the chain (dead-end
        reversals happen *on* the ring; off-ring/discontinuity reversals
        happen one step past it).
        """
        chain = trail if include_self else trail[:-1]
        payload = {
            "plane": list(plane),
            "corner": list(corner),
            "clockwise": clockwise,
            "trail": [list(c) for c in chain],
        }
        if len(trail) < 2:
            return
        self.send(trail[-2], "IDENT_BACK", payload, ttl=self._ttl())

    def _on_ident_back(self, msg: Message) -> None:
        plane = tuple(msg.payload["plane"])
        corner = tuple(msg.payload["corner"])
        trail = [tuple(c) for c in msg.payload["trail"]]
        if self.coord == corner:
            arrivals = self.store.setdefault("_ident_back", {})
            slot = arrivals.setdefault((plane, corner), {})
            slot["cw" if msg.payload["clockwise"] else "ccw"] = trail
            if "cw" in slot and "ccw" in slot:
                # Trails arrive corner-first; _send_shape walks outward
                # from this node, so hand them over reversed.
                self._assemble(
                    plane,
                    corner,
                    {"trail": list(reversed(slot["cw"]))},
                    {"trail": list(reversed(slot["ccw"]))},
                    closed=False,
                )
                del arrivals[(plane, corner)]
            return
        # Walk back along the recorded trail toward the corner.
        try:
            here = trail.index(self.coord)
        except ValueError:
            return  # stale trail (should not happen): drop
        if here == 0:
            return
        self.send(trail[here - 1], "IDENT_BACK", dict(msg.payload),
                  ttl=self._ttl())

    # -- phase 4: shape assembly and deposit --------------------------------------

    def _assemble(self, plane, corner, mine, theirs, closed: bool = True) -> None:
        """Shape = interior enclosed by the union of the two ring trails.

        The paper assembles the shape from the corner coordinates the
        messages collected; the enclosed-interior fill is the same
        geometry (and also recovers thick interiors).  Holes inside a
        3-D section are filled too — harmless, since the forbidden and
        critical regions depend only on per-column extrema.
        """
        ring = {tuple(c) for c in mine["trail"]} | {tuple(c) for c in theirs["trail"]}
        if not ring:
            return
        axis_u, axis_v = plane
        ring_uv = {(c[axis_u], c[axis_v]) for c in ring}
        corner_uv = (corner[axis_u], corner[axis_v])
        bounds = (self.network.mesh.shape[axis_u], self.network.mesh.shape[axis_v])
        interior = fill_interior(ring_uv, corner_uv, bounds, closed=closed)
        if not interior:
            return  # degenerate ring: discard
        anchor = next(iter(ring))
        shape = frozenset(self._lift(plane, uv, anchor) for uv in interior)
        for snapshot in (mine, theirs):
            trail = [tuple(c) for c in snapshot["trail"]]
            self._send_shape(plane, corner, shape, trail)

    def _lift(self, plane, uv, anchor: Coord) -> Coord:
        out = list(anchor)
        out[plane[0]], out[plane[1]] = uv
        return tuple(out)

    def _send_shape(self, plane, corner, shape, trail) -> None:
        self._store_shape(plane, corner, shape)
        self._maybe_complete(plane, corner, shape)
        if len(trail) < 2:
            return
        payload = {
            "plane": list(plane),
            "corner": list(corner),
            "shape": [list(c) for c in sorted(shape)],
            "trail": [list(c) for c in trail[:-1]],
        }
        self.send(trail[-2], "SHAPE", payload, ttl=self._ttl())

    def _on_shape(self, msg: Message) -> None:
        plane = tuple(msg.payload["plane"])
        corner = tuple(msg.payload["corner"])
        shape = frozenset(tuple(c) for c in msg.payload["shape"])
        self._store_shape(plane, corner, shape)
        self._maybe_complete(plane, corner, shape)
        trail = [tuple(c) for c in msg.payload["trail"]]
        if len(trail) < 2:
            return
        payload = dict(msg.payload)
        payload["trail"] = [list(c) for c in trail[:-1]]
        self.send(trail[-2], "SHAPE", payload, ttl=self._ttl())

    def _store_shape(self, plane, corner, shape) -> None:
        self.store.setdefault("shapes", {})[(tuple(plane), tuple(corner))] = shape

    def _maybe_complete(self, plane, corner, shape) -> None:
        if tuple(corner) != self.coord:
            return
        marks = self.store.setdefault("corner_of", [])
        key = (tuple(plane), tuple(corner))
        if key not in [k for k, _ in marks]:
            marks.append((key, shape))
            self.on_section_identified(tuple(plane), tuple(corner), shape)

    def on_section_identified(self, plane, corner, shape) -> None:
        """Hook for the boundary-construction layer."""

    # -- dispatch -----------------------------------------------------------------

    def handle_identification(self, msg: Message) -> bool:
        """Route identification messages; True when consumed."""
        if msg.kind == "EDGE":
            self._on_edge(msg)
        elif msg.kind == "IDENT":
            self._on_ident(msg)
        elif msg.kind == "IDENT_BACK":
            self._on_ident_back(msg)
        elif msg.kind == "SHAPE":
            self._on_shape(msg)
        else:
            return False
        return True

    def on_timer(self, tag: str) -> None:
        if tag == "corner-check":
            self._corner_check()
