"""End-to-end orchestration of the distributed MCC pipeline.

``DistributedMCCPipeline`` wires the protocol mixins into one node
class, runs the phases in order (labelling → identification +
boundaries → routing queries), and exposes observer-side accessors used
by the experiments and the validation tests.

The pipeline operates in the **canonical direction class**: callers
route pairs with source <= dest component-wise (the experiments orient
their fault masks per pair, exactly like the centralized API does).
Phase changes model the paper's stabilization windows: a deployment
would run the phases continuously with timers, but the fixed-point
content of each phase is identical.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.core.labelling import SAFE
from repro.distributed.boundary_proto import BoundaryMixin
from repro.distributed.identification import IdentificationMixin
from repro.distributed.labelling_proto import LabellingNode, labels_as_grid
from repro.distributed.routing_proto import RoutingMixin
from repro.mesh.coords import Coord
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.network import MeshNetwork


class MCCProtocolNode(
    RoutingMixin, BoundaryMixin, IdentificationMixin, LabellingNode
):
    """A full protocol node: labelling, identification, walls, routing."""

    def on_message(self, msg: Message) -> None:
        if msg.kind == "LABEL":
            LabellingNode.on_message(self, msg)
        elif self.handle_identification(msg):
            pass
        elif self.handle_boundary(msg):
            pass
        elif self.handle_routing(msg):
            pass

    def on_timer(self, tag: str) -> None:
        if tag == "corner-check":
            IdentificationMixin.on_timer(self, tag)
        else:
            RoutingMixin.on_timer(self, tag)


class DistributedMCCPipeline:
    """Run the whole distributed stack over one fault pattern."""

    def __init__(self, mesh: Mesh, fault_mask: np.ndarray, trace: bool = False):
        self.mesh = mesh
        self.net = MeshNetwork(
            mesh, fault_mask, node_factory=MCCProtocolNode, trace=trace
        )
        self._query_ids = itertools.count(1)
        self._phase_messages: dict[str, int] = {}
        self._built = False

    # -- phases ------------------------------------------------------------------

    def build(self) -> "DistributedMCCPipeline":
        """Phase 1+2: labelling, then identification and boundaries."""
        if self._built:
            return self
        self.net.start()
        self.net.run_to_quiescence()
        self._phase_messages["labelling"] = self.net.stats.total_messages
        for coord, node in self.net.nodes.items():
            if not self.net.is_faulty(coord):
                self.net.sim.schedule(0.0, node.start_identification)
        self.net.run_to_quiescence()
        self._phase_messages["identification+boundaries"] = (
            self.net.stats.total_messages - self._phase_messages["labelling"]
        )
        self._built = True
        return self

    def route(self, source: Sequence[int], dest: Sequence[int]) -> dict:
        """Phase 3: one routing query (canonical frame, safe endpoints).

        Returns the query record: status in {"delivered", "infeasible",
        "stuck"} plus the path taken.
        """
        if not self._built:
            self.build()
        source = tuple(int(c) for c in source)
        dest = tuple(int(c) for c in dest)
        if any(s > d for s, d in zip(source, dest)):
            raise ValueError(f"canonical frame required: {source} !<= {dest}")
        src_node = self.net.nodes[source]
        if self.net.is_faulty(source) or src_node.store.get("label", SAFE) != SAFE:
            raise ValueError(f"source {source} is not a safe node")
        query_id = next(self._query_ids)
        self.net.sim.schedule(0.0, lambda: src_node.start_query(query_id, dest))
        self.net.run_to_quiescence()
        record = dict(src_node.store["queries"][query_id])
        record.setdefault("path", [source])
        return record

    # -- observers -----------------------------------------------------------------

    def labels_grid(self) -> np.ndarray:
        return labels_as_grid(self.net)

    def identified_sections(self) -> dict[tuple, frozenset]:
        """(plane, corner) -> shape, from every completed corner."""
        out: dict[tuple, frozenset] = {}
        for coord, marks in self.net.gather("corner_of", default=[]).items():
            for key, shape in marks or []:
                out[key] = shape
        return out

    def records_at(self, coord: Coord) -> list[dict]:
        node = self.net.nodes[tuple(coord)]
        return list(node.store.get("records", {}).values())

    def message_counts(self) -> dict[str, int]:
        counts = dict(self.net.stats.by_kind())
        counts.update(
            {f"phase[{k}]": v for k, v in self._phase_messages.items()}
        )
        return counts
