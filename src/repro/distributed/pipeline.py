"""End-to-end orchestration of the distributed MCC pipeline.

``DistributedMCCPipeline`` wires the protocol mixins into one node
class, runs the phases in order (labelling → identification +
boundaries → routing queries), and exposes observer-side accessors used
by the experiments and the validation tests.

Routing queries are **sessions**: :meth:`submit` launches a query
without blocking and returns a :class:`QueryHandle`; :meth:`drain` runs
the simulator to quiescence once and resolves every in-flight session.
The protocol layer namespaces all walker state, messages, and timers by
query id (``routing_proto``), so any number of walks interleave in one
``run_to_quiescence`` with results element-wise identical to blocking
one-at-a-time calls — :meth:`route` is exactly that one-query wrapper.
Per-session message cost comes from the network's payload-tag
accounting (``stats.query_messages``), which for a serial run equals
the historical before/after ``total_messages`` delta.

The pipeline operates in the **canonical direction class**: callers
route pairs with source <= dest component-wise (the experiments orient
their fault masks per pair, exactly like the centralized API does).
Phase changes model the paper's stabilization windows: a deployment
would run the phases continuously with timers, but the fixed-point
content of each phase is identical.

Fault churn
-----------

:meth:`apply_event` drives :meth:`MeshNetwork.inject_fault` /
:meth:`MeshNetwork.repair` mid-run and re-stabilizes incrementally,
mirroring the centralized :mod:`repro.online` subsystem (the two share
epoch semantics; see DESIGN.md "Churn-aware DES"):

* in-flight query sessions are drained first, so every query is
  answered at the epoch it was submitted under;
* **labelling** re-converges scoped to the event's dirty cone: an
  injection only updates the dead cells' neighbors and lets the
  escalation gossip run (labels grow monotonically — warm start); a
  repair resets exactly the labelled cells inside the event's dirty
  slabs (labels shrink only there) and re-announces, with knowledge
  about provably unchanged neighbors kept;
* **identification + boundaries** re-run only for the nodes around
  regions the label diff actually touched: stale section shapes,
  corner marks, and boundary records owned by affected sections are
  pruned and the edge/corner/wall protocol restarts inside the dirty
  region, while untouched regions keep their state.

Each event advances :attr:`epoch`; drained results are stamped with the
epoch they completed under.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np
from scipy import ndimage

from repro import obs
from repro.analysis.sanitize import maybe_sanitize_network
from repro.core.labelling import SAFE
from repro.distributed.boundary_proto import BoundaryMixin
from repro.distributed.identification import IdentificationMixin
from repro.distributed.labelling_proto import LabellingNode, labels_as_grid
from repro.distributed.routing_proto import RoutingMixin
from repro.mesh.coords import Coord
from repro.mesh.topology import Mesh
from repro.simkit.message import Message
from repro.simkit.network import MeshNetwork

#: Chebyshev margin for *affectedness*: a region must re-identify when
#: within distance 2 of a changed label — its ring nodes' contact sets
#: (8-adjacent unsafe cells, possibly of a neighboring region across
#: one safe node) may have changed.
_AFFECT_MARGIN = 2
#: Chebyshev margin for the *restart* node set: ring nodes are
#: 8-adjacent to their region (distance 1) and initialization corners
#: sit on the (umin-1, vmin-1) diagonal — also distance 1.
_IDENT_MARGIN = 1


@dataclass
class QueryHandle:
    """One in-flight (or resolved) routing session.

    ``result`` is populated by :meth:`DistributedMCCPipeline.drain` (or
    immediately at submit time for queries resolved without touching
    the network): the query record with ``status`` in {"delivered",
    "infeasible", "stuck"}, the ``path`` taken, the ``epoch`` the query
    completed under, and ``msgs`` — the messages attributed to this
    session.
    """

    query_id: int
    source: Coord
    dest: Coord
    submitted_epoch: int
    result: dict[str, Any] | None = field(default=None, repr=False)


class MCCProtocolNode(
    RoutingMixin, BoundaryMixin, IdentificationMixin, LabellingNode
):
    """A full protocol node: labelling, identification, walls, routing."""

    def on_message(self, msg: Message) -> None:
        if msg.kind == "LABEL":
            LabellingNode.on_message(self, msg)
        elif self.handle_identification(msg):
            pass
        elif self.handle_boundary(msg):
            pass
        elif self.handle_routing(msg):
            pass

    def on_timer(self, tag: str) -> None:
        if tag == "corner-check":
            IdentificationMixin.on_timer(self, tag)
        else:
            RoutingMixin.on_timer(self, tag)


class DistributedMCCPipeline:
    """Run the whole distributed stack over one fault pattern."""

    def __init__(
        self,
        mesh: Mesh,
        fault_mask: np.ndarray,
        trace: bool = False,
        link_capacity: int | None = None,
    ):
        self.mesh = mesh
        self.net = MeshNetwork(
            mesh,
            fault_mask,
            node_factory=MCCProtocolNode,
            link_capacity=link_capacity,
            trace=trace,
        )
        self._query_ids = itertools.count(1)
        self._phase_messages: dict[str, int] = {}
        self._built = False
        #: Fault-event epoch, aligned with ``OnlineRoutingService``: 0 at
        #: build, +1 per applied event.
        self.epoch = 0
        self._inflight: list[QueryHandle] = []
        maybe_sanitize_network(self.net)

    @property
    def fault_mask(self) -> np.ndarray:
        """The live fault mask (mutate only via :meth:`apply_event`)."""
        return self.net.fault_mask

    # -- phases ------------------------------------------------------------------

    def build(self) -> "DistributedMCCPipeline":
        """Phase 1+2: labelling, then identification and boundaries."""
        if self._built:
            return self
        with obs.span("pipeline_build", cat="distributed") as sp:
            sp.set_vt(start=self.net.sim.now)
            self.net.start()
            self.net.run_to_quiescence()
            self._phase_messages["labelling"] = self.net.stats.total_messages
            for coord, node in self.net.nodes.items():
                if not self.net.is_faulty(coord):
                    self.net.sim.schedule(0.0, node.start_identification)
            self.net.run_to_quiescence()
            self._phase_messages["identification+boundaries"] = (
                self.net.stats.total_messages - self._phase_messages["labelling"]
            )
            sp.set_vt(end=self.net.sim.now)
            sp.set(messages=self.net.stats.total_messages)
        self._built = True
        return self

    # -- query sessions ----------------------------------------------------------

    def submit(
        self,
        source: Sequence[int],
        dest: Sequence[int],
        strict: bool = True,
        at: float = 0.0,
    ) -> QueryHandle:
        """Launch one routing session without blocking (canonical frame).

        With ``strict=True`` (the :meth:`route` contract) a faulty or
        unsafe source raises.  ``strict=False`` resolves such queries —
        and faulty/unsafe destinations — immediately as failed records
        instead, which is what churn workloads need: endpoints die and
        heal between submissions, and a dead endpoint is a routing
        failure, not a caller bug.

        ``at`` delays the session's start by that many time units from
        now — the open-loop load generator uses it to place Poisson
        arrivals on the simulator clock; with contended links the
        sessions then genuinely overlap and queue against each other.
        """
        if not self._built:
            self.build()
        source = tuple(int(c) for c in source)
        dest = tuple(int(c) for c in dest)
        if any(s > d for s, d in zip(source, dest, strict=True)):
            raise ValueError(f"canonical frame required: {source} !<= {dest}")
        query_id = next(self._query_ids)
        mark = obs.instant(
            "submit", cat="distributed", query_id=query_id, at=float(at)
        )
        if mark is not None:
            mark.vt0 = mark.vt1 = self.net.sim.now
        handle = QueryHandle(
            query_id=query_id,
            source=source,
            dest=dest,
            submitted_epoch=self.epoch,
        )
        reason = self._endpoint_problem(source, dest, strict=strict)
        if reason is not None:
            handle.result = {
                "dest": dest,
                "status": "infeasible",
                "reason": reason,
                "path": [source],
                "query_id": query_id,
                "source": source,
                "epoch": self.epoch,
                "msgs": 0,
                "latency": 0.0,
            }
        else:
            src_node = self.net.nodes[source]
            self.net.sim.schedule(
                at, lambda: src_node.start_query(query_id, dest)
            )
        self._inflight.append(handle)
        return handle

    def _endpoint_problem(
        self, source: Coord, dest: Coord, strict: bool
    ) -> str | None:
        """Validate endpoints; raises (strict) or names the failure."""
        src_unsafe = self.net.is_faulty(source) or (
            self.net.nodes[source].store.get("label", SAFE) != SAFE
        )
        if src_unsafe:
            if strict:
                raise ValueError(f"source {source} is not a safe node")
            return "source unsafe"
        if not strict:
            if self.net.is_faulty(dest) or (
                self.net.nodes[dest].store.get("label", SAFE) != SAFE
            ):
                return "dest unsafe"
        return None

    def drain(self) -> list[dict[str, Any]]:
        """Run to quiescence; resolve every in-flight session, in order.

        Returns the query records in submission order and fills each
        outstanding handle's ``result``.  Every record is stamped with
        the :attr:`epoch` it completed under and its per-session
        message count.
        """
        if not self._inflight:
            return []
        with obs.span(
            "pipeline_drain", cat="distributed", sessions=len(self._inflight)
        ) as sp:
            sp.set_vt(start=self.net.sim.now)
            self.net.run_to_quiescence()
            sp.set_vt(end=self.net.sim.now)
        out: list[dict[str, Any]] = []
        for handle in self._inflight:
            if handle.result is None:
                node = self.net.nodes[handle.source]
                record = dict(node.store["queries"][handle.query_id])
                record.setdefault("path", [handle.source])
                record["query_id"] = handle.query_id
                record["source"] = handle.source
                record["epoch"] = self.epoch
                record["msgs"] = int(
                    self.net.stats.query_messages.get(handle.query_id, 0)
                )
                # Session latency from the protocol's own clock stamps
                # (arrival of start_query -> terminal status); under
                # contended links this includes all queueing delay.
                if "started_at" in record and "completed_at" in record:
                    record["latency"] = record["completed_at"] - record["started_at"]
                handle.result = record
                # Resolved sessions release their protocol-side state so
                # a long-lived pipeline does not grow per query served.
                # (Straggler replies tolerate the missing entry; flood
                # dedup markers stay — they are the per-node memory of a
                # flood having passed and have no completion signal.)
                node.store["queries"].pop(handle.query_id, None)
                self.net.stats.query_messages.pop(handle.query_id, None)
            out.append(handle.result)
        self._inflight = []
        return out

    def route(self, source: Sequence[int], dest: Sequence[int]) -> dict:
        """Phase 3: one blocking routing query (thin session wrapper).

        Returns the query record: status in {"delivered", "infeasible",
        "stuck"} plus the path taken.  Exactly ``submit`` + ``drain``
        for a single session — the concurrency parity tests pin that a
        batch of sessions resolves element-wise identically to this.
        """
        handle = self.submit(source, dest)
        self.drain()
        assert handle.result is not None
        return handle.result

    # -- fault churn --------------------------------------------------------------

    def apply_event(
        self, kind: str, cells: Iterable[Sequence[int]]
    ) -> dict[str, Any]:
        """Inject or repair ``cells`` mid-run and re-stabilize incrementally.

        In-flight query sessions are drained first (their records appear
        under ``"flushed"`` in the returned event info, answered at the
        pre-event epoch), then the fault mask mutates, labelling
        re-converges scoped to the event's dirty cone, and
        identification/boundaries re-run only around the regions whose
        labels actually changed.  Advances :attr:`epoch`.
        """
        if kind not in ("inject", "repair"):
            raise ValueError(f"unknown event kind {kind!r}")
        if not self._built:
            self.build()
        mesh_cells = self._check_event_cells(cells, want_faulty=kind == "repair")
        with obs.span(
            "pipeline_event", cat="distributed", kind=kind, cells=len(mesh_cells)
        ) as sp:
            sp.set_vt(start=self.net.sim.now)
            flushed = self.drain()
            msgs_before = self.net.stats.total_messages
            pre_status = self.labels_grid()
            if kind == "inject":
                reset_count, lost_owners = self._stabilize_inject(mesh_cells)
            else:
                reset_count, lost_owners = self._stabilize_repair(
                    mesh_cells, pre_status
                )
            self.net.run_to_quiescence()
            post_status = self.labels_grid()
            diff = np.argwhere(pre_status != post_status)
            changed = {tuple(int(v) for v in c) for c in diff}
            changed.update(mesh_cells)
            restart_mask, affected_cells = self._ident_region(
                pre_status, post_status, changed, lost_owners
            )
            pruned = self._prune_sections(restart_mask, affected_cells)
            restarted = self._restart_identification(restart_mask)
            self.net.run_to_quiescence()
            self.epoch += 1
            stabilize_msgs = self.net.stats.total_messages - msgs_before
            self._phase_messages["restabilization"] = (
                self._phase_messages.get("restabilization", 0) + stabilize_msgs
            )
            region_cells = int(restart_mask.sum())
            sp.set_vt(end=self.net.sim.now)
            sp.set(epoch=self.epoch, messages=stabilize_msgs)
        return {
            "kind": kind,
            "cells": tuple(mesh_cells),
            "epoch": self.epoch,
            "flushed": flushed,
            "labels_changed": len(changed) - len(mesh_cells),
            "reset_cells": reset_count,
            "region_cells": region_cells,
            "sections_pruned": pruned,
            "nodes_restarted": restarted,
            "messages": stabilize_msgs,
        }

    def _check_event_cells(
        self, cells: Iterable[Sequence[int]], want_faulty: bool
    ) -> list[Coord]:
        out: list[Coord] = []
        seen: set[Coord] = set()
        for cell in cells:
            c = tuple(int(v) for v in cell)
            if not self.mesh.contains(c):
                raise ValueError(f"cell {c} outside mesh {self.mesh.shape}")
            if c in seen:
                raise ValueError(f"cell {c} given twice in one event")
            seen.add(c)
            if self.net.is_faulty(c) != want_faulty:
                state = "faulty" if self.net.is_faulty(c) else "healthy"
                raise ValueError(f"cell {c} is {state}")
            out.append(c)
        if not out:
            raise ValueError("a fault event needs at least one cell")
        return out

    def _stabilize_inject(self, cells: list[Coord]) -> int:
        """Kill ``cells``; neighbors detect it and the gossip escalates.

        Labels only grow under injection, so the old fixed point is a
        sound warm start — no resets, no announcements beyond the
        protocol's own change gossip.
        """
        for c in cells:
            self.net.inject_fault(c)
        for c in cells:
            for n in self.mesh.neighbors(c):
                if not self.net.is_faulty(n):
                    node = self.net.nodes[n]
                    self.net.sim.schedule(
                        0.0, lambda nd=node, cc=c: nd.notice_neighbor_died(cc)
                    )
        return 0, set()

    def _stabilize_repair(
        self, cells: list[Coord], pre_status: np.ndarray
    ) -> int:
        """Heal ``cells``; reset exactly the labels that may shrink.

        After a repair the labelled set can only shrink, and only inside
        the event's dirty slabs (``[0, max(P)]`` for the ``+`` closure,
        ``[min(P), top]`` for the ``−`` — the same cones the centralized
        incremental model sweeps).  Currently-SAFE nodes cannot change
        at all, so the reset set is the *labelled* cells of those slabs
        plus the repaired cells themselves.
        """
        for c in cells:
            self.net.repair(c)
        shape = self.mesh.shape
        ndim = len(shape)
        hi_plus = tuple(max(c[a] for c in cells) for a in range(ndim))
        lo_minus = tuple(min(c[a] for c in cells) for a in range(ndim))
        labelled = (pre_status != SAFE) & ~self.net.fault_mask
        for c in cells:  # repaired cells were FAULTY in the snapshot
            labelled[c] = True
        in_plus = np.ones(shape, dtype=bool)
        in_minus = np.ones(shape, dtype=bool)
        for axis in range(ndim):
            idx = np.arange(shape[axis]).reshape(
                tuple(-1 if a == axis else 1 for a in range(ndim))
            )
            in_plus &= idx <= hi_plus[axis]
            in_minus &= idx >= lo_minus[axis]
        reset_mask = labelled & (in_plus | in_minus)
        reset_set = {tuple(int(v) for v in c) for c in np.argwhere(reset_mask)}
        reset_set.update(cells)
        # A rebuild would re-deposit the section shapes and descending
        # wall records the dead node held; remember their owners so the
        # scoped restart re-identifies those sections (possibly far from
        # any label change) and restores the healed node's state.
        lost_owners: set[tuple] = set()
        for c in cells:
            store = self.net.nodes[c].store
            lost_owners.update(store.get("shapes", {}))
            lost_owners.update(
                (key[0], key[1]) for key in store.get("records", {})
            )
            # A repaired node is a fresh node: no stale labels, shapes,
            # records, or query state survive the outage.
            store.clear()
        for c in sorted(reset_set):
            self.net.nodes[c].reset_labelling(reset_set)
        for c in sorted(reset_set):
            node = self.net.nodes[c]
            self.net.sim.schedule(0.0, node.announce_labelling)
        return len(reset_set), lost_owners

    def _ident_region(
        self,
        pre_status: np.ndarray,
        post_status: np.ndarray,
        changed: set[Coord],
        lost_owners: set[tuple] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The re-identification scope of one event (mesh-frame masks).

        An unsafe region (in the old *or* new labelling) must
        re-identify exactly when it sits within :data:`_AFFECT_MARGIN`
        of a changed label: its cells, its boundary ring, or its ring
        nodes' contact knowledge changed.  Regions further away keep
        their sections, marks, and records untouched — that locality is
        what makes an event cheaper than a rebuild.

        Returns ``(restart_mask, affected_cells)``: the nodes whose
        edge/corner/wall protocol restarts (the Chebyshev
        :data:`_IDENT_MARGIN`-neighborhood of the changed labels and the
        affected regions — exactly the ring and corner geometry), and
        the affected regions' actual cells (the pruning criterion for
        section state).
        """
        shape = self.mesh.shape
        ndim = len(shape)
        changed_mask = np.zeros(shape, dtype=bool)
        for c in changed:
            changed_mask[c] = True
        structure = ndimage.generate_binary_structure(ndim, ndim)
        near_changed = ndimage.binary_dilation(
            changed_mask, structure=structure, iterations=_AFFECT_MARGIN
        )
        unsafe = (pre_status != SAFE) | (post_status != SAFE)
        labels, count = ndimage.label(unsafe, structure=structure)
        # Sections whose deposited state a repaired node lost must
        # re-identify even when their own labels never changed: mark
        # the regions around each lost owner's corner as touched.
        if lost_owners:
            near_changed = near_changed.copy()
            for _plane, corner in lost_owners:
                window = tuple(
                    slice(max(0, v - 1), min(k, v + 2))
                    for v, k in zip(corner, shape, strict=True)
                )
                near_changed[window] = True
        touched = np.unique(labels[near_changed & unsafe])
        affected_ids = [int(i) for i in touched if i != 0]
        if affected_ids:
            affected_cells = np.isin(labels, affected_ids)
        else:
            affected_cells = np.zeros(shape, dtype=bool)
        restart_mask = ndimage.binary_dilation(
            changed_mask | affected_cells,
            structure=structure,
            iterations=_IDENT_MARGIN,
        )
        return restart_mask, affected_cells

    def _prune_sections(
        self, restart_mask: np.ndarray, affected_cells: np.ndarray
    ) -> int:
        """Drop section state owned by the affected regions.

        Shapes, corner marks, walk markers, and boundary records of
        sections whose cells lie in an affected region are removed
        everywhere (records may have been deposited far below their
        owner by the wall descent); the same is done for stale state
        anchored inside the restart area, which the restarted protocol
        re-deposits idempotently.  State owned by untouched sections is
        kept — that is the point of scoping.
        """

        def in_mask(cell: Coord) -> bool:
            return bool(restart_mask[cell])

        affected: set[tuple] = set()
        for node in self.net.nodes.values():
            for key, shape in node.store.get("shapes", {}).items():
                if key in affected:
                    continue
                _plane, corner = key
                if in_mask(corner) or any(affected_cells[c] for c in shape):
                    affected.add(key)
        for node in self.net.nodes.values():
            store = node.store
            edge_info = store.get("edge_info")
            if edge_info:
                # A neighbor that turned unsafe inside the region will
                # not re-announce; its edge knowledge must not linger.
                for src in [
                    s
                    for s in edge_info
                    if in_mask(s)
                    and (
                        self.net.is_faulty(s)
                        or self.net.nodes[s].store.get("label", SAFE) != SAFE
                    )
                ]:
                    del edge_info[src]
            shapes = store.get("shapes")
            if shapes:
                for key in [k for k in shapes if k in affected]:
                    del shapes[key]
            marks = store.get("_ident_marks")
            if marks:
                for key in [
                    k
                    for k in marks
                    if (k[0], k[1]) in affected or in_mask(k[1])
                ]:
                    del marks[key]
            arrivals = store.get("_ident_back")
            if arrivals:
                for key in [
                    k for k in arrivals if k in affected or in_mask(k[1])
                ]:
                    del arrivals[key]
            corner_of = store.get("corner_of")
            if corner_of:
                store["corner_of"] = [
                    (key, shape)
                    for key, shape in corner_of
                    if key not in affected
                ]
            records = store.get("records")
            if records:
                for key in [
                    k
                    for k in records
                    if (k[0], k[1]) in affected or in_mask(k[1])
                ]:
                    del records[key]
        return len(affected)

    def _restart_identification(self, restart_mask: np.ndarray) -> int:
        """Re-run edge/corner/wall protocol for live nodes in the scope."""
        count = 0
        for cell in np.argwhere(restart_mask):
            coord = tuple(int(v) for v in cell)
            if self.net.is_faulty(coord):
                continue
            node = self.net.nodes[coord]
            self.net.sim.schedule(
                0.0, lambda nd=node: nd.start_identification(announce_empty=True)
            )
            count += 1
        return count

    # -- observers -----------------------------------------------------------------

    def labels_grid(self) -> np.ndarray:
        return labels_as_grid(self.net)

    def identified_sections(self) -> dict[tuple, frozenset]:
        """(plane, corner) -> shape, from every completed corner."""
        out: dict[tuple, frozenset] = {}
        for _coord, marks in self.net.gather("corner_of", default=[]).items():
            for key, shape in marks or []:
                out[key] = shape
        return out

    def records_at(self, coord: Coord) -> list[dict]:
        node = self.net.nodes[tuple(coord)]
        return list(node.store.get("records", {}).values())

    def message_counts(self) -> dict[str, int]:
        counts = dict(self.net.stats.by_kind())
        counts.update(
            {f"phase[{k}]": v for k, v in self._phase_messages.items()}
        )
        return counts
