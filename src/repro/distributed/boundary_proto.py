"""Distributed boundary construction (Algorithm 2 step 3, Algorithm 5 step 4).

When a section's identification completes at its initialization corner,
the corner launches two wall-walk messages per plane:

* one descending −v that guards +u crossings into the section's
  v-shadow (the 2-D Y boundary; the (+Y−X)/(+Z−Y)/(+Z−X) boundaries of
  the 3-D section families), and
* one descending −u that guards +v crossings into the u-shadow (the 2-D
  X boundary; (+X−Y)/(+Y−Z)/(+X−Z)).

Each ``WALL`` message deposits a *boundary record* at every node it
visits: the owning section, the shadow (forbidden) region encoded as
per-column tops, and the critical region as per-column bottoms.  When
the descent runs into another MCC section, the walk *joins* that
section's boundary: it merges the obstructor's shadow into its record
(per-column max — the paper's ``Q(c) := Q(c) ∪ Q(v)``), wall-follows
around the obstructor to its initialization corner, and resumes the
descent — recursively chaining through any further obstructions.

The obstructor's shape is read from the *local* store of the node that
bumped into it: that node is 4-adjacent to the obstructing section, so
it is one of the ring nodes where the identification phase deposited
the shape.  If identification has not finished there yet, the walk
retries after a short local delay (bounded), mirroring the paper's
implicit stabilization ordering.
"""

from __future__ import annotations

from typing import Any

from repro.core.labelling import SAFE
from repro.mesh.coords import Coord
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess
from repro.distributed.ringwalk import plane_step, ring_step

_MAX_RETRIES = 40
_RETRY_DELAY = 5.0


class BoundaryMixin(NodeProcess):
    """Boundary-construction behaviour; layers on IdentificationMixin."""

    # -- launching ---------------------------------------------------------------

    def on_section_identified(self, plane, corner, shape) -> None:
        """Identification hook: start this section's two boundary walls."""
        axis_u, axis_v = plane
        cells_uv = {(c[axis_u], c[axis_v]) for c in shape}
        for desc_idx in (1, 0):  # descend v (guard +u), then descend u (guard +v)
            col_idx = 1 - desc_idx
            desc_axis = plane[desc_idx]
            guard_axis = plane[col_idx]
            tops: dict[int, int] = {}
            bottoms: dict[int, int] = {}
            for uv in cells_uv:
                col, height = uv[col_idx], uv[desc_idx]
                tops[col] = max(tops.get(col, height), height)
                bottoms[col] = min(bottoms.get(col, height), height)
            payload = {
                "plane": list(plane),
                "owner": list(corner),
                "desc_axis": desc_axis,
                "guard_axis": guard_axis,
                "tops": sorted(tops.items()),
                "bottoms": sorted(bottoms.items()),
                "mode": "descend",
                "retries": 0,
            }
            self._wall_arrive(payload)

    # -- record bookkeeping ---------------------------------------------------------

    def _deposit_record(self, payload: dict[str, Any]) -> None:
        records = self.store.setdefault("records", {})
        key = (
            tuple(payload["plane"]),
            tuple(payload["owner"]),
            payload["desc_axis"],
            payload["guard_axis"],
        )
        records[key] = {
            "plane": tuple(payload["plane"]),
            "owner": tuple(payload["owner"]),
            "shadow_axis": payload["desc_axis"],
            "guard_axis": payload["guard_axis"],
            "tops": dict(tuple(t) for t in payload["tops"]),
            "bottoms": dict(tuple(b) for b in payload["bottoms"]),
        }

    # -- the walk ------------------------------------------------------------------

    def _wall_arrive(self, payload: dict[str, Any]) -> None:
        """Handle the wall message at this node (deposit, then move on)."""
        if self.store.get("label", SAFE) != SAFE:
            return
        budget = 8 * (2 * sum(self.network.mesh.shape) + 8)
        if payload.get("hops", 0) > budget:
            self.network.stats.bump("dropped[wall-hops]")
            return
        self._deposit_record(payload)
        if payload["mode"] == "descend":
            self._wall_descend(payload)
        else:
            self._wall_detour(payload)

    def _wall_descend(self, payload: dict[str, Any]) -> None:
        desc_axis = payload["desc_axis"]
        nxt = list(self.coord)
        nxt[desc_axis] -= 1
        nxt = tuple(nxt)
        if not self.network.mesh.contains(nxt):
            return  # reached the mesh floor: wall complete
        if not self._is_unsafe(nxt):
            self._wall_forward(payload, nxt)
            return
        # Obstructed: join the obstructor's boundary (chain merge).
        shape = self._find_local_shape(tuple(payload["plane"]), nxt)
        if shape is None:
            self._wall_retry(payload)
            return
        self._merge_shape(payload, shape)
        target = self._section_corner(tuple(payload["plane"]), shape)
        if not self.network.mesh.contains(target):
            return  # obstructor hugs the mesh edge: wall ends (barrier)
        payload = dict(payload)
        payload["mode"] = "detour"
        payload["target"] = list(target)
        # Initial detour heading: turn from -desc toward -guard.
        plane = tuple(payload["plane"])
        heading_uv = self._detour_heading(plane, desc_axis)
        payload["heading"] = list(heading_uv)
        self._wall_detour(payload)

    def _wall_detour(self, payload: dict[str, Any]) -> None:
        plane = tuple(payload["plane"])
        axis_u, axis_v = plane
        payload = dict(payload)
        # A pinched detour can run along *other* sections than the one
        # that obstructed the descent: merge every section this node
        # touches and retarget to the deepest corner seen so far, so the
        # walk resumes below the whole chained obstruction.
        merged = [tuple(c) for c in payload.get("merged", [])]
        for du, dv in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            n = plane_step(self.coord, axis_u, axis_v, du, dv)
            if not self.network.mesh.contains(n) or not self._is_unsafe(n):
                continue
            shape = self._find_local_shape(plane, n)
            if shape is None:
                continue
            corner = self._section_corner(plane, shape)
            if corner in merged:
                continue
            merged.append(corner)
            self._merge_shape(payload, shape)
            target = tuple(payload["target"])
            desc = payload["desc_axis"]
            if self.network.mesh.contains(corner) and (
                corner[desc] < target[desc]
                or (corner[desc] == target[desc]
                    and corner[payload["guard_axis"]] < target[payload["guard_axis"]])
            ):
                payload["target"] = list(corner)
        payload["merged"] = [list(c) for c in merged]
        target = tuple(payload["target"])
        if self.coord == target:
            payload["mode"] = "descend"
            self._wall_descend(payload)
            return
        heading = tuple(payload["heading"])
        clockwise = payload["desc_axis"] == axis_u  # see module docstring
        nxt = ring_step(
            self.coord, heading, clockwise, axis_u, axis_v, self._passable_local
        )
        if nxt is None:
            return  # boxed in; drop the wall here
        cell, new_heading = nxt
        payload["heading"] = list(new_heading)
        self._wall_forward(payload, cell)

    def _wall_forward(self, payload: dict[str, Any], dst: Coord) -> None:
        payload = dict(payload)
        payload["hops"] = payload.get("hops", 0) + 1
        self.send(dst, "WALL", payload)

    def _wall_retry(self, payload: dict[str, Any]) -> None:
        payload = dict(payload)
        payload["retries"] = payload.get("retries", 0) + 1
        if payload["retries"] > _MAX_RETRIES:
            return  # obstructor never identified (e.g. broken ring): drop
        self.network.sim.schedule(_RETRY_DELAY, lambda: self._wall_arrive(payload))

    # -- helpers -----------------------------------------------------------------------

    def _detour_heading(self, plane, desc_axis) -> tuple[int, int]:
        """First detour move: toward -guard, i.e. -u when descending v."""
        if desc_axis == plane[1]:  # descending v, guard u: head -u
            return (-1, 0)
        return (0, -1)  # descending u, guard v: head -v

    def _find_local_shape(self, plane, cell: Coord):
        """Shape of the section (same plane family) containing ``cell``."""
        for (p, _corner), shape in self.store.get("shapes", {}).items():
            if tuple(p) == plane and tuple(cell) in shape:
                return shape
        return None

    def _section_corner(self, plane, shape) -> Coord:
        """In-plane SW outer corner (umin-1, vmin-1) of a section shape."""
        axis_u, axis_v = plane
        umin = min(c[axis_u] for c in shape)
        vmin = min(c[axis_v] for c in shape)
        out = list(next(iter(shape)))
        out[axis_u] = umin - 1
        out[axis_v] = vmin - 1
        return tuple(out)

    def _merge_shape(self, payload: dict[str, Any], shape) -> None:
        """Q := Q ∪ Q(obstructor): per-column max of shadow tops."""
        desc_axis = payload["desc_axis"]
        col_axis = payload["guard_axis"]
        tops = dict(tuple(t) for t in payload["tops"])
        for cell in shape:
            col, height = cell[col_axis], cell[desc_axis]
            tops[col] = max(tops.get(col, height), height)
        payload["tops"] = sorted(tops.items())

    # -- dispatch ---------------------------------------------------------------------

    def handle_boundary(self, msg: Message) -> bool:
        if msg.kind == "WALL":
            self._wall_arrive(msg.payload)
            return True
        return False
