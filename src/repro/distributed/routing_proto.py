"""Distributed feasibility detection and routing (Algorithms 3 and 6).

Canonical-frame protocol (the pipeline orients the mesh per pair):

* **Detection** (step 1): the source launches detection messages that
  hug the low faces of the RMP.  2-D: two greedy walks (prefer +Y along
  x = xs detouring +X; prefer +X along y = ys detouring +Y).  3-D:
  three surface floods ((−X): spread +Y/+Z detour +X; (−Y): +X/+Z
  detour +Y; (−Z): +X/+Y detour +Z).  A message reaching its target
  segment/surface sends ``DETECT_OK`` back along its trail; a 2-D walk
  that gets cornered sends ``DETECT_FAIL``.  Flood failures are detected
  by timeout at the source (a drained flood sends nothing).
* **Routing** (step 2): ``ROUTE`` messages are forwarded hop by hop.
  Candidate directions are the preferred (+) axes; a candidate is
  deferred when the neighbor is known-unsafe (local labels) or when a
  local boundary record marks the neighbor as forbidden while the
  destination lies in the record's critical region — Algorithm 3 step
  2(b) from strictly node-local state.  Ties go to the lowest axis
  (deterministic; the engine-level tests cover other policies).  A
  walker that dead-ends *backtracks*: the token carries its visited
  set, returns to the previous hop, and the search resumes with the
  next candidate.  Labels and records cannot express traps that only
  exist in the lower-dimensional problem left once an axis is
  exhausted (``coord[a] == dest[a]`` — e.g. two MCCs whose 2-D
  sections merge diagonally inside the remaining plane), so the walk
  stays guided-greedy when the records suffice and degrades to a
  depth-first search of the RMP when they do not, making delivery
  exact: the walker reaches the destination iff a minimal path through
  non-faulty nodes exists.  Committed moves are always +1 along an
  axis, so a delivered path is minimal by construction.

Outcomes are deposited at the source node's store: ``"queries"`` maps a
query id to ``"delivered"``, ``"infeasible"`` or ``"stuck"`` plus the
path taken.

**Concurrent sessions.**  Every piece of routing state is namespaced by
the pipeline-unique query id: the per-source ``"queries"`` records, the
flood dedup set (keyed ``(query, surface)``), the detection timeout
timer tag (``detect-timeout:<id>``), and each walker's path/visited
state (carried in the message payload, never in node stores).  Every
DETECT/ROUTE message and reply also carries the id in its payload — the
network attributes per-session message cost from that tag.  Queries
read only node-local state that is *static during the query phase*
(labels, boundary records), so any number of walks may interleave in
one ``run_to_quiescence`` and each resolves exactly as it would have
alone; ``tests/test_des_concurrent.py`` pins that batch results are
element-wise identical to blocking per-query calls.
"""

from __future__ import annotations

from typing import Any

from repro.core.labelling import SAFE
from repro.mesh.coords import Coord
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess

_DETECT_TIMEOUT_FACTOR = 6.0


class RoutingMixin(NodeProcess):
    """Routing behaviour; layers on labelling + boundary mixins."""

    # -- query bookkeeping (source side) ----------------------------------------

    def start_query(self, query_id: int, dest: Coord) -> None:
        """Begin feasibility detection for a routing toward ``dest``.

        Axes with zero offset collapse the RMP into a lower-dimensional
        slice (the surface messages of Algorithm 6 verify one coordinate
        each, which is vacuous along a degenerate axis), so the
        detection is chosen by the number of *live* axes: three surface
        floods for a full 3-D octant, two in-plane walks when one axis
        is degenerate (and for 2-D meshes), and a single straight-line
        walk when only one axis is live.
        """
        dest = tuple(dest)
        queries = self.store.setdefault("queries", {})
        queries[query_id] = {
            "dest": dest,
            "status": "detecting",
            "oks": set(),
            "expected": 0,
            "path": [self.coord],
            # Session clock stamps: arrival now, completion at the
            # terminal status transition.  The pipeline turns the pair
            # into end-to-end session latency (queueing included).
            "started_at": self.network.sim.now,
        }
        if dest == self.coord:
            queries[query_id]["status"] = "delivered"
            queries[query_id]["completed_at"] = self.network.sim.now
            return
        live = tuple(
            a for a in range(self.network.mesh.ndim) if dest[a] != self.coord[a]
        )
        if len(live) == 1:
            queries[query_id]["expected"] = 1
            self._launch_detect_walks(query_id, dest, ((live[0], None),))
        elif len(live) == 2:
            queries[query_id]["expected"] = 2
            # Plane walks on a 3-D mesh consult full-class labels, which
            # can under-block inside the slice: their failure verdict is
            # advisory only (the exact backtracking walker settles it).
            queries[query_id]["advisory"] = self.network.mesh.ndim == 3
            self._launch_detect_walks(
                query_id, dest, ((live[1], live[0]), (live[0], live[1]))
            )
        else:
            queries[query_id]["expected"] = 3
            self._launch_detect_floods(query_id, dest)
        timeout = _DETECT_TIMEOUT_FACTOR * (sum(self.network.mesh.shape) + 10)
        self.set_timer(timeout, f"detect-timeout:{query_id}")

    def on_timer(self, tag: str) -> None:
        if tag.startswith("detect-timeout:"):
            query_id = int(tag.split(":", 1)[1])
            query = self.store.get("queries", {}).get(query_id)
            if query is not None and query["status"] == "detecting":
                query["status"] = "infeasible"
                query["completed_at"] = self.network.sim.now
            return
        super().on_timer(tag)

    # -- detection: 2-D greedy walks ------------------------------------------------

    def _launch_detect_walks(
        self,
        query_id: int,
        dest: Coord,
        axes: tuple[tuple[int, int | None], ...],
    ) -> None:
        """Greedy walks, one per (prefer, detour) axis pair.

        ``detour=None`` is the 1-D straight-line walk: any obstruction
        fails it.  For a 2-D mesh ``axes`` is ((1, 0), (0, 1)) — the
        paper's two walks; for a 3-D pair with one degenerate axis the
        same two walks run inside the remaining plane.
        """
        for prefer_axis, detour_axis in axes:
            payload = {
                "query": query_id,
                "dest": list(dest),
                "source": list(self.coord),
                "prefer": prefer_axis,
                "detour": detour_axis,
                "trail": [list(self.coord)],
            }
            self._detect_walk_step(payload)

    def _detect_walk_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        prefer = payload["prefer"]
        detour = payload.get("detour")
        if self.coord[prefer] == dest[prefer]:
            self._detect_reply(payload, ok=True)
            return
        ahead = list(self.coord)
        ahead[prefer] += 1
        ahead = tuple(ahead)
        if self.network.mesh.contains(ahead) and not self._is_unsafe(ahead):
            self._detect_forward(payload, ahead)
            return
        if detour is None:
            self._detect_reply(payload, ok=False)
            return
        side = list(self.coord)
        side[detour] += 1
        side = tuple(side)
        if (
            side[detour] > dest[detour]
            or not self.network.mesh.contains(side)
            or self._is_unsafe(side)
        ):
            self._detect_reply(payload, ok=False)
            return
        self._detect_forward(payload, side)

    def _detect_forward(self, payload: dict[str, Any], dst: Coord) -> None:
        payload = dict(payload)
        payload["trail"] = payload["trail"] + [list(dst)]
        ttl = 8 * (sum(self.network.mesh.shape) + 8)
        self.send(dst, "DETECT", payload, ttl=ttl)

    # -- detection: 3-D surface floods ------------------------------------------------

    _SURFACES = {  # name: (spread axes, detour axis, target axis)
        "-X": ((1, 2), 0, 1),
        "-Y": ((0, 2), 1, 2),
        "-Z": ((0, 1), 2, 0),
    }

    def _launch_detect_floods(self, query_id: int, dest: Coord) -> None:
        for name in self._SURFACES:
            payload = {
                "query": query_id,
                "dest": list(dest),
                "source": list(self.coord),
                "surface": name,
                "trail": [list(self.coord)],
            }
            self._detect_flood_step(payload)

    def _detect_flood_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        name = payload["surface"]
        spread, detour, target = self._SURFACES[name]
        seen = self.store.setdefault("_flood_seen", set())
        key = (payload["query"], name)
        if key in seen:
            return
        seen.add(key)
        if self.coord[target] == dest[target]:
            self._detect_reply(payload, ok=True)
            return
        moves = []
        obstructed = False
        for axis in spread:
            ahead = list(self.coord)
            ahead[axis] += 1
            ahead = tuple(ahead)
            if ahead[axis] > dest[axis]:
                continue
            if self._is_unsafe(ahead):
                obstructed = True
            else:
                moves.append(ahead)
        if obstructed:
            ahead = list(self.coord)
            ahead[detour] += 1
            ahead = tuple(ahead)
            if ahead[detour] <= dest[detour] and not self._is_unsafe(ahead):
                moves.append(ahead)
        for nxt in moves:
            self._detect_forward(payload, nxt)

    # -- detection replies -----------------------------------------------------------

    def _detect_reply(self, payload: dict[str, Any], ok: bool) -> None:
        kind = "DETECT_OK" if ok else "DETECT_FAIL"
        trail = [tuple(c) for c in payload["trail"]]
        reply = {
            "query": payload["query"],
            "which": payload.get("prefer", payload.get("surface")),
            "trail": [list(c) for c in trail],
        }
        self._reply_step(kind, reply)

    def _reply_step(self, kind: str, payload: dict[str, Any]) -> None:
        trail = [tuple(c) for c in payload["trail"]]
        if len(trail) <= 1:
            if kind == "ROUTE_DONE":
                self._absorb_route_done(payload)
            else:
                self._absorb_reply(kind, payload)
            return
        payload = dict(payload)
        payload["trail"] = [list(c) for c in trail[:-1]]
        self.send(trail[-2], kind, payload, ttl=None)

    def _absorb_reply(self, kind: str, payload: dict[str, Any]) -> None:
        query = self.store.get("queries", {}).get(payload["query"])
        if query is None or query["status"] != "detecting":
            return
        if kind == "DETECT_FAIL":
            if query.get("advisory"):
                # Inconclusive reduced-problem detection: route anyway;
                # the backtracking walker is exact either way.
                query["status"] = "routing"
                self._launch_route(payload["query"], query)
            else:
                query["status"] = "infeasible"
                query["completed_at"] = self.network.sim.now
            return
        query["oks"].add(payload["which"])
        if len(query["oks"]) >= query["expected"]:
            query["status"] = "routing"
            self._launch_route(payload["query"], query)

    # -- routing ------------------------------------------------------------------------

    def _launch_route(self, query_id: int, query: dict[str, Any]) -> None:
        payload = {
            "query": query_id,
            "dest": list(query["dest"]),
            "source": list(self.coord),
            "path": [list(self.coord)],
            "visited": [list(self.coord)],
        }
        self._route_step(payload)

    def _route_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        if self.coord == dest:
            self._route_done(payload, "delivered")
            return
        visited = {tuple(c) for c in payload["visited"]}
        for axis in self._route_candidates(dest):
            nxt = list(self.coord)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if nxt in visited:
                continue
            forward = dict(payload)
            forward["path"] = payload["path"] + [list(nxt)]
            forward["visited"] = payload["visited"] + [list(nxt)]
            self.send(nxt, "ROUTE", forward, ttl=None)
            return
        # Dead end: every live successor already tried.  Backtrack the
        # token one hop; the previous node resumes with its next
        # candidate (each cell enters the visited set once, so the
        # search is linear in the RMP size and always terminates).
        path = [tuple(c) for c in payload["path"]]
        if len(path) <= 1:
            self._route_done(payload, "stuck")
            return
        back = dict(payload)
        back["path"] = [list(c) for c in path[:-1]]
        self.send(path[-2], "ROUTE", back, ttl=None)

    def _route_candidates(self, dest: Coord) -> list[int]:
        """Preferred axes ordered by Algorithm 3 step 2, best first.

        Live (non-faulty) preferred neighbors only; those permitted by
        the local labels and boundary records come first.  Excluded
        neighbors are deferred to the end rather than dropped outright:
        per-MCC-section records cannot express every trap of the
        reduced problem after an axis is exhausted, and the
        backtracking walk corrects such excursions exactly.
        """
        records = list(self.store.get("records", {}).values())
        preferred: list[int] = []
        deferred: list[int] = []
        for axis in range(len(self.coord)):
            if self.coord[axis] >= dest[axis]:
                continue
            nxt = list(self.coord)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if not self.network.mesh.contains(nxt):
                continue
            if self.network.is_faulty(nxt):
                continue  # never forward to a dead node
            if self._is_unsafe(nxt) or any(
                self._record_forbids(rec, nxt, axis, dest) for rec in records
            ):
                deferred.append(axis)
            else:
                preferred.append(axis)
        return preferred + deferred

    def _record_forbids(
        self, rec: dict[str, Any], neighbor: Coord, axis: int, dest: Coord
    ) -> bool:
        if rec["guard_axis"] != axis:
            return False
        shadow_axis = rec["shadow_axis"]
        col_axis = rec["guard_axis"]
        # Critical-region test for the destination.  Records are
        # plane-local: off-plane axes must match the destination for the
        # per-section critical region to contain it.
        plane = rec["plane"]
        for a in range(len(dest)):
            if a not in plane and dest[a] != self.coord[a]:
                return False
        d_col = dest[col_axis]
        bottoms = rec["bottoms"]
        if d_col not in bottoms or dest[shadow_axis] <= bottoms[d_col]:
            return False
        # Forbidden-region test for the neighbor.
        tops = rec["tops"]
        n_col = neighbor[col_axis]
        return n_col in tops and neighbor[shadow_axis] < tops[n_col]

    def _route_done(self, payload: dict[str, Any], status: str) -> None:
        deliveries = self.store.setdefault("deliveries", [])
        deliveries.append(
            {
                "query": payload["query"],
                "status": status,
                "path": [tuple(c) for c in payload["path"]],
            }
        )
        # Notify the source along the reverse path.
        notice = {
            "query": payload["query"],
            "status": status,
            "path": [list(c) for c in payload["path"]],
            "trail": [list(c) for c in payload["path"]],
        }
        self._reply_step("ROUTE_DONE", notice)

    def _absorb_route_done(self, payload: dict[str, Any]) -> None:
        query = self.store.get("queries", {}).get(payload["query"])
        if query is None:
            return
        query["status"] = payload["status"]
        query["path"] = [tuple(c) for c in payload["path"]]
        query["completed_at"] = self.network.sim.now

    # -- dispatch ---------------------------------------------------------------------

    def handle_routing(self, msg: Message) -> bool:
        if msg.kind == "DETECT":
            if self.store.get("label", SAFE) == SAFE:
                if "surface" in msg.payload:
                    self._detect_flood_step(msg.payload)
                else:
                    self._detect_walk_step(msg.payload)
        elif msg.kind in ("DETECT_OK", "DETECT_FAIL"):
            self._reply_step(msg.kind, msg.payload)
        elif msg.kind == "ROUTE":
            self._route_step(msg.payload)
        elif msg.kind == "ROUTE_DONE":
            self._reply_step("ROUTE_DONE", msg.payload)
        else:
            return False
        return True
