"""Distributed feasibility detection and routing (Algorithms 3 and 6).

Canonical-frame protocol (the pipeline orients the mesh per pair):

* **Detection** (step 1): the source launches detection messages that
  hug the low faces of the RMP.  2-D: two greedy walks (prefer +Y along
  x = xs detouring +X; prefer +X along y = ys detouring +Y).  3-D:
  three surface floods ((−X): spread +Y/+Z detour +X; (−Y): +X/+Z
  detour +Y; (−Z): +X/+Y detour +Z).  A message reaching its target
  segment/surface sends ``DETECT_OK`` back along its trail; a 2-D walk
  that gets cornered sends ``DETECT_FAIL``.  Flood failures are detected
  by timeout at the source (a drained flood sends nothing).
* **Routing** (step 2): ``ROUTE`` messages are forwarded hop by hop.
  Candidate directions are the preferred (+) axes; a candidate is
  dropped when the neighbor is known-unsafe (local labels) or when a
  local boundary record marks the neighbor as forbidden while the
  destination lies in the record's critical region — Algorithm 3 step
  2(b) from strictly node-local state.  Ties go to the lowest axis
  (deterministic; the engine-level tests cover other policies).

Outcomes are deposited at the source node's store: ``"queries"`` maps a
query id to ``"delivered"``, ``"infeasible"`` or ``"stuck"`` plus the
path taken.
"""

from __future__ import annotations

from typing import Any

from repro.core.labelling import SAFE
from repro.mesh.coords import Coord
from repro.simkit.message import Message
from repro.simkit.node import NodeProcess

_DETECT_TIMEOUT_FACTOR = 6.0


class RoutingMixin(NodeProcess):
    """Routing behaviour; layers on labelling + boundary mixins."""

    # -- query bookkeeping (source side) ----------------------------------------

    def start_query(self, query_id: int, dest: Coord) -> None:
        """Begin feasibility detection for a routing toward ``dest``."""
        queries = self.store.setdefault("queries", {})
        ndim = self.network.mesh.ndim
        expected = 2 if ndim == 2 else 3
        queries[query_id] = {
            "dest": tuple(dest),
            "status": "detecting",
            "oks": set(),
            "expected": expected,
            "path": [self.coord],
        }
        if tuple(dest) == self.coord:
            queries[query_id]["status"] = "delivered"
            return
        if ndim == 2:
            self._launch_detect_walks(query_id, tuple(dest))
        else:
            self._launch_detect_floods(query_id, tuple(dest))
        timeout = _DETECT_TIMEOUT_FACTOR * (sum(self.network.mesh.shape) + 10)
        self.set_timer(timeout, f"detect-timeout:{query_id}")

    def on_timer(self, tag: str) -> None:
        if tag.startswith("detect-timeout:"):
            query_id = int(tag.split(":", 1)[1])
            query = self.store.get("queries", {}).get(query_id)
            if query is not None and query["status"] == "detecting":
                query["status"] = "infeasible"
            return
        super().on_timer(tag)

    # -- detection: 2-D greedy walks ------------------------------------------------

    def _launch_detect_walks(self, query_id: int, dest: Coord) -> None:
        for prefer_axis in (1, 0):
            payload = {
                "query": query_id,
                "dest": list(dest),
                "source": list(self.coord),
                "prefer": prefer_axis,
                "trail": [list(self.coord)],
            }
            self._detect_walk_step(payload)

    def _detect_walk_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        prefer = payload["prefer"]
        detour = 1 - prefer
        if self.coord[prefer] == dest[prefer]:
            self._detect_reply(payload, ok=True)
            return
        ahead = list(self.coord)
        ahead[prefer] += 1
        ahead = tuple(ahead)
        if self.network.mesh.contains(ahead) and not self._is_unsafe(ahead):
            self._detect_forward(payload, ahead)
            return
        side = list(self.coord)
        side[detour] += 1
        side = tuple(side)
        if (
            side[detour] > dest[detour]
            or not self.network.mesh.contains(side)
            or self._is_unsafe(side)
        ):
            self._detect_reply(payload, ok=False)
            return
        self._detect_forward(payload, side)

    def _detect_forward(self, payload: dict[str, Any], dst: Coord) -> None:
        payload = dict(payload)
        payload["trail"] = payload["trail"] + [list(dst)]
        ttl = 8 * (sum(self.network.mesh.shape) + 8)
        self.send(dst, "DETECT", payload, ttl=ttl)

    # -- detection: 3-D surface floods ------------------------------------------------

    _SURFACES = {  # name: (spread axes, detour axis, target axis)
        "-X": ((1, 2), 0, 1),
        "-Y": ((0, 2), 1, 2),
        "-Z": ((0, 1), 2, 0),
    }

    def _launch_detect_floods(self, query_id: int, dest: Coord) -> None:
        for name in self._SURFACES:
            payload = {
                "query": query_id,
                "dest": list(dest),
                "source": list(self.coord),
                "surface": name,
                "trail": [list(self.coord)],
            }
            self._detect_flood_step(payload)

    def _detect_flood_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        name = payload["surface"]
        spread, detour, target = self._SURFACES[name]
        seen = self.store.setdefault("_flood_seen", set())
        key = (payload["query"], name)
        if key in seen:
            return
        seen.add(key)
        if self.coord[target] == dest[target]:
            self._detect_reply(payload, ok=True)
            return
        moves = []
        obstructed = False
        for axis in spread:
            ahead = list(self.coord)
            ahead[axis] += 1
            ahead = tuple(ahead)
            if ahead[axis] > dest[axis]:
                continue
            if self._is_unsafe(ahead):
                obstructed = True
            else:
                moves.append(ahead)
        if obstructed:
            ahead = list(self.coord)
            ahead[detour] += 1
            ahead = tuple(ahead)
            if ahead[detour] <= dest[detour] and not self._is_unsafe(ahead):
                moves.append(ahead)
        for nxt in moves:
            self._detect_forward(payload, nxt)

    # -- detection replies -----------------------------------------------------------

    def _detect_reply(self, payload: dict[str, Any], ok: bool) -> None:
        kind = "DETECT_OK" if ok else "DETECT_FAIL"
        trail = [tuple(c) for c in payload["trail"]]
        reply = {
            "query": payload["query"],
            "which": payload.get("prefer", payload.get("surface")),
            "trail": [list(c) for c in trail],
        }
        self._reply_step(kind, reply)

    def _reply_step(self, kind: str, payload: dict[str, Any]) -> None:
        trail = [tuple(c) for c in payload["trail"]]
        if len(trail) <= 1:
            if kind == "ROUTE_DONE":
                self._absorb_route_done(payload)
            else:
                self._absorb_reply(kind, payload)
            return
        payload = dict(payload)
        payload["trail"] = [list(c) for c in trail[:-1]]
        self.send(trail[-2], kind, payload, ttl=None)

    def _absorb_reply(self, kind: str, payload: dict[str, Any]) -> None:
        query = self.store.get("queries", {}).get(payload["query"])
        if query is None or query["status"] != "detecting":
            return
        if kind == "DETECT_FAIL":
            query["status"] = "infeasible"
            return
        query["oks"].add(payload["which"])
        if len(query["oks"]) >= query["expected"]:
            query["status"] = "routing"
            self._launch_route(payload["query"], query)

    # -- routing ------------------------------------------------------------------------

    def _launch_route(self, query_id: int, query: dict[str, Any]) -> None:
        payload = {
            "query": query_id,
            "dest": list(query["dest"]),
            "source": list(self.coord),
            "path": [list(self.coord)],
        }
        self._route_step(payload)

    def _route_step(self, payload: dict[str, Any]) -> None:
        dest = tuple(payload["dest"])
        if self.coord == dest:
            self._route_done(payload, "delivered")
            return
        axis = self._route_choose(dest)
        if axis is None:
            self._route_done(payload, "stuck")
            return
        nxt = list(self.coord)
        nxt[axis] += 1
        nxt = tuple(nxt)
        payload = dict(payload)
        payload["path"] = payload["path"] + [list(nxt)]
        self.send(nxt, "ROUTE", payload, ttl=None)

    def _route_choose(self, dest: Coord) -> int | None:
        """Algorithm 3 step 2 from node-local state only."""
        records = list(self.store.get("records", {}).values())
        for axis in range(len(self.coord)):
            if self.coord[axis] >= dest[axis]:
                continue
            nxt = list(self.coord)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if not self.network.mesh.contains(nxt) or self._is_unsafe(nxt):
                continue
            if any(
                self._record_forbids(rec, nxt, axis, dest) for rec in records
            ):
                continue
            return axis
        return None

    def _record_forbids(
        self, rec: dict[str, Any], neighbor: Coord, axis: int, dest: Coord
    ) -> bool:
        if rec["guard_axis"] != axis:
            return False
        shadow_axis = rec["shadow_axis"]
        col_axis = rec["guard_axis"]
        # Critical-region test for the destination.  Records are
        # plane-local: off-plane axes must match the destination for the
        # per-section critical region to contain it.
        plane = rec["plane"]
        for a in range(len(dest)):
            if a not in plane and dest[a] != self.coord[a]:
                return False
        d_col = dest[col_axis]
        bottoms = rec["bottoms"]
        if d_col not in bottoms or dest[shadow_axis] <= bottoms[d_col]:
            return False
        # Forbidden-region test for the neighbor.
        tops = rec["tops"]
        n_col = neighbor[col_axis]
        return n_col in tops and neighbor[shadow_axis] < tops[n_col]

    def _route_done(self, payload: dict[str, Any], status: str) -> None:
        deliveries = self.store.setdefault("deliveries", [])
        deliveries.append(
            {
                "query": payload["query"],
                "status": status,
                "path": [tuple(c) for c in payload["path"]],
            }
        )
        # Notify the source along the reverse path.
        notice = {
            "query": payload["query"],
            "status": status,
            "path": [list(c) for c in payload["path"]],
            "trail": [list(c) for c in payload["path"]],
        }
        self._reply_step("ROUTE_DONE", notice)

    def _absorb_route_done(self, payload: dict[str, Any]) -> None:
        query = self.store.get("queries", {}).get(payload["query"])
        if query is None:
            return
        query["status"] = payload["status"]
        query["path"] = [tuple(c) for c in payload["path"]]

    # -- dispatch ---------------------------------------------------------------------

    def handle_routing(self, msg: Message) -> bool:
        if msg.kind == "DETECT":
            if self.store.get("label", SAFE) == SAFE:
                if "surface" in msg.payload:
                    self._detect_flood_step(msg.payload)
                else:
                    self._detect_walk_step(msg.payload)
        elif msg.kind in ("DETECT_OK", "DETECT_FAIL"):
            self._reply_step(msg.kind, msg.payload)
        elif msg.kind == "ROUTE":
            self._route_step(msg.payload)
        elif msg.kind == "ROUTE_DONE":
            self._reply_step("ROUTE_DONE", msg.payload)
        else:
            return False
        return True
