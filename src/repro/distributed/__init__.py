"""Distributed (message-passing) realization of the MCC pipeline.

Every algorithm in :mod:`repro.core` exists here as a protocol over the
:mod:`repro.simkit` network, exchanging messages only between mesh
neighbors and reading only node-local state:

* :mod:`repro.distributed.labelling_proto` — Algorithm 1/4 by label
  gossip (any dimension);
* :mod:`repro.distributed.identification` — Algorithm 2 steps 1–2 /
  Algorithm 5 step 1: two-head-on identification walks around each MCC
  (per 2-D section in 3-D), TTL discard, shape assembly and deposit;
* :mod:`repro.distributed.boundary_proto` — Algorithm 2 step 3 /
  Algorithm 5 step 4: wall walks depositing boundary records, joining
  and merging forbidden regions at obstructions;
* :mod:`repro.distributed.routing_proto` — Algorithm 3 / Algorithm 6:
  detection walks and record-guided adaptive forwarding.

The package is validated against the centralized reference pipeline in
``tests/test_dist_*`` (property P4).
"""

from repro.distributed.labelling_proto import LabellingNode, run_distributed_labelling
from repro.distributed.pipeline import DistributedMCCPipeline

__all__ = [
    "LabellingNode",
    "run_distributed_labelling",
    "DistributedMCCPipeline",
]
