"""Ring-walk primitives: wall-following around a fault region.

The identification process walks messages along the *edge ring* of an
MCC — the safe nodes 8-adjacent to the region (edge nodes plus outer
corner nodes).  A clockwise walker keeps the region on its right, a
counter-clockwise walker on its left; both are classical wall-followers
specialized to grid rings.

All functions are pure and plane-generic: a *plane* is an (axis_u,
axis_v) pair, so the same walker identifies 2-D MCCs (axes (0, 1)) and
the XY/XZ/YZ sections of 3-D MCCs (Algorithm 5 step 1).  Queries about
cell safety go through a caller-supplied predicate so the walker can be
driven either by the true grid (tests) or by strictly node-local
knowledge inside the protocol.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.mesh.coords import Coord

# Headings are (du, dv) unit steps within the plane.
_CW_ORDER = {  # right-hand follower: right, straight, left, back
    (0, 1): [(1, 0), (0, 1), (-1, 0), (0, -1)],
    (1, 0): [(0, -1), (1, 0), (0, 1), (-1, 0)],
    (0, -1): [(-1, 0), (0, -1), (1, 0), (0, 1)],
    (-1, 0): [(0, 1), (-1, 0), (0, -1), (1, 0)],
}
_CCW_ORDER = {  # left-hand follower: left, straight, right, back
    (0, 1): [(-1, 0), (0, 1), (1, 0), (0, -1)],
    (-1, 0): [(0, -1), (-1, 0), (0, 1), (1, 0)],
    (0, -1): [(1, 0), (0, -1), (-1, 0), (0, 1)],
    (1, 0): [(0, 1), (1, 0), (0, -1), (-1, 0)],
}


def plane_step(
    coord: Sequence[int], axis_u: int, axis_v: int, du: int, dv: int
) -> Coord:
    """Move within the plane; other coordinates stay fixed."""
    out = list(coord)
    out[axis_u] += du
    out[axis_v] += dv
    return tuple(out)


def ring_step(
    coord: Sequence[int],
    heading: tuple[int, int],
    clockwise: bool,
    axis_u: int,
    axis_v: int,
    passable: Callable[[Coord], bool],
) -> tuple[Coord, tuple[int, int]] | None:
    """One wall-following step; None when boxed in.

    ``passable(cell)`` must be True for safe, in-mesh cells.  Returns the
    next cell and the new heading.
    """
    order = (_CW_ORDER if clockwise else _CCW_ORDER)[heading]
    for du, dv in order:
        nxt = plane_step(coord, axis_u, axis_v, du, dv)
        if passable(nxt):
            return nxt, (du, dv)
    return None


def initial_heading(clockwise: bool) -> tuple[int, int]:
    """First move out of the initialization corner.

    The paper sends the clockwise message to the +v edge neighbor (up
    the low-u side) and the counter-clockwise message to the +u edge
    neighbor (along the low-v side).
    """
    return (0, 1) if clockwise else (1, 0)


def fill_interior(
    chain_cells: set[tuple[int, int]],
    corner_uv: tuple[int, int],
    bounds: tuple[int, int] | None = None,
    closed: bool = True,
) -> set[tuple[int, int]]:
    """Region enclosed by a ring (or a border-broken chain) of ring cells.

    Floods the chain's inflated bounding box — clipped to ``bounds``
    (mesh extents in the plane) when given — from cells provably outside
    the region.  Cells the flood cannot reach, minus the chain itself,
    are the enclosed region.

    For a ``closed`` ring every non-chain cell on the clipped box
    perimeter is outside.  For a border-broken chain (``closed=False``)
    the region itself reaches the mesh border, so only the cells
    diagonally below-left of the initialization corner are trusted; when
    the corner hugs the mesh origin and none exist, the caller discards
    the section (the paper's discard semantics).
    """
    if not chain_cells:
        return set()
    us = [c[0] for c in chain_cells]
    vs = [c[1] for c in chain_cells]
    lo_u, hi_u = min(us) - 1, max(us) + 1
    lo_v, hi_v = min(vs) - 1, max(vs) + 1
    if bounds is not None:
        lo_u, hi_u = max(lo_u, 0), min(hi_u, bounds[0] - 1)
        lo_v, hi_v = max(lo_v, 0), min(hi_v, bounds[1] - 1)
    cu, cv = corner_uv
    seeds = [
        (u, v)
        for u, v in ((cu - 1, cv), (cu, cv - 1), (cu - 1, cv - 1))
        if lo_u <= u <= hi_u and lo_v <= v <= hi_v and (u, v) not in chain_cells
    ]
    if closed:
        for u in range(lo_u, hi_u + 1):
            for v in (lo_v, hi_v):
                if (u, v) not in chain_cells:
                    seeds.append((u, v))
        for v in range(lo_v, hi_v + 1):
            for u in (lo_u, hi_u):
                if (u, v) not in chain_cells:
                    seeds.append((u, v))
    if not seeds:
        return set()
    outside: set[tuple[int, int]] = set(seeds)
    stack = list(seeds)
    while stack:
        u, v = stack.pop()
        for du, dv in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nu, nv = u + du, v + dv
            if not (lo_u <= nu <= hi_u and lo_v <= nv <= hi_v):
                continue
            if (nu, nv) in outside or (nu, nv) in chain_cells:
                continue
            outside.add((nu, nv))
            stack.append((nu, nv))
    region: set[tuple[int, int]] = set()
    for u in range(lo_u, hi_u + 1):
        for v in range(lo_v, hi_v + 1):
            if (u, v) not in outside and (u, v) not in chain_cells:
                region.add((u, v))
    return region


def fill_enclosed(boundary_cells: set[tuple[int, int]]) -> set[tuple[int, int]]:
    """Cells of the region outlined by ``boundary_cells`` (2-D, plane frame).

    The identification messages see the region's *outer boundary cells*
    (the unsafe neighbors of ring nodes).  The full region is that
    boundary plus its enclosed interior, computed by flooding the
    bounding box from outside: anything unreachable without crossing the
    boundary belongs to the region.  Exact for 2-D MCCs (rectilinear
    monotone polygons have no safe holes).
    """
    if not boundary_cells:
        return set()
    us = [c[0] for c in boundary_cells]
    vs = [c[1] for c in boundary_cells]
    lo_u, hi_u = min(us) - 1, max(us) + 1
    lo_v, hi_v = min(vs) - 1, max(vs) + 1
    outside: set[tuple[int, int]] = set()
    stack = [(lo_u, lo_v)]
    seen = {(lo_u, lo_v)}
    while stack:
        u, v = stack.pop()
        outside.add((u, v))
        for du, dv in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nu, nv = u + du, v + dv
            if not (lo_u <= nu <= hi_u and lo_v <= nv <= hi_v):
                continue
            if (nu, nv) in seen or (nu, nv) in boundary_cells:
                continue
            seen.add((nu, nv))
            stack.append((nu, nv))
    region = set(boundary_cells)
    for u in range(lo_u, hi_u + 1):
        for v in range(lo_v, hi_v + 1):
            if (u, v) not in outside and (u, v) not in region:
                region.add((u, v))
    return region


def column_tops(cells: set[tuple[int, int]]) -> dict[int, int]:
    """Per-u max v of a plane region (forbidden-region encoding).

    ``(u, v)`` is in the region's negative-v shadow iff ``v < tops[u]``.
    """
    tops: dict[int, int] = {}
    for u, v in cells:
        tops[u] = max(tops.get(u, v), v)
    return tops


def column_bottoms(cells: set[tuple[int, int]]) -> dict[int, int]:
    """Per-u min v of a plane region (critical-region encoding).

    ``(u, v)`` is in the region's positive-v shadow iff ``v > bottoms[u]``.
    """
    bottoms: dict[int, int] = {}
    for u, v in cells:
        bottoms[u] = min(bottoms.get(u, v), v)
    return bottoms
