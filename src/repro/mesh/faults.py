"""Fault sets: which nodes of a mesh are faulty.

The paper treats link faults by disabling both endpoint nodes (Section
1), so the canonical representation is a boolean node mask.  Generators
for random fault patterns live in :mod:`repro.experiments.workloads`;
this module is the representation plus basic editing, kept separate so
the core model depends only on masks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.mesh.coords import Coord
from repro.mesh.regions import cells_of_mask, mask_of_cells
from repro.mesh.topology import Mesh


class FaultSet:
    """A mutable set of faulty nodes over a mesh."""

    def __init__(self, mesh: Mesh, faulty: Iterable[Sequence[int]] = ()):
        self.mesh = mesh
        self._mask = np.zeros(mesh.shape, dtype=bool)
        for coord in faulty:
            self.add(coord)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_mask(mesh: Mesh, mask: np.ndarray) -> "FaultSet":
        if mask.shape != mesh.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match mesh {mesh.shape}"
            )
        fs = FaultSet(mesh)
        fs._mask = mask.astype(bool).copy()
        return fs

    # -- editing -------------------------------------------------------------

    def add(self, coord: Sequence[int]) -> None:
        self._mask[self.mesh.require(coord, "faulty node")] = True

    def remove(self, coord: Sequence[int]) -> None:
        self._mask[self.mesh.require(coord, "faulty node")] = False

    def add_link_fault(self, a: Sequence[int], b: Sequence[int]) -> None:
        """Paper's convention: a faulty link disables both endpoints."""
        a = self.mesh.require(a, "link endpoint")
        b = self.mesh.require(b, "link endpoint")
        if b not in self.mesh.neighbors(a):
            raise ValueError(f"{a} and {b} are not connected by a mesh link")
        self._mask[a] = True
        self._mask[b] = True

    # -- queries ------------------------------------------------------------

    def is_faulty(self, coord: Sequence[int]) -> bool:
        return bool(self._mask[self.mesh.require(coord)])

    @property
    def mask(self) -> np.ndarray:
        """Boolean grid (read-only view) of faulty nodes."""
        view = self._mask.view()
        view.flags.writeable = False
        return view

    @property
    def count(self) -> int:
        return int(self._mask.sum())

    @property
    def rate(self) -> float:
        return self.count / self.mesh.size

    def cells(self) -> list[Coord]:
        return cells_of_mask(self._mask)

    def copy(self) -> "FaultSet":
        return FaultSet.from_mask(self.mesh, self._mask)

    def __contains__(self, coord) -> bool:
        return self.mesh.contains(coord) and bool(self._mask[tuple(coord)])

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"FaultSet({self.mesh!r}, count={self.count})"


def faults_from_cells(mesh: Mesh, cells: Sequence[Sequence[int]]) -> np.ndarray:
    """Convenience: boolean fault mask from a coordinate list."""
    for c in cells:
        mesh.require(c, "faulty node")
    return mask_of_cells(cells, mesh.shape)
