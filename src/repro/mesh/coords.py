"""Coordinate and direction primitives for n-dimensional meshes.

A *direction* is an (axis, sign) pair: ``Direction(0, +1)`` is the
paper's ``+X``, ``Direction(1, -1)`` is ``-Y``, ``Direction(2, +1)`` is
``+Z``.  Coordinates are plain tuples of ints so they hash cheaply and
can index numpy arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

Coord = tuple[int, ...]

_AXIS_NAMES = "XYZWVU"


@dataclass(frozen=True, order=True)
class Direction:
    """One of the 2n mesh directions: ``axis`` in [0, n), ``sign`` = ±1."""

    axis: int
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise ValueError(f"direction sign must be ±1, got {self.sign}")
        if self.axis < 0:
            raise ValueError(f"direction axis must be >= 0, got {self.axis}")

    @property
    def name(self) -> str:
        axis_name = (
            _AXIS_NAMES[self.axis] if self.axis < len(_AXIS_NAMES) else f"D{self.axis}"
        )
        return ("+" if self.sign > 0 else "-") + axis_name

    def flip(self) -> "Direction":
        """The opposite direction along the same axis."""
        return Direction(self.axis, -self.sign)

    def __repr__(self) -> str:
        return f"Direction({self.name})"


def all_directions(ndim: int) -> list[Direction]:
    """The 2·ndim directions, positive before negative per axis."""
    dirs = []
    for axis in range(ndim):
        dirs.append(Direction(axis, +1))
        dirs.append(Direction(axis, -1))
    return dirs


def positive_directions(ndim: int) -> list[Direction]:
    """The n *preferred* directions for the canonical (all-+) orientation."""
    return [Direction(axis, +1) for axis in range(ndim)]


def step(coord: Sequence[int], direction: Direction) -> Coord:
    """The neighbor of ``coord`` one hop along ``direction``.

    No bounds checking — callers that care use :meth:`Mesh.contains`.
    """
    out = list(coord)
    out[direction.axis] += direction.sign
    return tuple(out)


def opposite(direction: Direction) -> Direction:
    """Alias of :meth:`Direction.flip` for readability at call sites."""
    return direction.flip()


def manhattan(a: Sequence[int], b: Sequence[int]) -> int:
    """The paper's distance D(u, v) = sum of per-axis absolute deltas."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum(abs(x - y) for x, y in zip(a, b, strict=True))


def neighbors(coord: Sequence[int], shape: Sequence[int]) -> Iterator[Coord]:
    """In-mesh neighbors of ``coord`` for a mesh of the given ``shape``."""
    for axis, (c, k) in enumerate(zip(coord, shape, strict=True)):
        if c + 1 < k:
            yield step(coord, Direction(axis, +1))
        if c - 1 >= 0:
            yield step(coord, Direction(axis, -1))


def direction_between(a: Sequence[int], b: Sequence[int]) -> Direction:
    """The direction from ``a`` to its *neighbor* ``b``.

    Raises ``ValueError`` when the two coordinates are not mesh-adjacent.
    """
    diffs = [(axis, y - x) for axis, (x, y) in enumerate(zip(a, b, strict=True)) if x != y]
    if len(diffs) != 1 or abs(diffs[0][1]) != 1:
        raise ValueError(f"{tuple(a)} and {tuple(b)} are not mesh neighbors")
    axis, delta = diffs[0]
    return Direction(axis, 1 if delta > 0 else -1)


def is_monotone_path(path: Sequence[Sequence[int]]) -> bool:
    """True iff every hop of ``path`` moves by +1 along some axis.

    In the canonical orientation a *minimal* path from s to d (d
    component-wise >= s) is exactly a monotone path; this predicate backs
    the router's minimality assertions.
    """
    for a, b in zip(path, path[1:], strict=False):
        diffs = [y - x for x, y in zip(a, b, strict=True)]
        nonzero = [d for d in diffs if d != 0]
        if len(nonzero) != 1 or nonzero[0] != 1:
            return False
    return True
