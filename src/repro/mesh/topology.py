"""k-ary n-dimensional mesh topology.

Section 2 of the paper: a k-ary n-D mesh has k^n nodes, interior degree
2n, diameter (k-1)·n; nodes along each dimension form a linear array.
``Mesh`` supports per-axis extents (k need not be uniform) because the
experiments sweep rectangular meshes too.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.mesh.coords import Coord, Direction, all_directions, manhattan, step
from repro.util.validation import check_positive, check_shape_member


class Mesh:
    """An n-dimensional mesh with extents ``shape`` (one per axis)."""

    def __init__(self, shape: Sequence[int]):
        shape = tuple(int(k) for k in shape)
        if not shape:
            raise ValueError("mesh needs at least one dimension")
        for k in shape:
            check_positive("mesh extent", k)
        self.shape: tuple[int, ...] = shape
        self.ndim: int = len(shape)

    # -- basic queries ---------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes (k^n for the uniform case)."""
        return int(np.prod(self.shape))

    @property
    def diameter(self) -> int:
        """Network diameter: sum of (k_i - 1)."""
        return sum(k - 1 for k in self.shape)

    def contains(self, coord: Sequence[int]) -> bool:
        """True iff ``coord`` addresses a node of this mesh."""
        return len(coord) == self.ndim and all(
            0 <= c < k for c, k in zip(coord, self.shape, strict=True)
        )

    def require(self, coord: Sequence[int], name: str = "coord") -> Coord:
        """Validate and canonicalize a node address."""
        check_shape_member(name, coord, self.shape)
        return tuple(int(c) for c in coord)

    def degree(self, coord: Sequence[int]) -> int:
        """Number of in-mesh neighbors (2n interior, less at faces)."""
        coord = self.require(coord)
        return sum(
            (c + 1 < k) + (c - 1 >= 0) for c, k in zip(coord, self.shape, strict=True)
        )

    # -- iteration -------------------------------------------------------

    def nodes(self) -> Iterator[Coord]:
        """Iterate over all node addresses in C (row-major) order."""
        return itertools.product(*(range(k) for k in self.shape))

    def neighbors(self, coord: Sequence[int]) -> list[Coord]:
        """In-mesh neighbors of ``coord``."""
        coord = self.require(coord)
        out = []
        for direction in all_directions(self.ndim):
            nxt = step(coord, direction)
            if self.contains(nxt):
                out.append(nxt)
        return out

    def neighbor(self, coord: Sequence[int], direction: Direction) -> Coord | None:
        """The neighbor along ``direction``, or None at a mesh face."""
        coord = self.require(coord)
        nxt = step(coord, direction)
        return nxt if self.contains(nxt) else None

    # -- index <-> coordinate --------------------------------------------

    def index_of(self, coord: Sequence[int]) -> int:
        """Row-major flat index of a node (used by the DES for node ids)."""
        coord = self.require(coord)
        return int(np.ravel_multi_index(coord, self.shape))

    def coord_of(self, index: int) -> Coord:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.size:
            raise IndexError(f"node index {index} out of range [0, {self.size})")
        return tuple(int(c) for c in np.unravel_index(index, self.shape))

    # -- arrays ----------------------------------------------------------

    def zeros(self, dtype=np.int8) -> np.ndarray:
        """A node-indexed array of zeros with this mesh's shape."""
        return np.zeros(self.shape, dtype=dtype)

    def full(self, value, dtype=None) -> np.ndarray:
        """A node-indexed array filled with ``value``."""
        return np.full(self.shape, value, dtype=dtype)

    # -- misc --------------------------------------------------------------

    def distance(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Manhattan distance D(a, b) between two nodes."""
        return manhattan(self.require(a, "a"), self.require(b, "b"))

    def __eq__(self, other) -> bool:
        return isinstance(other, Mesh) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash(("Mesh", self.shape))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape})"


class Mesh2D(Mesh):
    """Convenience 2-D mesh: ``Mesh2D(kx, ky)``."""

    def __init__(self, kx: int, ky: int | None = None):
        super().__init__((kx, ky if ky is not None else kx))


class Mesh3D(Mesh):
    """Convenience 3-D mesh: ``Mesh3D(kx, ky, kz)``."""

    def __init__(self, kx: int, ky: int | None = None, kz: int | None = None):
        if (ky is None) != (kz is None):
            raise ValueError("give either one extent (cubic) or all three")
        if ky is None:
            ky = kz = kx
        super().__init__((kx, ky, kz))
