"""Mesh-topology substrate: k-ary n-D meshes, directions, regions, faults.

The paper's networks are 2-D and 3-D meshes (Section 2): nodes addressed
by integer coordinates, two nodes adjacent iff their addresses differ by
one in exactly one dimension.  This package provides the topology, the
direction/orientation algebra used by the direction-class-relative MCC
model, axis-aligned region primitives, and fault-set handling.
"""

from repro.mesh.coords import (
    Direction,
    manhattan,
    neighbors,
    opposite,
    step,
)
from repro.mesh.topology import Mesh, Mesh2D, Mesh3D
from repro.mesh.orientation import Orientation
from repro.mesh.regions import Box
from repro.mesh.faults import FaultSet

__all__ = [
    "Direction",
    "manhattan",
    "neighbors",
    "opposite",
    "step",
    "Mesh",
    "Mesh2D",
    "Mesh3D",
    "Orientation",
    "Box",
    "FaultSet",
]
