"""Axis-aligned region primitives: boxes and node-set masks.

``Box`` is the closed integer box [lo, hi] per axis — the shape of the
paper's RMP (region of minimal paths), of rectangular faulty blocks, and
of the segments/surfaces in Theorems 1 and 2 (the notation
``[0:xd, yd:yd, 0:zd]`` is exactly a degenerate Box).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.mesh.coords import Coord


@dataclass(frozen=True)
class Box:
    """Closed integer box: lo[i] <= x[i] <= hi[i] on every axis."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimension")
        for lo, hi in zip(self.lo, self.hi, strict=True):
            if lo > hi:
                raise ValueError(f"empty box: lo {self.lo} > hi {self.hi}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def spanning(a: Sequence[int], b: Sequence[int]) -> "Box":
        """Smallest box containing both points (the RMP of a routing)."""
        lo = tuple(min(x, y) for x, y in zip(a, b, strict=True))
        hi = tuple(max(x, y) for x, y in zip(a, b, strict=True))
        return Box(lo, hi)

    @staticmethod
    def of_cells(cells: Sequence[Sequence[int]]) -> "Box":
        """Bounding box of a non-empty cell collection."""
        arr = np.asarray(list(cells), dtype=np.int64)
        if arr.size == 0:
            raise ValueError("bounding box of an empty cell set")
        return Box(tuple(arr.min(axis=0).tolist()), tuple(arr.max(axis=0).tolist()))

    # -- queries ------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def extents(self) -> tuple[int, ...]:
        """Number of lattice points per axis."""
        return tuple(hi - lo + 1 for lo, hi in zip(self.lo, self.hi, strict=True))

    @property
    def volume(self) -> int:
        """Number of lattice points inside the box."""
        return int(np.prod(self.extents))

    def contains(self, coord: Sequence[int]) -> bool:
        return len(coord) == self.ndim and all(
            lo <= c <= hi for c, lo, hi in zip(coord, self.lo, self.hi, strict=True)
        )

    def contains_box(self, other: "Box") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi, strict=True)
        )

    def intersects(self, other: "Box") -> bool:
        return all(
            max(sl, ol) <= min(sh, oh)
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi, strict=True)
        )

    def intersection(self, other: "Box") -> "Box | None":
        lo = tuple(max(sl, ol) for sl, ol in zip(self.lo, other.lo, strict=True))
        hi = tuple(min(sh, oh) for sh, oh in zip(self.hi, other.hi, strict=True))
        if any(a > b for a, b in zip(lo, hi, strict=True)):
            return None
        return Box(lo, hi)

    def union_box(self, other: "Box") -> "Box":
        """Smallest box containing both (used by RFB merging)."""
        lo = tuple(min(sl, ol) for sl, ol in zip(self.lo, other.lo, strict=True))
        hi = tuple(max(sh, oh) for sh, oh in zip(self.hi, other.hi, strict=True))
        return Box(lo, hi)

    def inflate(self, margin: int) -> "Box":
        """Grow by ``margin`` on every side (adjacency tests)."""
        return Box(
            tuple(lo - margin for lo in self.lo),
            tuple(h + margin for h in self.hi),
        )

    def clip(self, shape: Sequence[int]) -> "Box | None":
        """Intersect with the mesh (``[0, k-1]`` per axis)."""
        mesh_box = Box((0,) * len(shape), tuple(k - 1 for k in shape))
        return self.intersection(mesh_box)

    # -- iteration / masks ---------------------------------------------------

    def cells(self) -> Iterator[Coord]:
        """Iterate all lattice points (row-major)."""
        return itertools.product(
            *(range(lo, hi + 1) for lo, hi in zip(self.lo, self.hi, strict=True))
        )

    def slices(self) -> tuple[slice, ...]:
        """Numpy basic-indexing slices selecting the box in a grid."""
        return tuple(slice(lo, hi + 1) for lo, hi in zip(self.lo, self.hi, strict=True))

    def mask(self, shape: Sequence[int]) -> np.ndarray:
        """Boolean grid of ``shape`` that is True inside (clipped) box."""
        out = np.zeros(tuple(shape), dtype=bool)
        clipped = self.clip(shape)
        if clipped is not None:
            out[clipped.slices()] = True
        return out

    def __repr__(self) -> str:
        spans = ", ".join(f"{lo}:{hi}" for lo, hi in zip(self.lo, self.hi, strict=True))
        return f"Box[{spans}]"


def mask_of_cells(cells: Sequence[Sequence[int]], shape: Sequence[int]) -> np.ndarray:
    """Boolean grid with True exactly at ``cells``."""
    out = np.zeros(tuple(shape), dtype=bool)
    if len(cells):
        arr = np.asarray(list(cells), dtype=np.int64)
        out[tuple(arr.T)] = True
    return out


def cells_of_mask(mask: np.ndarray) -> list[Coord]:
    """Sorted list of coordinates where ``mask`` is True."""
    return [tuple(int(c) for c in row) for row in np.argwhere(mask)]
