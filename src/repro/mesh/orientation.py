"""Direction-class (quadrant/octant) orientation algebra.

The MCC labelling (Algorithms 1 and 4) is written for routings whose
destination lies in the all-positive quadrant/octant relative to the
source.  For any other source/destination pair the same machinery applies
after reflecting the mesh along the axes where the destination lies on
the negative side.  ``Orientation`` encapsulates those reflections:

* ``to_canonical(grid)``  — a *view* (numpy flip, zero-copy) of a
  node-indexed array such that the routing direction becomes all-+.
* ``from_canonical(grid)``— the inverse view.
* coordinate mappings for points.

There are 2^n orientations in an n-D mesh (4 quadrant classes in 2-D,
8 octant classes in 3-D), exactly the paper's direction classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mesh.coords import Coord


@dataclass(frozen=True)
class Orientation:
    """Reflection signs per axis: +1 keeps an axis, -1 flips it."""

    signs: tuple[int, ...]
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.signs) != len(self.shape):
            raise ValueError("signs and shape must have equal length")
        for s in self.signs:
            if s not in (-1, 1):
                raise ValueError(f"orientation signs must be ±1, got {s}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def identity(shape: Sequence[int]) -> "Orientation":
        return Orientation((1,) * len(shape), tuple(shape))

    @staticmethod
    def for_pair(
        source: Sequence[int], dest: Sequence[int], shape: Sequence[int]
    ) -> "Orientation":
        """Orientation that maps ``source -> dest`` into the all-+ class.

        Axes where ``dest`` and ``source`` coincide default to +1 (the
        degenerate axis never needs a move, so either class works; the
        labelling for the + class is conservative there).
        """
        signs = tuple(
            -1 if d < s else 1 for s, d in zip(source, dest, strict=True)
        )
        return Orientation(signs, tuple(shape))

    @staticmethod
    def all_classes(shape: Sequence[int]) -> list["Orientation"]:
        """All 2^n direction classes for a mesh of ``shape``."""
        n = len(shape)
        out = []
        for mask in range(2**n):
            signs = tuple(-1 if (mask >> a) & 1 else 1 for a in range(n))
            out.append(Orientation(signs, tuple(shape)))
        return out

    # -- grid views --------------------------------------------------------

    def _flip_axes(self) -> tuple[int, ...]:
        return tuple(a for a, s in enumerate(self.signs) if s < 0)

    def to_canonical(self, grid: np.ndarray) -> np.ndarray:
        """View of ``grid`` with flipped axes so routing heads all-+."""
        if grid.shape[: len(self.shape)] != self.shape:
            raise ValueError(
                f"grid shape {grid.shape} does not match mesh shape {self.shape}"
            )
        axes = self._flip_axes()
        return np.flip(grid, axis=axes) if axes else grid

    def from_canonical(self, grid: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_canonical` (flips are involutions)."""
        return self.to_canonical(grid)

    # -- point mappings ------------------------------------------------------

    def map_coord(self, coord: Sequence[int]) -> Coord:
        """Map a mesh coordinate into canonical-frame coordinates."""
        return tuple(
            (k - 1 - c) if s < 0 else c
            for c, s, k in zip(coord, self.signs, self.shape, strict=True)
        )

    def unmap_coord(self, coord: Sequence[int]) -> Coord:
        """Map a canonical-frame coordinate back to the mesh frame."""
        return self.map_coord(coord)  # involution

    @property
    def is_identity(self) -> bool:
        return all(s == 1 for s in self.signs)

    def __repr__(self) -> str:
        pretty = "".join("+" if s > 0 else "-" for s in self.signs)
        return f"Orientation({pretty})"
