"""Baseline fault models and routers the paper compares against.

* :mod:`repro.baselines.rfb` — the rectangular faulty block model
  (orthogonal convex fault regions; Wu [8], Boppana–Chalasani style),
  the "best existing known result" in the paper's evaluation.
* :mod:`repro.baselines.ecube` — deterministic dimension-order minimal
  routing (no fault tolerance).
* :mod:`repro.baselines.greedy` — adaptive minimal routing with only
  local faulty-neighbor knowledge (no fault-information model).
"""

from repro.baselines.rfb import rfb_blocks, rfb_labelled, rfb_unsafe
from repro.baselines.ecube import ecube_path, ecube_succeeds
from repro.baselines.greedy import greedy_route

__all__ = [
    "rfb_blocks",
    "rfb_labelled",
    "rfb_unsafe",
    "ecube_path",
    "ecube_succeeds",
    "greedy_route",
]
