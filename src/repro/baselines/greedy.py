"""Blind adaptive minimal routing: local faulty-neighbor knowledge only.

At every hop the router takes any preferred (distance-reducing)
direction whose neighbor is non-faulty.  Without a fault-information
model it can walk into dead ends the MCC labelling would have flagged,
failing even when a minimal path exists — quantifying the value of the
paper's limited-global-information model (experiment T2/A2).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.mesh.coords import Coord


def greedy_route(
    fault_mask: np.ndarray,
    source: Sequence[int],
    dest: Sequence[int],
    choose: Callable[[list[int], tuple[int, ...], tuple[int, ...]], int] | None = None,
) -> tuple[bool, list[Coord]]:
    """Route minimally with no fault model; returns (delivered, path).

    ``choose(axes, pos, dest)`` picks among candidate axes (defaults to
    the lowest axis).  The walk is minimal by construction: every hop
    moves toward ``dest``; it fails where all preferred neighbors are
    faulty.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    pos = tuple(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    if fault_mask[pos] or fault_mask[dest]:
        raise ValueError("greedy routing requires non-faulty endpoints")
    path = [pos]
    while pos != dest:
        candidates = []
        for axis in range(len(pos)):
            if pos[axis] == dest[axis]:
                continue
            sign = 1 if dest[axis] > pos[axis] else -1
            nxt = list(pos)
            nxt[axis] += sign
            if not fault_mask[tuple(nxt)]:
                candidates.append(axis)
        if not candidates:
            return False, path
        axis = choose(candidates, pos, dest) if choose else candidates[0]
        if axis not in candidates:
            raise ValueError(f"choose() returned non-candidate axis {axis}")
        sign = 1 if dest[axis] > pos[axis] else -1
        nxt = list(pos)
        nxt[axis] += sign
        pos = tuple(nxt)
        path.append(pos)
    return True, path
