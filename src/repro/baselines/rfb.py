"""The rectangular faulty block (RFB) model — the paper's baseline.

The conventional fault region (Wu [8]; Boppana & Chalasani; Su & Shin):

1. *Local closure*: a non-faulty node becomes unsafe when it has
   faulty/unsafe neighbors along at least two **different dimensions**
   (either sign).  Iterate to a fixed point — this glues diagonal fault
   clusters exactly like the classic node-labelling schemes.
2. *Block formation*: each connected unsafe component is expanded to its
   bounding rectangle (2-D) / cuboid (3-D).
3. *Block merging*: overlapping or face/corner-adjacent blocks merge
   into their joint bounding box, repeated until all blocks are
   pairwise disjoint and separated — the standard "disjoint rectangular
   faulty blocks" the literature assumes.

Compared with the MCC model, RFB regions swallow many more non-faulty
nodes (the whole point of the paper; experiment T1) and consequently
declare fewer source/destination pairs minimally routable (T2).

``variant="local"`` skips steps 2–3 for the ablation A1.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.core.labelling import FAULTY, LabelledGrid, SAFE, USELESS
from repro.mesh.orientation import Orientation
from repro.mesh.regions import Box


def _local_closure(fault_mask: np.ndarray) -> np.ndarray:
    """Fixed point of the two-different-dimensions rule; includes faults."""
    blocked = fault_mask.copy()
    ndim = fault_mask.ndim
    while True:
        axes_hit = np.zeros(fault_mask.shape, dtype=np.int8)
        for axis in range(ndim):
            along = np.zeros(fault_mask.shape, dtype=bool)
            src_hi = [slice(None)] * ndim
            dst_hi = [slice(None)] * ndim
            src_hi[axis] = slice(1, None)
            dst_hi[axis] = slice(None, -1)
            along[tuple(dst_hi)] |= blocked[tuple(src_hi)]
            src_lo = [slice(None)] * ndim
            dst_lo = [slice(None)] * ndim
            src_lo[axis] = slice(None, -1)
            dst_lo[axis] = slice(1, None)
            along[tuple(dst_lo)] |= blocked[tuple(src_lo)]
            axes_hit += along
        new_blocked = blocked | (axes_hit >= 2)
        if np.array_equal(new_blocked, blocked):
            return blocked
        blocked = new_blocked


def _merge_boxes(boxes: list[Box]) -> list[Box]:
    """Merge boxes that overlap or touch (including diagonally)."""
    boxes = list(boxes)
    changed = True
    while changed:
        changed = False
        out: list[Box] = []
        while boxes:
            box = boxes.pop()
            merged = False
            for i, other in enumerate(out):
                if box.inflate(1).intersects(other):
                    out[i] = other.union_box(box)
                    merged = True
                    changed = True
                    break
            if not merged:
                out.append(box)
        boxes = out
    return boxes


def rfb_blocks(fault_mask: np.ndarray) -> list[Box]:
    """The disjoint rectangular faulty blocks of a fault pattern."""
    fault_mask = np.asarray(fault_mask, dtype=bool)
    blocked = _local_closure(fault_mask)
    structure = ndimage.generate_binary_structure(fault_mask.ndim, 1)
    labels, count = ndimage.label(blocked, structure=structure)
    boxes = []
    for slc in ndimage.find_objects(labels):
        lo = tuple(s.start for s in slc)
        hi = tuple(s.stop - 1 for s in slc)
        boxes.append(Box(lo, hi))
    return _merge_boxes(boxes)


def rfb_unsafe(fault_mask: np.ndarray, variant: str = "block") -> np.ndarray:
    """Boolean mask of all nodes inside rectangular faulty blocks.

    ``variant="block"`` is the canonical model; ``variant="local"`` stops
    after the local closure (ablation A1).
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    if variant == "local":
        return _local_closure(fault_mask)
    if variant != "block":
        raise ValueError(f"unknown RFB variant {variant!r}")
    out = np.zeros(fault_mask.shape, dtype=bool)
    for box in rfb_blocks(fault_mask):
        clipped = box.clip(fault_mask.shape)
        if clipped is not None:
            out[clipped.slices()] = True
    return out


class DynamicRFBState:
    """Incrementally maintained RFB region over a mutating fault mask.

    The online counterpart of :func:`rfb_unsafe` (the baseline analog of
    the MCC model's :class:`repro.online.dynamic_model.DynamicFaultModel`):
    ``unsafe``/``open``/``status`` are mesh-frame arrays mutated **in
    place**, so router-side model state may alias them (per direction
    class via orientation views — RFB regions are direction-independent,
    which is itself an 8x saving over the cold per-class labeller).

    :meth:`apply` is a **block-local recompute**: only the blocks an
    event can influence are rebuilt.  The local closure provably stays inside
    the bounding box of its generating faults, and two block sets only
    interact when within Chebyshev distance 1 of each other (the merge
    rule), so the recompute region starts at the event's bounding box,
    transitively swallows every existing block within distance 1, and is
    recomputed as a cropped sub-problem with the outside frozen.  If the
    fresh blocks end up within distance 1 of a frozen outside block, the
    region grows and the crop is redone — byte-identity with a
    from-scratch :func:`rfb_unsafe` of the current mask is
    property-tested in ``tests/test_rfb.py``.
    """

    #: Region fraction of the mesh above which a from-scratch recompute
    #: is simpler than the cropped one (same asymptotics at that size).
    FULL_RECOMPUTE_FRACTION = 0.5

    def __init__(self, fault_mask: np.ndarray):
        self.fault_mask = fault_mask  # live alias; owner mutates in place
        self.shape = tuple(fault_mask.shape)
        self.unsafe = rfb_unsafe(fault_mask)
        self.open = ~self.unsafe
        self.status = np.zeros(self.shape, dtype=np.int8)
        self.blocks = rfb_blocks(fault_mask)
        self._refresh_box(Box((0,) * len(self.shape), tuple(k - 1 for k in self.shape)))

    def _refresh_box(self, box: Box) -> None:
        sl = box.slices()
        faults = self.fault_mask[sl]
        status = self.status[sl]
        status[...] = SAFE
        status[self.unsafe[sl] & ~faults] = USELESS
        status[faults] = FAULTY
        self.open[sl] = ~self.unsafe[sl]

    def rebuild(self) -> None:
        """From-scratch recompute, in place (fallback path)."""
        self.unsafe[...] = rfb_unsafe(self.fault_mask)
        self.blocks = rfb_blocks(self.fault_mask)
        self._refresh_box(Box((0,) * len(self.shape), tuple(k - 1 for k in self.shape)))

    def apply(self, cells, kind: str) -> tuple[Box | None, int, bool]:
        """Recompute after ``cells`` changed state (mask already mutated).

        Returns ``(dirty, swept, full)``: the bounding box of the cells
        whose *unsafe* status changed (``None`` when the region is
        unchanged — e.g. faults appearing inside an existing block), the
        number of cells swept by the recompute, and whether the
        full-recompute fallback ran.
        """
        cells = [tuple(int(v) for v in c) for c in cells]
        if kind == "inject" and all(self.unsafe[c] for c in cells):
            # New faults strictly inside existing blocks: the closure
            # and the block set are unchanged, only the status colors.
            for c in cells:
                self.status[c] = FAULTY
            return None, 0, False
        mesh_cells = self.fault_mask.size
        region = Box.of_cells(cells)
        # Swallow every existing block the event region can interact
        # with (merge radius 1), transitively.
        pending = list(self.blocks)
        grew = True
        while grew:
            grew = False
            still_out = []
            for b in pending:
                if b.inflate(1).intersects(region):
                    region = region.union_box(b)
                    grew = True
                else:
                    still_out.append(b)
            pending = still_out
        outside = pending
        while True:
            if region.volume > self.FULL_RECOMPUTE_FRACTION * mesh_cells:
                old = self.unsafe.copy()
                self.rebuild()
                changed = np.argwhere(old != self.unsafe)
                dirty = (
                    Box.of_cells(changed) if len(changed) else None
                )
                return dirty, 2 * mesh_cells, True
            sl = region.slices()
            local_blocks = [
                Box(
                    tuple(a + o for a, o in zip(b.lo, region.lo, strict=True)),
                    tuple(a + o for a, o in zip(b.hi, region.lo, strict=True)),
                )
                for b in rfb_blocks(self.fault_mask[sl])
            ]
            offenders = [
                b
                for b in outside
                if any(nb.inflate(1).intersects(b) for nb in local_blocks)
            ]
            if not offenders:
                break
            for b in offenders:
                region = region.union_box(b)
            outside = [b for b in outside if b not in offenders]
        old_sub = self.unsafe[sl].copy()
        new_sub = np.zeros_like(old_sub)
        for b in local_blocks:
            new_sub[
                tuple(
                    slice(a - o, c - o + 1)
                    for a, c, o in zip(b.lo, b.hi, region.lo, strict=True)
                )
            ] = True
        self.unsafe[sl] = new_sub
        self.blocks = outside + local_blocks
        self._refresh_box(region)
        changed = np.argwhere(old_sub != new_sub)
        dirty = None
        if len(changed):
            lo = tuple(int(v) + o for v, o in zip(changed.min(axis=0), region.lo, strict=True))
            hi = tuple(int(v) + o for v, o in zip(changed.max(axis=0), region.lo, strict=True))
            dirty = Box(lo, hi)
        return dirty, region.volume, False


def rfb_labelled(
    fault_mask: np.ndarray,
    orientation: Orientation | None = None,
    variant: str = "block",
) -> LabelledGrid:
    """Present the RFB region as a :class:`LabelledGrid`.

    Non-faulty block members get status USELESS so the whole MCC
    machinery (components, shadows, walls, conditions, router records)
    runs unchanged on the baseline model — only the regions differ.
    RFB regions are direction-independent, but the grid is still mapped
    into the requested orientation for frame consistency.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    if orientation is None:
        orientation = Orientation.identity(fault_mask.shape)
    unsafe = rfb_unsafe(fault_mask, variant=variant)
    status = np.zeros(fault_mask.shape, dtype=np.int8)
    status[unsafe] = USELESS
    status[fault_mask] = FAULTY
    return LabelledGrid(
        status=orientation.to_canonical(status).copy(), orientation=orientation
    )
