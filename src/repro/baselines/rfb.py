"""The rectangular faulty block (RFB) model — the paper's baseline.

The conventional fault region (Wu [8]; Boppana & Chalasani; Su & Shin):

1. *Local closure*: a non-faulty node becomes unsafe when it has
   faulty/unsafe neighbors along at least two **different dimensions**
   (either sign).  Iterate to a fixed point — this glues diagonal fault
   clusters exactly like the classic node-labelling schemes.
2. *Block formation*: each connected unsafe component is expanded to its
   bounding rectangle (2-D) / cuboid (3-D).
3. *Block merging*: overlapping or face/corner-adjacent blocks merge
   into their joint bounding box, repeated until all blocks are
   pairwise disjoint and separated — the standard "disjoint rectangular
   faulty blocks" the literature assumes.

Compared with the MCC model, RFB regions swallow many more non-faulty
nodes (the whole point of the paper; experiment T1) and consequently
declare fewer source/destination pairs minimally routable (T2).

``variant="local"`` skips steps 2–3 for the ablation A1.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.core.labelling import FAULTY, LabelledGrid, USELESS
from repro.mesh.orientation import Orientation
from repro.mesh.regions import Box


def _local_closure(fault_mask: np.ndarray) -> np.ndarray:
    """Fixed point of the two-different-dimensions rule; includes faults."""
    blocked = fault_mask.copy()
    ndim = fault_mask.ndim
    while True:
        axes_hit = np.zeros(fault_mask.shape, dtype=np.int8)
        for axis in range(ndim):
            along = np.zeros(fault_mask.shape, dtype=bool)
            src_hi = [slice(None)] * ndim
            dst_hi = [slice(None)] * ndim
            src_hi[axis] = slice(1, None)
            dst_hi[axis] = slice(None, -1)
            along[tuple(dst_hi)] |= blocked[tuple(src_hi)]
            src_lo = [slice(None)] * ndim
            dst_lo = [slice(None)] * ndim
            src_lo[axis] = slice(None, -1)
            dst_lo[axis] = slice(1, None)
            along[tuple(dst_lo)] |= blocked[tuple(src_lo)]
            axes_hit += along
        new_blocked = blocked | (axes_hit >= 2)
        if np.array_equal(new_blocked, blocked):
            return blocked
        blocked = new_blocked


def _merge_boxes(boxes: list[Box]) -> list[Box]:
    """Merge boxes that overlap or touch (including diagonally)."""
    boxes = list(boxes)
    changed = True
    while changed:
        changed = False
        out: list[Box] = []
        while boxes:
            box = boxes.pop()
            merged = False
            for i, other in enumerate(out):
                if box.inflate(1).intersects(other):
                    out[i] = other.union_box(box)
                    merged = True
                    changed = True
                    break
            if not merged:
                out.append(box)
        boxes = out
    return boxes


def rfb_blocks(fault_mask: np.ndarray) -> list[Box]:
    """The disjoint rectangular faulty blocks of a fault pattern."""
    fault_mask = np.asarray(fault_mask, dtype=bool)
    blocked = _local_closure(fault_mask)
    structure = ndimage.generate_binary_structure(fault_mask.ndim, 1)
    labels, count = ndimage.label(blocked, structure=structure)
    boxes = []
    for slc in ndimage.find_objects(labels):
        lo = tuple(s.start for s in slc)
        hi = tuple(s.stop - 1 for s in slc)
        boxes.append(Box(lo, hi))
    return _merge_boxes(boxes)


def rfb_unsafe(fault_mask: np.ndarray, variant: str = "block") -> np.ndarray:
    """Boolean mask of all nodes inside rectangular faulty blocks.

    ``variant="block"`` is the canonical model; ``variant="local"`` stops
    after the local closure (ablation A1).
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    if variant == "local":
        return _local_closure(fault_mask)
    if variant != "block":
        raise ValueError(f"unknown RFB variant {variant!r}")
    out = np.zeros(fault_mask.shape, dtype=bool)
    for box in rfb_blocks(fault_mask):
        clipped = box.clip(fault_mask.shape)
        if clipped is not None:
            out[clipped.slices()] = True
    return out


def rfb_labelled(
    fault_mask: np.ndarray,
    orientation: Orientation | None = None,
    variant: str = "block",
) -> LabelledGrid:
    """Present the RFB region as a :class:`LabelledGrid`.

    Non-faulty block members get status USELESS so the whole MCC
    machinery (components, shadows, walls, conditions, router records)
    runs unchanged on the baseline model — only the regions differ.
    RFB regions are direction-independent, but the grid is still mapped
    into the requested orientation for frame consistency.
    """
    fault_mask = np.asarray(fault_mask, dtype=bool)
    if orientation is None:
        orientation = Orientation.identity(fault_mask.shape)
    unsafe = rfb_unsafe(fault_mask, variant=variant)
    status = np.zeros(fault_mask.shape, dtype=np.int8)
    status[unsafe] = USELESS
    status[fault_mask] = FAULTY
    return LabelledGrid(
        status=orientation.to_canonical(status).copy(), orientation=orientation
    )
