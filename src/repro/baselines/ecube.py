"""Deterministic dimension-order (e-cube) minimal routing.

The classic deadlock-free minimal routing in meshes: correct all of X,
then all of Y, then all of Z.  It has no fault tolerance — any faulty
node on its unique path kills the routing — which makes it the natural
lower-bound baseline for the success-rate experiments (T2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.coords import Coord


def ecube_path(source: Sequence[int], dest: Sequence[int]) -> list[Coord]:
    """The unique dimension-order path from ``source`` to ``dest``."""
    pos = list(int(c) for c in source)
    dest = tuple(int(c) for c in dest)
    path: list[Coord] = [tuple(pos)]
    for axis in range(len(pos)):
        step = 1 if dest[axis] > pos[axis] else -1
        while pos[axis] != dest[axis]:
            pos[axis] += step
            path.append(tuple(pos))
    return path


def ecube_succeeds(
    fault_mask: np.ndarray, source: Sequence[int], dest: Sequence[int]
) -> bool:
    """True iff the e-cube path avoids every faulty node."""
    fault_mask = np.asarray(fault_mask, dtype=bool)
    return not any(fault_mask[tuple(node)] for node in ecube_path(source, dest))
