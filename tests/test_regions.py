"""Unit tests for Box and mask helpers."""

import numpy as np
import pytest

from repro.mesh.regions import Box, cells_of_mask, mask_of_cells


class TestBoxBasics:
    def test_spanning_is_rmp(self):
        box = Box.spanning((3, 7, 2), (5, 1, 2))
        assert box.lo == (3, 1, 2)
        assert box.hi == (5, 7, 2)
        assert box.volume == 3 * 7 * 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Box((2, 0), (1, 5))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1, 1))

    def test_contains(self):
        box = Box((1, 1), (3, 3))
        assert box.contains((1, 3)) and box.contains((2, 2))
        assert not box.contains((0, 2))
        assert not box.contains((2,))

    def test_of_cells(self):
        box = Box.of_cells([(5, 2), (1, 8), (3, 3)])
        assert box == Box((1, 2), (5, 8))
        with pytest.raises(ValueError):
            Box.of_cells([])

    def test_degenerate_segment_notation(self):
        # The paper's [0:xd, yd:yd] segments are degenerate boxes.
        seg = Box((0, 7), (5, 7))
        assert seg.volume == 6
        assert seg.contains((3, 7)) and not seg.contains((3, 6))


class TestBoxAlgebra:
    def test_intersection(self):
        a = Box((0, 0), (4, 4))
        b = Box((3, 2), (6, 6))
        assert a.intersection(b) == Box((3, 2), (4, 4))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Box((0, 0), (1, 1))
        b = Box((3, 3), (4, 4))
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_adjacent_detected_by_inflate(self):
        a = Box((0, 0), (1, 1))
        b = Box((2, 0), (3, 1))
        assert not a.intersects(b)
        assert a.inflate(1).intersects(b)

    def test_union_box(self):
        a = Box((0, 0), (1, 1))
        b = Box((3, 3), (4, 4))
        assert a.union_box(b) == Box((0, 0), (4, 4))

    def test_contains_box(self):
        assert Box((0, 0), (5, 5)).contains_box(Box((1, 1), (4, 4)))
        assert not Box((1, 1), (4, 4)).contains_box(Box((0, 0), (5, 5)))

    def test_clip(self):
        box = Box((-2, 5), (3, 12))
        assert box.clip((10, 10)) == Box((0, 5), (3, 9))
        assert Box((-5, -5), (-1, -1)).clip((10, 10)) is None


class TestMasksAndIteration:
    def test_mask(self):
        box = Box((1, 1), (2, 2))
        mask = box.mask((4, 4))
        assert mask.sum() == 4
        assert mask[1, 1] and mask[2, 2] and not mask[0, 0]

    def test_mask_clips_out_of_range(self):
        mask = Box((8, 8), (12, 12)).mask((10, 10))
        assert mask.sum() == 4

    def test_cells_iteration(self):
        cells = list(Box((0, 0), (1, 2)).cells())
        assert len(cells) == 6
        assert (1, 2) in cells

    def test_slices_roundtrip(self):
        grid = np.zeros((5, 5), dtype=int)
        grid[Box((1, 2), (3, 4)).slices()] = 1
        assert grid.sum() == 9

    def test_mask_of_cells_roundtrip(self):
        cells = [(0, 1), (3, 2), (4, 4)]
        mask = mask_of_cells(cells, (5, 5))
        assert sorted(cells_of_mask(mask)) == sorted(cells)

    def test_mask_of_no_cells(self):
        assert mask_of_cells([], (3, 3)).sum() == 0
