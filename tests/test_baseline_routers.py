"""Tests for e-cube and blind-greedy baseline routers."""

import numpy as np
import pytest

from repro.baselines.ecube import ecube_path, ecube_succeeds
from repro.baselines.greedy import greedy_route
from repro.mesh.coords import is_monotone_path, manhattan
from repro.mesh.regions import mask_of_cells


class TestEcube:
    def test_path_is_dimension_order(self):
        path = ecube_path((0, 0, 0), (2, 1, 1))
        assert path[0] == (0, 0, 0) and path[-1] == (2, 1, 1)
        assert path[1] == (1, 0, 0) and path[2] == (2, 0, 0)
        assert len(path) == manhattan((0, 0, 0), (2, 1, 1)) + 1

    def test_handles_negative_directions(self):
        path = ecube_path((3, 3), (1, 0))
        assert path[-1] == (1, 0)
        assert len(path) == 6

    def test_succeeds_iff_path_clear(self):
        mask = mask_of_cells([(1, 0)], (4, 4))
        assert not ecube_succeeds(mask, (0, 0), (3, 0))
        assert ecube_succeeds(mask, (0, 1), (3, 1))

    def test_fault_on_turn_corner(self):
        mask = mask_of_cells([(3, 0)], (4, 4))
        assert not ecube_succeeds(mask, (0, 0), (3, 3))

    def test_no_faults_always_succeeds(self, rng):
        mask = np.zeros((6, 6), dtype=bool)
        for _ in range(10):
            s = tuple(int(v) for v in rng.integers(0, 6, 2))
            d = tuple(int(v) for v in rng.integers(0, 6, 2))
            assert ecube_succeeds(mask, s, d)


class TestGreedy:
    def test_delivers_on_clear_mesh(self):
        ok, path = greedy_route(np.zeros((5, 5), dtype=bool), (0, 0), (4, 4))
        assert ok
        assert len(path) - 1 == 8
        assert is_monotone_path(path)

    def test_routes_around_single_fault(self):
        mask = mask_of_cells([(1, 0)], (5, 5))
        ok, path = greedy_route(mask, (0, 0), (4, 4))
        assert ok and len(path) - 1 == 8

    def test_fails_in_dead_end(self):
        # Both preferred neighbors blocked at (2,2).
        mask = mask_of_cells([(3, 2), (2, 3)], (6, 6))
        ok, path = greedy_route(mask, (0, 0), (5, 5))
        # default lowest-axis-first: walks +X to (2,0)? axis0 first all
        # the way: (0,0)->(1,0)->(2,0)->(3,0)... passes below the trap.
        assert ok  # x-first avoids this particular trap
        mask2 = mask_of_cells([(4, 0), (3, 1), (2, 2)], (6, 6))
        ok2, path2 = greedy_route(mask2, (0, 0), (5, 5))
        assert not ok2
        assert path2[-1] != (5, 5)

    def test_negative_directions(self):
        ok, path = greedy_route(np.zeros((5, 5), dtype=bool), (4, 4), (0, 0))
        assert ok and len(path) - 1 == 8

    def test_custom_chooser(self):
        calls = []

        def choose(candidates, pos, dest):
            calls.append(tuple(candidates))
            return candidates[-1]

        ok, _ = greedy_route(np.zeros((4, 4), dtype=bool), (0, 0), (3, 3), choose)
        assert ok and calls

    def test_chooser_must_return_candidate(self):
        with pytest.raises(ValueError):
            greedy_route(
                np.zeros((4, 4), dtype=bool), (0, 0), (3, 3),
                lambda c, p, d: 99,
            )

    def test_faulty_endpoint_rejected(self):
        mask = mask_of_cells([(0, 0)], (4, 4))
        with pytest.raises(ValueError):
            greedy_route(mask, (0, 0), (3, 3))
