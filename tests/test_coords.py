"""Unit tests for coordinate and direction primitives."""

import pytest

from repro.mesh.coords import (
    Direction,
    all_directions,
    direction_between,
    is_monotone_path,
    manhattan,
    neighbors,
    opposite,
    positive_directions,
    step,
)


class TestDirection:
    def test_names(self):
        assert Direction(0, 1).name == "+X"
        assert Direction(1, -1).name == "-Y"
        assert Direction(2, 1).name == "+Z"

    def test_high_axis_name(self):
        assert Direction(7, 1).name == "+D7"

    def test_flip(self):
        d = Direction(1, 1)
        assert d.flip() == Direction(1, -1)
        assert d.flip().flip() == d
        assert opposite(d) == d.flip()

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Direction(0, 2)

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            Direction(-1, 1)

    def test_all_directions_count(self):
        assert len(all_directions(3)) == 6
        assert len(positive_directions(3)) == 3

    def test_directions_hashable_and_ordered(self):
        dirs = all_directions(2)
        assert len(set(dirs)) == 4
        assert sorted(dirs)  # order() is defined


class TestStepAndDistance:
    def test_step_positive(self):
        assert step((1, 2, 3), Direction(2, 1)) == (1, 2, 4)

    def test_step_negative(self):
        assert step((1, 2), Direction(0, -1)) == (0, 2)

    def test_manhattan_matches_paper_definition(self):
        # D(u, v) = |xv-xu| + |yv-yu| + |zv-zu| (Section 2)
        assert manhattan((0, 0, 0), (3, 4, 5)) == 12
        assert manhattan((2, 2), (2, 2)) == 0

    def test_manhattan_dimension_mismatch(self):
        with pytest.raises(ValueError):
            manhattan((0, 0), (0, 0, 0))

    def test_neighbors_interior_degree_2n(self):
        # interior node degree 2n (Section 2)
        assert len(list(neighbors((1, 1, 1), (3, 3, 3)))) == 6

    def test_neighbors_corner_degree_n(self):
        assert len(list(neighbors((0, 0, 0), (3, 3, 3)))) == 3

    def test_direction_between(self):
        assert direction_between((1, 1), (2, 1)) == Direction(0, 1)
        assert direction_between((1, 1), (1, 0)) == Direction(1, -1)

    def test_direction_between_non_neighbors(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (1, 1))
        with pytest.raises(ValueError):
            direction_between((0, 0), (2, 0))


class TestMonotonePath:
    def test_monotone(self):
        assert is_monotone_path([(0, 0), (1, 0), (1, 1), (2, 1)])

    def test_non_monotone_backstep(self):
        assert not is_monotone_path([(0, 0), (1, 0), (0, 0)])

    def test_non_monotone_jump(self):
        assert not is_monotone_path([(0, 0), (2, 0)])

    def test_trivial(self):
        assert is_monotone_path([(3, 3)])
