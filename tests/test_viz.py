"""Tests for ASCII visualization."""

import numpy as np
import pytest

from repro.core.labelling import label_grid
from repro.mesh.regions import mask_of_cells
from repro.viz.ascii_art import render_grid, render_route, render_slices


class TestRenderGrid:
    def test_status_characters(self):
        lab = label_grid(mask_of_cells([(1, 2), (2, 1)], (4, 4)))
        text = render_grid(lab)
        assert "#" in text and "u" in text and "c" in text and "." in text

    def test_origin_bottom_left(self):
        lab = label_grid(mask_of_cells([(0, 0)], (3, 3)))
        lines = render_grid(lab, legend=False).splitlines()
        # Row y=0 is the second-to-last line; x=0 is its first cell.
        assert lines[-2].strip().startswith("0 #")

    def test_overlays_win(self):
        grid = np.zeros((3, 3), dtype=np.int8)
        text = render_grid(grid, overlays={(1, 1): "S"}, legend=False)
        assert "S" in text

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            render_grid(np.zeros((2, 2, 2), dtype=np.int8))


class TestRenderSlices:
    def test_default_shows_unsafe_sections_only(self, fig5_mask):
        lab = label_grid(fig5_mask)
        text = render_slices(lab)
        assert "section Z = 5" in text
        assert "section Z = 0" not in text

    def test_keep_selects(self, fig5_mask):
        lab = label_grid(fig5_mask)
        text = render_slices(lab, keep=[0])
        assert "section Z = 0" in text

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            render_slices(np.zeros((2, 2), dtype=np.int8))


class TestRenderRoute:
    def test_endpoints_marked(self):
        grid = np.zeros((4, 4), dtype=np.int8)
        text = render_route(grid, [(0, 0), (1, 0), (1, 1)])
        assert "S" in text and "D" in text and "*" in text

    def test_3d_route_slices(self):
        grid = np.zeros((3, 3, 3), dtype=np.int8)
        text = render_route(grid, [(0, 0, 0), (0, 0, 1), (1, 0, 1)])
        assert "section Z = 0" in text and "section Z = 1" in text
