"""Tests for cross-pattern labelling reuse (repro.core.model_cache)."""

import numpy as np
import pytest

from repro.core.conditions import ConditionEvaluator
from repro.core.labelling import label_grid
from repro.core.model_cache import (
    LABELLING_CACHE,
    cached_class_assets,
    cached_labelled,
    clear_labelling_cache,
)
from repro.mesh.orientation import Orientation
from repro.routing.engine import AdaptiveRouter


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_labelling_cache()
    yield
    clear_labelling_cache()


def some_mask():
    mask = np.zeros((6, 6), dtype=bool)
    mask[2, 3] = mask[3, 3] = mask[3, 2] = True
    return mask


class TestCachedLabelled:
    def test_same_content_shares_one_labelling(self):
        a = cached_labelled(some_mask(), Orientation.identity((6, 6)))
        b = cached_labelled(some_mask(), Orientation.identity((6, 6)))
        assert a is b  # content-addressed: distinct arrays, one entry

    def test_matches_label_grid(self):
        for orientation in Orientation.all_classes((6, 6)):
            want = label_grid(some_mask(), orientation)
            got = cached_labelled(some_mask(), orientation)
            assert np.array_equal(want.status, got.status)

    def test_cached_status_is_frozen(self):
        labelled = cached_labelled(some_mask(), Orientation.identity((6, 6)))
        with pytest.raises(ValueError):
            labelled.status[0, 0] = 3

    def test_distinct_contents_distinct_entries(self):
        other = some_mask()
        other[0, 0] = True
        a = cached_labelled(some_mask(), Orientation.identity((6, 6)))
        b = cached_labelled(other, Orientation.identity((6, 6)))
        assert a is not b
        assert not np.array_equal(a.status, b.status)

    def test_kind_namespaces_do_not_collide(self):
        from repro.baselines.rfb import rfb_labelled

        mcc = cached_labelled(some_mask(), Orientation.identity((6, 6)))
        rfb = cached_labelled(
            some_mask(),
            Orientation.identity((6, 6)),
            labeller=rfb_labelled,
            kind="rfb",
        )
        assert mcc is not rfb


class TestAssetsSharing:
    def test_router_and_evaluator_share_labelling(self):
        mask = some_mask()
        router = AdaptiveRouter(mask, mode="mcc")
        evaluator = ConditionEvaluator(mask.copy())
        orientation = Orientation.identity((6, 6))
        model = router._model_for(orientation)
        labelled, _mccs, walls = evaluator.for_orientation(orientation)
        assert model.labelled is labelled
        assert model.walls is walls

    def test_two_routers_same_pattern_label_once(self):
        mask = some_mask()
        r1 = AdaptiveRouter(mask, mode="mcc")
        r2 = AdaptiveRouter(mask.copy(), mode="mcc")
        orientation = Orientation.identity((6, 6))
        assert (
            r1._model_for(orientation).labelled
            is r2._model_for(orientation).labelled
        )

    def test_label_cache_false_bypasses(self):
        mask = some_mask()
        router = AdaptiveRouter(mask, mode="mcc", label_cache=False)
        orientation = Orientation.identity((6, 6))
        labelled = router._model_for(orientation).labelled
        assert len(LABELLING_CACHE) == 0
        labelled.status[0, 0] = labelled.status[0, 0]  # writable: no freeze

    def test_assets_reuse_labelled_entry(self):
        orientation = Orientation.identity((6, 6))
        labelled = cached_labelled(some_mask(), orientation)
        assets = cached_class_assets(some_mask(), orientation)
        assert assets[0] is labelled

    def test_routing_results_unchanged_by_cache(self):
        mask = some_mask()
        cached = AdaptiveRouter(mask, mode="mcc").route((0, 0), (5, 5))
        fresh = AdaptiveRouter(mask, mode="mcc", label_cache=False).route(
            (0, 0), (5, 5)
        )
        assert (cached.delivered, cached.path) == (fresh.delivered, fresh.path)

    def test_lru_bound_holds(self):
        orientation = Orientation.identity((4, 4))
        for i in range(LABELLING_CACHE.maxsize + 10):
            mask = np.zeros((4, 4), dtype=bool)
            mask.flat[i % 16] = True
            mask.flat[(i * 7 + 3) % 16] = True
            cached_labelled(mask, orientation)
        assert len(LABELLING_CACHE) <= LABELLING_CACHE.maxsize


class TestCachedRoutingService:
    def test_same_mask_content_reuses_service(self):
        from repro.core.model_cache import cached_routing_service

        a = cached_routing_service(some_mask(), mode="oracle")
        b = cached_routing_service(some_mask(), mode="oracle")
        assert a is b

    def test_caller_mutation_cannot_poison_cache(self):
        from repro.core.model_cache import cached_routing_service

        mask = some_mask()
        service = cached_routing_service(mask, mode="oracle")
        want = service.feasible_batch([((0, 0), (5, 5))])
        mask[0, 1] = True  # caller mutates its own array afterwards
        again = cached_routing_service(some_mask(), mode="oracle")
        assert again is service
        assert np.array_equal(
            again.feasible_batch([((0, 0), (5, 5))]), want
        )

    def test_distinct_modes_distinct_services(self):
        from repro.core.model_cache import cached_routing_service

        a = cached_routing_service(some_mask(), mode="oracle")
        b = cached_routing_service(some_mask(), mode="mcc")
        assert a is not b and b.mode == "mcc"

    def test_verdicts_match_fresh_service(self):
        from repro.core.model_cache import cached_routing_service
        from repro.routing.batch import RoutingService

        mask = some_mask()
        pairs = [((0, 0), (5, 5)), ((1, 0), (4, 4)), ((0, 2), (2, 5))]
        cached = cached_routing_service(mask, mode="oracle")
        fresh = RoutingService(mask, mode="oracle")
        assert np.array_equal(
            cached.feasible_batch(pairs), fresh.feasible_batch(pairs)
        )
