"""Property P4 (boundaries): wall records match the centralized walls."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.core.walls import build_walls
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D, Mesh3D
from tests.conftest import random_mask


def _record_guard_cells(pipe, shape):
    """(cell, guard_axis) pairs where a distributed record actually
    forbids stepping onto a *safe* in-shadow neighbor."""
    out = set()
    for coord in np.ndindex(shape):
        for rec in pipe.records_at(coord):
            axis = rec["guard_axis"]
            nxt = list(coord)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if not all(0 <= c < s for c, s in zip(nxt, shape, strict=True)):
                continue
            col_axis = [a for a in rec["plane"] if a != rec["shadow_axis"]][0]
            col = nxt[col_axis]
            if col in rec["tops"] and nxt[rec["shadow_axis"]] < rec["tops"][col]:
                out.add((coord, axis))
    return out


class TestWallRecords2D:
    def test_singleton_wall_lines(self):
        mask = mask_of_cells([(4, 4)], (9, 9))
        pipe = DistributedMCCPipeline(Mesh2D(9), mask).build()
        # Y-wall: column 3, rows 0..3; X-wall: row 3, columns 0..3.
        for y in range(4):
            recs = pipe.records_at((3, y))
            assert any(r["shadow_axis"] == 1 for r in recs), y
        for x in range(4):
            recs = pipe.records_at((x, 3))
            assert any(r["shadow_axis"] == 0 for r in recs), x

    def test_records_carry_shape_info(self):
        mask = mask_of_cells([(4, 4), (4, 5)], (9, 9))
        pipe = DistributedMCCPipeline(Mesh2D(9), mask).build()
        rec = next(
            r for r in pipe.records_at((3, 2)) if r["shadow_axis"] == 1
        )
        assert rec["tops"] == {4: 5}
        assert rec["bottoms"] == {4: 4}

    def test_chain_merge_in_records(self):
        # M1 at (5,5); M2 at (4,2) obstructing M1's Y-wall.
        mask = mask_of_cells([(5, 5), (4, 2)], (10, 10))
        pipe = DistributedMCCPipeline(Mesh2D(10), mask).build()
        # Below M2, the M1 wall records must carry the merged shadow.
        merged = [
            r
            for r in pipe.records_at((3, 1))
            if r["shadow_axis"] == 1 and 5 in r["tops"] and 4 in r["tops"]
        ]
        assert merged, pipe.records_at((3, 1))
        assert merged[0]["tops"][5] == 5
        assert merged[0]["tops"][4] == 2

    @given(st.integers(0, 2**32 - 1), st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_guard_coverage_matches_centralized(self, seed, count):
        """Wherever the centralized wall guards a safe shadow entry for
        an identified MCC, some distributed record guards it too."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (9, 9), count)
        lab = label_grid(mask)
        mccs = extract_mccs(lab)
        walls = build_walls(mccs)
        pipe = DistributedMCCPipeline(Mesh2D(9), mask).build()
        identified = set()
        for shape in pipe.identified_sections().values():
            identified |= set(map(tuple, shape))
        dist_guards = _record_guard_cells(pipe, (9, 9))
        for wall in walls:
            cells = set(
                map(tuple, extract_mccs(lab)[wall.mcc_index].cells.tolist())
            )
            if not cells <= identified:
                continue  # unidentified (border/corner cases): skip
            for axis, recs in wall.records.items():
                for cell in map(tuple, np.argwhere(recs)):
                    nxt = list(cell)
                    nxt[axis] += 1
                    nxt = tuple(nxt)
                    if lab.safe_mask[nxt]:
                        assert (cell, axis) in dist_guards, (cell, axis)


class TestWallRecords3D:
    def test_fig5_z_guard_for_singleton(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask).build()
        # The (7,8,4) fault's Z-shadow runs below z=4 at (x,y)=(7,8);
        # +X guard records live at (6,8,z<4) in the XZ plane y=8.
        recs = pipe.records_at((6, 8, 2))
        assert any(
            r["shadow_axis"] == 2 and r["guard_axis"] == 0 for r in recs
        )

    def test_record_planes_consistent(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask).build()
        for coord in [(6, 8, 2), (4, 4, 6), (4, 5, 6)]:
            for rec in pipe.records_at(coord):
                assert rec["shadow_axis"] in rec["plane"]
                assert rec["guard_axis"] in rec["plane"]
                assert rec["shadow_axis"] != rec["guard_axis"]
