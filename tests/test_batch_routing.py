"""The batched routing service and the engine fixes that ride with it.

Covers the two routing-engine regressions (blind-mode feasibility
verdict, faulty-endpoint handling), the batched flood kernel, the LRU
bound on reach caches, and the headline property: ``route_batch`` is
element-wise identical to per-call ``AdaptiveRouter.route``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.orientation import Orientation
from repro.mesh.regions import mask_of_cells
from repro.routing.batch import RoutingService, route_batch
from repro.routing.engine import AdaptiveRouter, route_adaptive
from repro.routing.oracle import reverse_reachable, reverse_reachable_many
from repro.routing.policies import DiagonalPolicy, FixedOrderPolicy, RandomPolicy
from repro.util.caching import LRUCache
from tests.conftest import random_mask


def results_equal(a, b):
    return (a.delivered, a.path, a.feasible, a.stuck_at, a.reason) == (
        b.delivered,
        b.path,
        b.feasible,
        b.stuck_at,
        b.reason,
    )


class TestEngineRegressions:
    def test_blind_failure_reports_unknown_feasibility(self):
        # The dead-end pocket from test_router: x-first blind routing
        # gets cornered.  No feasibility check ever ran, so the verdict
        # must be None (unknown), not a hardcoded True.
        mask = mask_of_cells([(4, 0), (4, 1), (3, 2), (2, 2)], (8, 8))
        blind = AdaptiveRouter(mask, mode="blind", policy=FixedOrderPolicy((0, 1)))
        result = blind.route((0, 0), (7, 7))
        assert not result.delivered
        assert result.feasible is None
        assert result.reason == "stuck"

    def test_blind_delivery_still_reports_feasible(self):
        # A traversed monotone path is itself the existence proof.
        mask = np.zeros((5, 5), dtype=bool)
        result = AdaptiveRouter(mask, mode="blind").route((0, 0), (4, 4))
        assert result.delivered and result.feasible is True

    def test_model_mode_failures_keep_true_verdict(self):
        # mcc/rfb/oracle reach the forwarding loop only after a passed
        # check; a hop-budget failure must still report that verdict.
        mask = np.zeros((6, 6), dtype=bool)
        router = AdaptiveRouter(mask, mode="mcc", max_hops=3)
        result = router.route((0, 0), (5, 5))
        assert not result.delivered
        assert result.feasible is True
        assert result.reason == "hop budget exceeded"

    @pytest.mark.parametrize("mode", AdaptiveRouter.MODES)
    def test_faulty_endpoint_returns_failed_result(self, mode):
        mask = mask_of_cells([(0, 0), (3, 3)], (5, 5))
        router = AdaptiveRouter(mask, mode=mode)
        for s, d in [((0, 0), (4, 4)), ((1, 1), (3, 3))]:
            result = router.route(s, d)
            assert not result.delivered
            assert result.feasible is False
            assert result.reason == "endpoint faulty"
            assert result.path == [s]
        # The router survives and still routes clean pairs afterwards
        # (dynamic-fault DES workloads keep the same router instance).
        ok = router.route((0, 1), (4, 4))
        assert ok.delivered

    def test_dynamic_fault_injection_no_crash(self):
        # A destination that "dies" between routings (mask mutated in
        # place, as MeshNetwork.inject_fault does) scores as a failure.
        mask = np.zeros((5, 5), dtype=bool)
        router = AdaptiveRouter(mask, mode="blind")
        assert router.route((0, 0), (4, 4)).delivered
        router.fault_mask[4, 4] = True
        late = router.route((0, 0), (4, 4))
        assert not late.delivered and late.reason == "endpoint faulty"


class TestBatchedFloodKernel:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_reverse_reachable_many_matches_single(self, seed):
        rng = np.random.default_rng(seed)
        shape = (5, 4, 4) if seed % 2 else (7, 7)
        mask = random_mask(rng, shape, int(rng.integers(0, 10)))
        dests = [
            tuple(int(rng.integers(0, k)) for k in shape) for _ in range(6)
        ]
        stacked = reverse_reachable_many(~mask, dests)
        assert stacked.shape == (6,) + shape
        for b, dest in enumerate(dests):
            assert np.array_equal(stacked[b], reverse_reachable(~mask, dest))


class TestLRUCache:
    def test_bound_and_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2 and cache.evictions == 1

    def test_unbounded_and_validation(self):
        cache = LRUCache(None)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_router_reach_cache_is_bounded(self):
        mask = np.zeros((6, 6), dtype=bool)
        router = AdaptiveRouter(mask, mode="mcc", reach_cache_size=3)
        model = router._model_for(Orientation.identity((6, 6)))
        for x in range(6):
            model.reach_mask((5, x))
        assert len(model._reach) == 3
        # Evicted entries are recomputed transparently.
        assert model.reach_mask((5, 0))[(0, 0)]


class TestRoutingService:
    def test_feasible_batch_matches_route_verdicts(self, rng):
        mask = random_mask(rng, (7, 7), 9)
        pairs = []
        for _ in range(60):
            s = tuple(int(v) for v in rng.integers(0, 7, 2))
            d = tuple(int(v) for v in rng.integers(0, 7, 2))
            pairs.append((s, d))
        for mode in ("mcc", "rfb", "oracle"):
            service = RoutingService(mask, mode=mode)
            feas = service.feasible_batch(pairs)
            for (s, d), f in zip(pairs, feas, strict=True):
                assert bool(f) == bool(service.route(s, d).feasible)

    def test_feasible_batch_rejects_blind(self):
        service = RoutingService(np.zeros((4, 4), dtype=bool), mode="blind")
        with pytest.raises(ValueError):
            service.feasible_batch([((0, 0), (3, 3))])

    def test_empty_batch(self):
        service = RoutingService(np.zeros((4, 4), dtype=bool))
        assert service.route_batch([]) == []
        assert service.feasible_batch([]).shape == (0,)

    def test_degenerate_and_repeated_pairs(self):
        mask = mask_of_cells([(1, 2)], (5, 5))
        service = RoutingService(mask)
        pairs = [((0, 0), (0, 0)), ((3, 3), (0, 0)), ((3, 3), (0, 0))]
        results = service.route_batch(pairs)
        assert results[0].delivered and results[0].hops == 0
        assert results_equal(results[1], results[2])

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_route_batch_identical_to_per_call(self, seed):
        """The headline property: batch == per-call, element-wise.

        Random shapes, fault patterns, modes, stateless policies, and
        pairs that include faulty endpoints and degenerate cases.
        """
        rng = np.random.default_rng(seed)
        shape = (6, 6) if seed % 3 else (4, 4, 4)
        mask = random_mask(rng, shape, int(rng.integers(1, 9)))
        mode = AdaptiveRouter.MODES[seed % 4]
        policy = DiagonalPolicy() if seed % 2 else FixedOrderPolicy()
        pairs = []
        for _ in range(25):
            s = tuple(int(v) for v in rng.integers(0, shape[0], len(shape)))
            d = tuple(int(v) for v in rng.integers(0, shape[0], len(shape)))
            pairs.append((s, d))
        batched = route_batch(mask, pairs, mode=mode, policy=policy)
        for pair, got in zip(pairs, batched, strict=True):
            want = route_adaptive(mask, *pair, mode=mode, policy=policy)
            assert results_equal(got, want), (mode, pair, got, want)

    def test_tiny_lru_still_identical(self):
        # A reach cache far smaller than the destination set must change
        # performance only, never results.
        rng = np.random.default_rng(11)
        mask = random_mask(rng, (6, 6, 6), 12)
        pairs = []
        for _ in range(80):
            s = tuple(int(v) for v in rng.integers(0, 6, 3))
            d = tuple(int(v) for v in rng.integers(0, 6, 3))
            pairs.append((s, d))
        small = RoutingService(mask, reach_cache_size=2).route_batch(pairs)
        large = RoutingService(mask, reach_cache_size=None).route_batch(pairs)
        assert all(results_equal(a, b) for a, b in zip(small, large, strict=True))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_replay_policy_matches_per_call_random_draws(self, seed):
        """ROADMAP parity item: with ``replay_policy=True`` a stateful
        ``RandomPolicy`` draws in input order, so batched paths equal
        per-call paths element-wise (not just the delivery verdicts).
        """
        rng = np.random.default_rng(seed)
        shape = (6, 6) if seed % 3 else (4, 4, 4)
        mask = random_mask(rng, shape, int(rng.integers(1, 9)))
        mode = AdaptiveRouter.MODES[seed % 4]
        policy_seed = int(rng.integers(1 << 30))
        pairs = []
        for _ in range(25):
            s = tuple(int(v) for v in rng.integers(0, shape[0], len(shape)))
            d = tuple(int(v) for v in rng.integers(0, shape[0], len(shape)))
            pairs.append((s, d))
        service = RoutingService(
            mask,
            mode=mode,
            policy=RandomPolicy(policy_seed),
            replay_policy=True,
        )
        batched = service.route_batch(pairs)
        solo_router = AdaptiveRouter(
            mask, mode=mode, policy=RandomPolicy(policy_seed)
        )
        solo = [solo_router.route(s, d) for s, d in pairs]
        for pair, got, want in zip(pairs, batched, solo, strict=True):
            assert results_equal(got, want), (mode, pair, got, want)

    def test_replay_policy_without_state_changes_nothing(self):
        rng = np.random.default_rng(5)
        mask = random_mask(rng, (6, 6), 6)
        pairs = []
        for _ in range(40):
            s = tuple(int(v) for v in rng.integers(0, 6, 2))
            d = tuple(int(v) for v in rng.integers(0, 6, 2))
            pairs.append((s, d))
        plain = RoutingService(mask).route_batch(pairs)
        replayed = RoutingService(mask, replay_policy=True).route_batch(pairs)
        assert all(results_equal(a, b) for a, b in zip(plain, replayed, strict=True))

    def test_shared_labelling_with_region_experiment(self):
        from repro.experiments.exp_region_overhead import region_overhead_once

        mask = mask_of_cells([(2, 2), (3, 3)], (8, 8))
        service = RoutingService(mask, mode="mcc")
        mcc, rfb = region_overhead_once(mask, service=service)
        assert mcc >= 0 and rfb >= mcc
        # The canonical class model was built once and is reused.
        assert ((1, 1)) in service.router._models
