"""Regression pins: ported sweeps reproduce the retired serial outputs.

T3 (protocol overhead), T5 (fidelity), and the A1/A4 ablations were
moved from inline serial trial loops onto the sharded runner.  The
golden CSVs below were captured from the serial implementations at
fixed seeds *before* the port; the ported sweeps must reproduce them
byte-for-byte — serial and with workers=2 across shard counts 1/2/4 —
so the execution-path change cannot silently move published numbers.
"""

import pytest

from repro.experiments.exp_ablation import run_mesh4d_extension, run_rfb_variants
from repro.experiments.exp_fidelity import run_fidelity
from repro.experiments.exp_protocol_overhead import run_protocol_overhead

# Captured from the pre-port serial run_protocol_overhead/run_fidelity
# (commit 0e5771f) with exactly these arguments.
GOLDEN_T3_2D = (
    "faults,label,edge,ident,shape,wall,total,per_node\n"
    "2,0.0,14.5,9.5,10.0,5.0,39.0,1.0833333333333333\n"
    "4,0.0,29.0,20.5,27.0,8.0,84.5,2.3472222222222223\n"
)
GOLDEN_T3_3D = (
    "faults,label,edge,ident,shape,wall,total,per_node\n"
    "2,0.0,40.5,48.5,50.0,15.5,154.5,1.236\n"
    "4,0.0,56.5,58.0,46.5,23.5,184.5,1.476\n"
)
GOLDEN_T5_2D = (
    "faults,pairs,cond_agree,detect_agree,feasible,router_complete,"
    "exclusion_exact\n"
    "3,20,1.0,1.0,19,1.0,1.0\n"
    "5,18,1.0,1.0,18,1.0,1.0\n"
)
GOLDEN_T5_3D = (
    "faults,pairs,cond_agree,detect_agree,feasible,router_complete,"
    "exclusion_exact\n"
    "4,16,1.0,1.0,16,1.0,1.0\n"
)
# Captured from bench_ablation's pre-port inline loops (same seeds).
GOLDEN_A1 = [(10, 1.1, 2.9), (40, 194.3, 499.3), (90, 1638.0, 1638.0)]
GOLDEN_A4 = [(24, 0.0), (120, 0.0)]


def csv_lf(table) -> str:
    return table.to_csv().replace("\r\n", "\n")


class TestProtocolOverheadParity:
    def test_serial_matches_golden_2d(self):
        table = run_protocol_overhead((6, 6), [2, 4], trials=2, seed=6)
        assert csv_lf(table) == GOLDEN_T3_2D
        assert table.title == "T3 protocol message overhead — 2-D 6x6 mesh, 2 trials"

    def test_serial_matches_golden_3d(self):
        table = run_protocol_overhead((5, 5, 5), [2, 4], trials=2, seed=2005)
        assert csv_lf(table) == GOLDEN_T3_3D

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_workers_match_golden(self, shards):
        table = run_protocol_overhead(
            (6, 6), [2, 4], trials=2, seed=6, workers=2, shards=shards
        )
        assert csv_lf(table) == GOLDEN_T3_2D


class TestFidelityParity:
    def test_serial_matches_golden_2d(self):
        table = run_fidelity((6, 6), [3, 5], pairs=10, trials=2, seed=8)
        assert csv_lf(table) == GOLDEN_T5_2D
        assert table.title == "T5 model fidelity vs oracle — 2-D 6x6 mesh"

    def test_serial_matches_golden_3d(self):
        table = run_fidelity((5, 5, 5), [4], pairs=8, trials=2, seed=9)
        assert csv_lf(table) == GOLDEN_T5_3D

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_workers_match_golden(self, shards):
        table = run_fidelity(
            (6, 6), [3, 5], pairs=10, trials=2, seed=8, workers=2, shards=shards
        )
        assert csv_lf(table) == GOLDEN_T5_2D


class TestAblationParity:
    def test_a1_matches_inline_loop(self):
        table = run_rfb_variants((12, 12, 12), [10, 40, 90], trials=10, seed=11)
        got = [
            (r["faults"], r["local_nonfaulty"], r["block_nonfaulty"])
            for r in table.rows
        ]
        assert got == GOLDEN_A1
        sharded = run_rfb_variants(
            (12, 12, 12), [10, 40, 90], trials=10, seed=11, workers=2, shards=4
        )
        assert sharded.to_csv() == table.to_csv()

    def test_a4_matches_inline_loop(self):
        table = run_mesh4d_extension((7, 7, 7, 7), [24, 120], trials=5, seed=41)
        got = [(r["faults"], r["mcc_nonfaulty"]) for r in table.rows]
        assert got == GOLDEN_A4
