"""Contracts of the serving layer and the construction facade.

Covers the four ISSUE-mandated serving contracts — batching-window
determinism under a seeded clock, fault-event preemption vs in-flight
requests (epoch parity with ``OnlineRoutingService.flush``),
admission-control shedding, and facade parity with a direct
``RoutingService`` — plus the :func:`make_service` flavour validation,
the :class:`Ticket` compatibility shim, and the ``route_adaptive``
deprecation.
"""

import asyncio

import numpy as np
import pytest

from repro.online import OnlineRoutingService, Ticket
from repro.routing.batch import RoutingService
from repro.routing.engine import route_adaptive
from repro.serve import (
    AsyncRoutingService,
    ServiceOverloadError,
    ServiceStoppedError,
    VirtualClock,
    make_trace,
    run_load,
    run_offered_load_sweep,
)
from repro.service import make_service
from repro.util.rng import make_rng


def small_mask(seed=7, shape=(6, 6, 6), faults=6):
    from repro.experiments.workloads import random_fault_mask

    return random_fault_mask(shape, faults, rng=make_rng(seed))


async def _pump(clock, awaitable):
    """Await something that only resolves once virtual time advances."""
    task = asyncio.ensure_future(awaitable)
    while not task.done():
        if not await clock.advance():
            break  # no live timers left; let await surface the state
    return await task


class TestVirtualClock:
    def test_same_deadline_fires_in_registration_order(self):
        clock = VirtualClock()
        order = []

        async def sleeper(tag):
            await clock.sleep(1.0)
            order.append(tag)

        async def scenario():
            tasks = [
                asyncio.get_running_loop().create_task(sleeper(k))
                for k in range(5)
            ]
            while not all(t.done() for t in tasks):
                await clock.advance()

        asyncio.run(scenario())
        assert order == [0, 1, 2, 3, 4]
        assert clock.now() == 1.0

    def test_advance_settles_before_reporting_idle(self):
        # A freshly created task that will register a timer must get a
        # chance to run before advance() declares the clock idle.
        clock = VirtualClock()

        async def scenario():
            task = asyncio.get_running_loop().create_task(clock.sleep(2.0))
            assert await clock.advance() is True  # not a false idle
            assert clock.now() == 2.0
            await task
            assert await clock.advance() is False

        asyncio.run(scenario())

    def test_due_now_sleep_still_yields(self):
        clock = VirtualClock()

        async def scenario():
            await clock.sleep(0.0)  # must not deadlock or register a timer
            assert clock.pending_timers() == 0

        asyncio.run(scenario())

    def test_sleep_until_inf_blocks_until_cancelled(self):
        # "Sleep forever until cancelled" must block, not raise: the
        # non-finite deadline registers no timer, so advance() reports
        # no live deadline while the sleeper stays pending.
        clock = VirtualClock()

        async def scenario():
            task = asyncio.get_running_loop().create_task(
                clock.sleep_until(float("inf"))
            )
            assert await clock.advance() is False
            assert not task.done()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert clock.pending_timers() == 0

        asyncio.run(scenario())


class TestBatchingDeterminism:
    def test_one_window_coalesces_to_one_batch(self):
        mask = small_mask()
        trace = make_trace(
            (6, 6, 6), 6, rate=400.0, duration=0.009, seed=7, min_distance=2
        )
        assert trace.offered > 1
        service = AsyncRoutingService(
            trace.seed_mask.copy(), clock=VirtualClock(), batch_window=0.01
        )
        records = asyncio.run(run_load(service, trace))
        m = service.metrics()
        assert len(records) == trace.offered
        # Every arrival landed inside the first window: one batch.
        assert m.batches == 1
        assert m.max_batch == trace.offered
        assert mask.shape == trace.seed_mask.shape

    def test_replay_is_identical(self):
        trace = make_trace((6, 6, 6), 8, rate=500.0, duration=0.3, events=2, seed=13)

        def once():
            service = AsyncRoutingService(
                trace.seed_mask.copy(), clock=VirtualClock(), batch_window=0.005
            )
            return asyncio.run(run_load(service, trace)), service.metrics()

        records_a, metrics_a = once()
        records_b, metrics_b = once()
        assert records_a == records_b  # CompletedRequest dataclass equality
        assert metrics_a == metrics_b

    def test_saved_sweep_tables_are_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for p in paths:
            run_offered_load_sweep(
                (6, 6, 6),
                6,
                [100.0, 300.0],
                profile="spike",
                duration=0.25,
                events=2,
                seed=42,
                save=str(p),
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_trace_generation_is_pure(self):
        t1 = make_trace((6, 6, 6), 6, profile="ramp", rate=300.0, seed=5)
        t2 = make_trace((6, 6, 6), 6, profile="ramp", rate=300.0, seed=5)
        assert t1.requests == t2.requests
        assert np.array_equal(t1.seed_mask, t2.seed_mask)
        t3 = make_trace((6, 6, 6), 6, profile="ramp", rate=300.0, seed=6)
        assert t1.requests != t3.requests

    def test_run_load_rejects_mismatched_mask(self):
        trace = make_trace((6, 6, 6), 6, rate=100.0, duration=0.05, seed=5)
        other = np.zeros((6, 6, 6), dtype=bool)
        service = AsyncRoutingService(other, clock=VirtualClock())
        with pytest.raises(ValueError, match="seed mask"):
            asyncio.run(run_load(service, trace))


class TestFaultEventPreemption:
    def test_preemption_answers_in_flight_at_submission_epoch(self):
        mask = small_mask(seed=11)
        trace = make_trace((6, 6, 6), 6, rate=200.0, duration=0.05, seed=11)
        pairs = [(r.source, r.dest) for r in trace.requests[:3]]
        assert len(pairs) >= 2
        cells = [tuple(np.argwhere(~mask)[0])]

        async def scenario():
            service = AsyncRoutingService(
                mask.copy(), clock=VirtualClock(), batch_window=1.0
            )
            async with service:
                loop = asyncio.get_running_loop()
                early = [loop.create_task(service.route(s, d)) for s, d in pairs]
                await asyncio.sleep(0)  # let the clients enqueue
                assert service.metrics().queue_depth == len(pairs)
                service.apply_event("inject", cells)  # preempts the window
                # The event resolved every in-flight request: no batch
                # tick was needed, and the queue is empty again.
                done = [await t for t in early]
                assert service.metrics().queue_depth == 0
                late = await _pump(service.clock, service.route(*pairs[0]))
                return done, late, service.metrics()

        done, late, m = asyncio.run(scenario())
        # In-flight requests answered at their submission epoch (0),
        # strictly before the mutation; the later request sees epoch 1.
        assert [r.epoch for r in done] == [0] * len(pairs)
        assert late.epoch == 1
        assert m.events == 1
        assert m.epoch == 1

    def test_epoch_parity_with_online_flush(self):
        mask = small_mask(seed=11)
        trace = make_trace((6, 6, 6), 6, rate=200.0, duration=0.05, seed=11)
        pairs = [(r.source, r.dest) for r in trace.requests[:3]]
        cells = [tuple(np.argwhere(~mask)[0])]

        # Reference: the same schedule driven through the online
        # service's own submit/flush queue.
        online = make_service(mask.copy(), online=True)
        tickets = [online.submit(s, d) for s, d in pairs]
        online.inject(cells)  # flushes the queue first, then mutates
        reference = online.take_completed()
        ref_results = [reference[t] for t in tickets]
        ref_late = online.route(*pairs[0])

        async def scenario():
            service = AsyncRoutingService(
                mask.copy(), clock=VirtualClock(), batch_window=1.0
            )
            async with service:
                loop = asyncio.get_running_loop()
                early = [loop.create_task(service.route(s, d)) for s, d in pairs]
                await asyncio.sleep(0)
                service.apply_event("inject", cells)
                done = [await t for t in early]
                late = await _pump(service.clock, service.route(*pairs[0]))
                return done, late

        done, late = asyncio.run(scenario())
        assert done == ref_results  # identical RouteResults, epochs included
        assert late == ref_late


class TestAdmissionControl:
    def test_shedding_past_queue_depth(self):
        mask = small_mask(seed=3)
        trace = make_trace((6, 6, 6), 6, rate=200.0, duration=0.1, seed=3)
        pairs = [(r.source, r.dest) for r in trace.requests]
        depth = 3
        assert len(pairs) > depth

        async def scenario():
            service = AsyncRoutingService(
                mask.copy(),
                clock=VirtualClock(),
                batch_window=0.01,
                max_queue_depth=depth,
            )
            async with service:
                loop = asyncio.get_running_loop()
                accepted = [
                    loop.create_task(service.route(s, d))
                    for s, d in pairs[:depth]
                ]
                await asyncio.sleep(0)  # fill the queue to its bound
                shed = 0
                for s, d in pairs[depth:]:
                    with pytest.raises(ServiceOverloadError):
                        await service.route(s, d)
                    shed += 1
                results = await _pump(
                    service.clock, asyncio.gather(*accepted)
                )
                return results, shed, service.metrics()

        results, shed, m = asyncio.run(scenario())
        assert all(r.epoch == 0 for r in results)
        assert m.shed == shed
        assert m.completed == depth
        assert m.requests == depth + shed

    def test_route_outside_lifecycle_raises(self):
        service = AsyncRoutingService(small_mask(), clock=VirtualClock())

        async def scenario():
            with pytest.raises(ServiceStoppedError):
                await service.route((0, 0, 0), (5, 5, 5))

        asyncio.run(scenario())

    def test_constructor_validation(self):
        mask = small_mask()
        with pytest.raises(ValueError, match="batch_window"):
            AsyncRoutingService(mask, batch_window=0.0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            AsyncRoutingService(mask, max_queue_depth=0)
        online = make_service(mask, online=True)
        with pytest.raises(ValueError, match="not both"):
            AsyncRoutingService(mask, online=online)
        adopted = AsyncRoutingService(online=online)
        assert adopted.online is online


class TestFacadeParity:
    def test_served_results_match_direct_routing_service(self):
        trace = make_trace((6, 6, 6), 8, rate=400.0, duration=0.2, seed=21)
        service = AsyncRoutingService(
            trace.seed_mask.copy(), clock=VirtualClock(), batch_window=0.005
        )
        asyncio.run(run_load(service, trace))
        served = asyncio.run(_collect(trace))

        direct = RoutingService(trace.seed_mask.copy(), mode="mcc")
        expected = direct.route_batch(
            [(r.source, r.dest) for r in trace.requests]
        )
        assert len(served) == len(expected)
        for got, want in zip(served, expected, strict=True):
            # Element-wise identical verdicts and paths; only the epoch
            # stamp differs (online results carry 0, static carry None).
            assert got.epoch == 0
            assert (got.delivered, got.path, got.feasible, got.stuck_at) == (
                want.delivered,
                want.path,
                want.feasible,
                want.stuck_at,
            )


async def _collect(trace):
    """Route a trace's pairs through a fresh served stack, trace order."""
    service = AsyncRoutingService(
        trace.seed_mask.copy(), clock=VirtualClock(), batch_window=0.005
    )
    async with service:
        loop = asyncio.get_running_loop()
        tasks = [
            loop.create_task(service.route(r.source, r.dest))
            for r in trace.requests
        ]
        gathered = asyncio.gather(*tasks)
        while not gathered.done():
            await service.clock.advance()
        return await gathered


class TestMakeServiceFacade:
    def test_default_flavour_is_routing_service(self):
        service = make_service(small_mask())
        assert isinstance(service, RoutingService)

    def test_online_flavour(self):
        service = make_service(small_mask(), online=True)
        assert isinstance(service, OnlineRoutingService)
        assert service.epoch == 0

    def test_shared_flavour_is_content_addressed(self):
        mask = small_mask()
        a = make_service(mask, shared=True)
        b = make_service(mask.copy(), shared=True)
        assert a is b  # same content -> same cached service

    def test_online_and_shared_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_service(small_mask(), online=True, shared=True)

    def test_flavours_reject_foreign_knobs(self):
        mask = small_mask()
        with pytest.raises(ValueError, match="cannot honour"):
            make_service(mask, online=True, label_cache=False)
        with pytest.raises(ValueError, match="cannot honour"):
            make_service(mask, shared=True, max_hops=10)
        with pytest.raises(ValueError, match="full_recompute_fraction"):
            make_service(mask, full_recompute_fraction=0.5)
        with pytest.raises(ValueError, match="reach_cache_size"):
            make_service(mask, shared=True, reach_cache_size=3)
        with pytest.raises(ValueError, match="needs a fault_mask"):
            make_service(online=True)

    def test_facade_routes_like_direct_construction(self):
        mask = small_mask(seed=9)
        trace = make_trace((6, 6, 6), 6, rate=300.0, duration=0.1, seed=9)
        pairs = [(r.source, r.dest) for r in trace.requests]
        via_facade = make_service(mask, mode="mcc").route_batch(pairs)
        direct = RoutingService(mask, mode="mcc").route_batch(pairs)
        assert via_facade == direct


class TestTicket:
    def test_ticket_is_int_compatible(self):
        online = make_service(small_mask(), online=True)
        ticket = online.submit((0, 0, 0), (5, 5, 5))
        assert isinstance(ticket, Ticket)
        assert isinstance(ticket, int)
        assert ticket.id == int(ticket)
        assert ticket.epoch == 0
        results = online.flush()
        # Plain-int lookups keep working during the deprecation window.
        assert results[int(ticket)] is results[ticket]

    def test_ticket_epoch_tracks_model(self):
        mask = small_mask()
        online = make_service(mask, online=True)
        online.inject([tuple(np.argwhere(~mask)[0])])
        ticket = online.submit((0, 0, 0), (5, 5, 5))
        assert ticket.epoch == 1
        assert repr(ticket) == f"Ticket(id={int(ticket)}, epoch=1)"


class TestRouteAdaptiveDeprecation:
    def test_route_adaptive_warns_but_works(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        with pytest.warns(DeprecationWarning, match="make_service"):
            result = route_adaptive(mask, (0, 0), (4, 4))
        assert result.delivered
