"""Round-trip tests for the durable ResultTable format (JSONL).

The format must preserve exactly what the reducers produce — title,
column order, and row values including ``None``, ``NaN``, and the
int-vs-float distinction — and must reject files it cannot trust:
wrong format marker, unknown schema version, mismatched spec
fingerprint, or a file cut off mid-write.
"""

import json
import math

import pytest

from repro.util.records import (
    RESULT_TABLE_FORMAT,
    RESULT_TABLE_SCHEMA,
    FingerprintMismatchError,
    ResultTable,
    SchemaVersionError,
    TablePersistenceError,
    fingerprint_of,
    json_line,
    read_jsonl,
)


def demo_table() -> ResultTable:
    table = ResultTable("demo — sweep")
    table.add(faults=2, rate=0.5, note="ok")
    table.add(faults=4, rate=float("nan"), extra=None)
    table.add(faults=8, rate=1.0, extra=3, inf=float("inf"))
    return table


class TestRoundTrip:
    def test_preserves_title_columns_and_values(self, tmp_path):
        table = demo_table()
        path = tmp_path / "demo.jsonl"
        table.save(path)
        loaded = ResultTable.load(path)
        assert loaded.title == table.title
        assert loaded.columns == table.columns  # discovery order kept
        assert len(loaded) == len(table)
        assert loaded.rows[0] == table.rows[0]
        assert loaded.rows[2] == table.rows[2]
        # Row 1 has a NaN, which is != itself; compare field-wise.
        assert loaded.rows[1]["faults"] == 4
        assert math.isnan(loaded.rows[1]["rate"])
        assert loaded.rows[1]["extra"] is None

    def test_int_float_distinction_survives(self, tmp_path):
        table = ResultTable("types")
        table.add(a=1, b=1.0, c=-0.0)
        path = tmp_path / "t.jsonl"
        table.save(path)
        row = ResultTable.load(path).rows[0]
        assert isinstance(row["a"], int) and not isinstance(row["a"], bool)
        assert isinstance(row["b"], float)
        assert math.copysign(1.0, row["c"]) == -1.0

    def test_missing_cells_stay_missing(self, tmp_path):
        table = ResultTable("sparse")
        table.add(x=1)
        table.add(y=2)
        path = tmp_path / "s.jsonl"
        table.save(path)
        loaded = ResultTable.load(path)
        assert "y" not in loaded.rows[0] and "x" not in loaded.rows[1]
        assert loaded.column("x") == [1, None]
        assert loaded.to_csv() == table.to_csv()
        assert loaded.render() == table.render()

    def test_empty_table_round_trips(self, tmp_path):
        table = ResultTable("empty", columns=["a", "b"])
        path = tmp_path / "e.jsonl"
        table.save(path)
        loaded = ResultTable.load(path)
        assert loaded.columns == ["a", "b"] and len(loaded) == 0

    def test_saved_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        demo_table().save(a, fingerprint="f" * 64)
        demo_table().save(b, fingerprint="f" * 64)
        assert a.read_bytes() == b.read_bytes()


class TestFingerprint:
    def test_matching_fingerprint_loads(self, tmp_path):
        fp = fingerprint_of({"seed": 7, "shape": [6, 6]})
        path = tmp_path / "f.jsonl"
        demo_table().save(path, fingerprint=fp)
        assert len(ResultTable.load(path, fingerprint=fp)) == 3
        # No expectation -> no check.
        assert len(ResultTable.load(path)) == 3

    def test_mismatched_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "f.jsonl"
        demo_table().save(path, fingerprint=fingerprint_of({"seed": 7}))
        with pytest.raises(FingerprintMismatchError, match="different sweep"):
            ResultTable.load(path, fingerprint=fingerprint_of({"seed": 8}))

    def test_fingerprint_is_canonical(self):
        assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of({"b": 2, "a": 1})
        assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})


class TestRejection:
    def test_unknown_schema_version(self, tmp_path):
        path = tmp_path / "v.jsonl"
        demo_table().save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = RESULT_TABLE_SCHEMA + 99
        lines[0] = json_line(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaVersionError, match="schema version"):
            ResultTable.load(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json_line({"format": "something-else", "schema": 1}) + "\n")
        with pytest.raises(TablePersistenceError, match=RESULT_TABLE_FORMAT):
            ResultTable.load(path)

    def test_garbage_and_empty_files(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TablePersistenceError, match="invalid JSONL"):
            ResultTable.load(path)
        path.write_text("")
        with pytest.raises(TablePersistenceError, match="empty file"):
            ResultTable.load(path)

    def test_truncated_final_line_rejected_unless_asked(self, tmp_path):
        path = tmp_path / "t.jsonl"
        demo_table().save(path)
        content = path.read_text()
        path.write_text(content[:-5])  # cut mid-row, no trailing newline
        with pytest.raises(TablePersistenceError, match="truncated"):
            ResultTable.load(path)
        header, rows, clean = read_jsonl(path, drop_partial_tail=True)
        assert header["format"] == RESULT_TABLE_FORMAT
        assert len(rows) == 2  # the ragged third row was dropped
        assert clean < len(content.encode())
