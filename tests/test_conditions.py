"""Property P2: Theorems 1/2 agree with the oracle, exactly.

The paper's central theoretical claim: the merged-region condition is
*sufficient and necessary* for minimal-path existence.  We verify it
exhaustively on small meshes and by Monte Carlo on larger ones, in both
2-D (Theorem 1) and 3-D (Theorem 2), for all direction classes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import extract_mccs
from repro.core.conditions import (
    ConditionEvaluator,
    blocking_walls,
    minimal_path_exists_lemma1,
    minimal_path_exists_theorem,
)
from repro.core.labelling import label_grid
from repro.core.walls import build_walls
from repro.mesh.regions import mask_of_cells
from tests.conftest import oracle_feasible, random_mask


class TestLemma1Exactness2D:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_small(self, seed, count):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), count)
        lab = label_grid(mask)
        walls = build_walls(extract_mccs(lab))
        open_mask = ~mask
        safe_cells = [tuple(int(x) for x in c) for c in np.argwhere(lab.safe_mask)]
        for s in safe_cells:
            for d in safe_cells:
                if any(a > b for a, b in zip(s, d, strict=True)):
                    continue
                from repro.routing.oracle import minimal_path_exists

                want = minimal_path_exists(open_mask, s, d)
                got = minimal_path_exists_lemma1(walls, s, d, lab)
                assert want == got, (s, d, np.argwhere(mask).tolist())

    def test_blocking_walls_witness(self):
        # Full wall: no minimal path, witnessed by a blocking wall.
        mask = mask_of_cells([(x, 3) for x in range(6)], (6, 6))
        lab = label_grid(mask)
        walls = build_walls(extract_mccs(lab))
        assert not minimal_path_exists_lemma1(walls, (0, 0), (5, 5), lab)
        assert blocking_walls(walls, (0, 0), (5, 5))

    def test_requires_canonical(self):
        lab = label_grid(np.zeros((6, 6), dtype=bool))
        with pytest.raises(ValueError):
            minimal_path_exists_lemma1([], (3, 3), (0, 0), lab)

    def test_rejects_unsafe_endpoints(self):
        mask = mask_of_cells([(2, 3), (3, 2)], (6, 6))
        lab = label_grid(mask)  # (2,2) is useless
        walls = build_walls(extract_mccs(lab))
        with pytest.raises(ValueError):
            minimal_path_exists_lemma1(walls, (2, 2), (5, 5), labelled=lab)


class TestTheoremAllClasses:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_2d_arbitrary_pairs(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (7, 7), int(rng.integers(1, 12)))
        evaluator = ConditionEvaluator(mask)
        for _ in range(12):
            s = tuple(int(v) for v in rng.integers(0, 7, 2))
            d = tuple(int(v) for v in rng.integers(0, 7, 2))
            if mask[s] or mask[d] or not evaluator.endpoint_safe(s, d):
                continue
            assert evaluator.exists(s, d) == oracle_feasible(mask, s, d)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_3d_arbitrary_pairs(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(1, 15)))
        evaluator = ConditionEvaluator(mask)
        for _ in range(12):
            s = tuple(int(v) for v in rng.integers(0, 5, 3))
            d = tuple(int(v) for v in rng.integers(0, 5, 3))
            if mask[s] or mask[d] or not evaluator.endpoint_safe(s, d):
                continue
            assert evaluator.exists(s, d) == oracle_feasible(mask, s, d), (
                s, d, np.argwhere(mask).tolist()
            )

    def test_theorem_wrapper(self, rng):
        mask = mask_of_cells([(2, 2, 2)], (5, 5, 5))
        assert minimal_path_exists_theorem(mask, (0, 0, 0), (4, 4, 4))
        # Column blocked: x,y fixed, fault directly between.
        assert not minimal_path_exists_theorem(mask, (2, 2, 0), (2, 2, 4))


class TestKnownScenes:
    def test_fig4a_barrier_from_left_edge(self):
        # A staircase anchored at the left edge blocks every column it
        # shadows (paper Figure 4(a) style); s and d stay safe.
        cells = [(0, 6), (1, 5), (2, 4)]
        mask = mask_of_cells(cells, (9, 9))
        lab = label_grid(mask)
        walls = build_walls(extract_mccs(lab))
        assert lab.safe_mask[0, 0] and lab.safe_mask[2, 8]
        assert not minimal_path_exists_lemma1(walls, (0, 0), (2, 8), lab)
        # Destinations beyond the barrier's columns remain reachable.
        assert minimal_path_exists_lemma1(walls, (0, 0), (8, 8), lab)

    def test_partial_staircase_passable(self):
        cells = [(1, 4), (2, 3), (3, 2)]
        mask = mask_of_cells(cells, (9, 9))
        lab = label_grid(mask)
        walls = build_walls(extract_mccs(lab))
        assert minimal_path_exists_lemma1(walls, (0, 0), (8, 8), lab)

    def test_fig5_routable(self, fig5_mask):
        evaluator = ConditionEvaluator(fig5_mask)
        assert evaluator.exists((0, 0, 0), (9, 9, 9))
        assert evaluator.exists((9, 9, 9), (0, 0, 0))

    def test_column_trap_3d(self):
        # s directly below a fault with x=y fixed: infeasible.
        mask = mask_of_cells([(2, 2, 3)], (6, 6, 6))
        evaluator = ConditionEvaluator(mask)
        assert not evaluator.exists((2, 2, 0), (2, 2, 5))
        # One axis of freedom restores feasibility.
        assert evaluator.exists((2, 1, 0), (2, 2, 5))

    def test_evaluator_caches_classes(self):
        mask = mask_of_cells([(3, 3)], (6, 6))
        evaluator = ConditionEvaluator(mask)
        evaluator.exists((0, 0), (5, 5))
        evaluator.exists((5, 5), (0, 0))
        evaluator.exists((0, 5), (5, 0))
        assert len(evaluator._cache) == 3
