"""Property P3: the MCC-guided router is minimal and stuck-free."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import label_grid
from repro.mesh.coords import manhattan
from repro.mesh.regions import mask_of_cells
from repro.routing.engine import AdaptiveRouter, explore_all_choices, route_adaptive
from repro.routing.policies import (
    DiagonalPolicy,
    FixedOrderPolicy,
    RandomPolicy,
    make_policy,
)
from tests.conftest import oracle_feasible, random_mask


class TestBasics:
    def test_fault_free_routes_minimally(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        result = route_adaptive(mask, (0, 0, 0), (5, 5, 5))
        assert result.delivered and result.is_minimal()
        assert result.hops == 15

    def test_path_is_monotone_per_direction_class(self):
        mask = np.zeros((6, 6), dtype=bool)
        result = route_adaptive(mask, (5, 5), (0, 0))
        assert result.delivered
        assert result.hops == 10

    def test_infeasible_reported(self):
        mask = mask_of_cells([(2, 2, 3)], (6, 6, 6))
        result = route_adaptive(mask, (2, 2, 0), (2, 2, 5))
        assert not result.delivered and not result.feasible
        assert result.reason == "infeasible"

    def test_unsafe_endpoint_reported(self):
        mask = mask_of_cells([(2, 3), (3, 2)], (6, 6))
        router = AdaptiveRouter(mask, mode="mcc")
        result = router.route((2, 2), (5, 5))  # (2,2) is useless
        assert not result.delivered
        assert result.reason == "endpoint inside fault region"

    def test_faulty_endpoint_fails_cleanly(self):
        # A failed result, not an exception: dynamic-fault DES workloads
        # route to endpoints that died mid-run.
        mask = mask_of_cells([(0, 0)], (4, 4))
        result = route_adaptive(mask, (0, 0), (3, 3))
        assert not result.delivered and result.feasible is False
        assert result.reason == "endpoint faulty"
        assert result.path == [(0, 0)]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveRouter(np.zeros((3, 3), dtype=bool), mode="magic")


class TestMinimalityAllModes:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mcc_routes_whenever_oracle_feasible_2d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (8, 8), int(rng.integers(1, 12)))
        router = AdaptiveRouter(mask, mode="mcc", policy=RandomPolicy(seed))
        for _ in range(8):
            s = tuple(int(v) for v in rng.integers(0, 8, 2))
            d = tuple(int(v) for v in rng.integers(0, 8, 2))
            if mask[s] or mask[d]:
                continue
            from repro.mesh.orientation import Orientation

            o = Orientation.for_pair(s, d, (8, 8))
            lab_o = label_grid(mask, o)
            if lab_o.unsafe_mask[o.map_coord(s)] or lab_o.unsafe_mask[o.map_coord(d)]:
                continue
            want = oracle_feasible(mask, s, d)
            result = router.route(s, d)
            assert result.delivered == want, (s, d)
            if want:
                assert result.hops == manhattan(s, d)
                assert result.path[0] == s and result.path[-1] == d

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_mcc_routes_whenever_oracle_feasible_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(1, 14)))
        router = AdaptiveRouter(mask, mode="mcc", policy=DiagonalPolicy())
        for _ in range(6):
            s = tuple(int(v) for v in rng.integers(0, 5, 3))
            d = tuple(int(v) for v in rng.integers(0, 5, 3))
            if mask[s] or mask[d]:
                continue
            from repro.mesh.orientation import Orientation

            o = Orientation.for_pair(s, d, (5, 5, 5))
            lab_o = label_grid(mask, o)
            if lab_o.unsafe_mask[o.map_coord(s)] or lab_o.unsafe_mask[o.map_coord(d)]:
                continue
            want = oracle_feasible(mask, s, d)
            result = router.route(s, d)
            assert result.delivered == want
            if want:
                assert result.is_minimal()

    def test_oracle_mode_reference(self, rng):
        mask = random_mask(rng, (7, 7), 8)
        router = AdaptiveRouter(mask, mode="oracle")
        for _ in range(15):
            s = tuple(int(v) for v in rng.integers(0, 7, 2))
            d = tuple(int(v) for v in rng.integers(0, 7, 2))
            if mask[s] or mask[d]:
                continue
            result = router.route(s, d)
            assert result.delivered == oracle_feasible(mask, s, d)
            if result.delivered:
                assert result.hops == manhattan(s, d)

    def test_blind_mode_can_fail_where_mcc_succeeds(self):
        # Dead-end pocket along the bottom row: x-first blind routing
        # walks in and gets cornered; the MCC labels steer around it.
        mask = mask_of_cells([(4, 0), (4, 1), (3, 2), (2, 2)], (8, 8))
        blind = AdaptiveRouter(mask, mode="blind", policy=FixedOrderPolicy((0, 1)))
        mcc = AdaptiveRouter(mask, mode="mcc", policy=FixedOrderPolicy((0, 1)))
        d = (7, 7)
        blind_result = blind.route((0, 0), d)
        mcc_result = mcc.route((0, 0), d)
        assert mcc_result.delivered and mcc_result.is_minimal()
        assert not blind_result.delivered
        assert blind_result.stuck_at is not None


class TestAdversarialStuckFreedom:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_every_adaptive_choice_delivers_2d(self, seed):
        """Algorithm 3 step 2(c): ANY fully adaptive selection works."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (7, 7), int(rng.integers(1, 10)))
        router = AdaptiveRouter(mask, mode="mcc")
        lab = label_grid(mask)
        safe = np.argwhere(lab.safe_mask)
        for _ in range(6):
            i, j = rng.integers(0, safe.shape[0], 2)
            s = tuple(int(c) for c in np.minimum(safe[i], safe[j]))
            d = tuple(int(c) for c in np.maximum(safe[i], safe[j]))
            if not (lab.safe_mask[s] and lab.safe_mask[d]):
                continue
            if not oracle_feasible(mask, s, d):
                continue
            ok, explored = explore_all_choices(router, s, d)
            assert ok, (s, d, np.argwhere(mask).tolist())

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_every_adaptive_choice_delivers_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(1, 12)))
        router = AdaptiveRouter(mask, mode="mcc")
        lab = label_grid(mask)
        safe = np.argwhere(lab.safe_mask)
        for _ in range(5):
            i, j = rng.integers(0, safe.shape[0], 2)
            s = tuple(int(c) for c in np.minimum(safe[i], safe[j]))
            d = tuple(int(c) for c in np.maximum(safe[i], safe[j]))
            if not (lab.safe_mask[s] and lab.safe_mask[d]):
                continue
            if not oracle_feasible(mask, s, d):
                continue
            ok, _ = explore_all_choices(router, s, d)
            assert ok


class TestPolicies:
    def test_fixed_order(self):
        policy = FixedOrderPolicy((2, 1, 0))
        assert policy.choose([0, 2], (0, 0, 0), (5, 5, 5)) == 2

    def test_fixed_order_fallback(self):
        policy = FixedOrderPolicy((0, 1))
        assert policy.choose([3], (0,) * 4, (5,) * 4) == 3

    def test_diagonal_picks_largest_remaining(self):
        policy = DiagonalPolicy()
        assert policy.choose([0, 1], (0, 0), (2, 7)) == 1

    def test_random_policy_deterministic_with_seed(self):
        a = RandomPolicy(42)
        b = RandomPolicy(42)
        picks_a = [a.choose([0, 1, 2], (0, 0, 0), (5, 5, 5)) for _ in range(20)]
        picks_b = [b.choose([0, 1, 2], (0, 0, 0), (5, 5, 5)) for _ in range(20)]
        assert picks_a == picks_b

    def test_factory(self):
        assert isinstance(make_policy("fixed"), FixedOrderPolicy)
        assert isinstance(make_policy("random", 1), RandomPolicy)
        assert isinstance(make_policy("diagonal"), DiagonalPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")
