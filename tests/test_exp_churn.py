"""Tests for the T6 churn experiment (repro.experiments.exp_churn)."""

import numpy as np

from repro.experiments.exp_churn import evaluate_pattern, run_churn
from repro.parallel.sharding import (
    CLI_ALIASES,
    CLI_RUNNERS,
    EXPERIMENTS,
    SweepSpec,
    plan_tasks,
    run_sweep,
)


def tiny_spec(**overrides):
    kwargs = dict(
        experiment="churn",
        shape=(6, 6, 6),
        fault_counts=(3, 9),
        trials=2,
        seed=17,
        params={"pairs": 15, "epochs": 4, "churn": 2},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestRegistration:
    def test_registered_everywhere(self):
        assert "churn" in EXPERIMENTS
        assert "churn" in CLI_RUNNERS
        assert CLI_ALIASES["t6"] == "churn"

    def test_cli_workload_flags(self):
        assert CLI_RUNNERS["churn"][1] == (
            "pairs", "epochs", "churn", "mode", "des"
        )
        assert "churn_des" in EXPERIMENTS


class TestEvaluatePattern:
    def test_counters_are_consistent(self):
        spec = tiny_spec()
        task = plan_tasks(spec)[0]
        record = evaluate_pattern(spec, task)
        assert record["pairs"] == (
            record["delivered"] + record["infeasible"] + record["stuck"]
        )
        # 4 epochs, every one applies an event on a 6^3 mesh.
        assert record["events"] == 4
        assert record["pairs"] > 0
        assert record["evicted"] + record["retained"] >= 0

    def test_deterministic_per_task(self):
        spec = tiny_spec()
        task = plan_tasks(spec)[0]
        assert evaluate_pattern(spec, task) == evaluate_pattern(spec, task)


class TestSweep:
    def test_shard_and_worker_invariance(self):
        spec = tiny_spec()
        base = run_sweep(spec, workers=1, shards=1)
        for workers, shards in ((1, 3), (2, 2), (1, 5)):
            other = run_sweep(spec, workers=workers, shards=shards)
            assert other.render() == base.render()
            assert other.to_csv() == base.to_csv()

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        clean = run_sweep(spec, workers=1)
        journal = tmp_path / "t6.jsonl"
        full = run_sweep(spec, workers=1, checkpoint=str(journal))
        assert full.render() == clean.render()
        lines = journal.read_text().splitlines(keepends=True)
        # Truncate to header + one record and resume.
        journal.write_text("".join(lines[:2]))
        resumed = run_sweep(spec, workers=1, checkpoint=str(journal))
        assert resumed.render() == clean.render()

    def test_run_churn_wrapper(self):
        table = run_churn(
            (5, 5), [2], pairs=8, epochs=2, churn=1, trials=1, seed=3
        )
        rows = table.rows
        assert len(rows) == 1
        assert 0.0 <= rows[0]["delivered"] <= 1.0
        assert rows[0]["pairs"] > 0


class TestDESVariant:
    def des_spec(self, **overrides):
        kwargs = dict(
            experiment="churn_des",
            shape=(6, 6, 6),
            fault_counts=(3, 8),
            trials=2,
            seed=23,
            params={"pairs": 8, "epochs": 3, "churn": 2},
        )
        kwargs.update(overrides)
        return SweepSpec(**kwargs)

    def test_counters_consistent_and_des_tracks_mcc(self):
        from repro.experiments.exp_churn import evaluate_des_pattern

        spec = self.des_spec()
        task = plan_tasks(spec)[0]
        record = evaluate_des_pattern(spec, task)
        assert record["pairs"] == (
            record["des_delivered"]
            + record["des_infeasible"]
            + record["des_stuck"]
        )
        assert record["pairs"] > 0 and record["events"] == 3
        # The distributed walker and the centralized MCC service are
        # both exact, so they must agree pair-for-pair under churn.
        assert record["agree"] == record["pairs"]
        assert record["rfb_delivered"] <= record["mcc_delivered"]

    def test_shard_and_worker_invariance(self):
        spec = self.des_spec()
        base = run_sweep(spec, workers=1, shards=1)
        for workers, shards in ((1, 3), (2, 2)):
            other = run_sweep(spec, workers=workers, shards=shards)
            assert other.to_csv() == base.to_csv()

    def test_run_churn_des_wrapper(self):
        table = run_churn(
            (5, 5), [2], pairs=6, epochs=2, churn=1, trials=1, seed=3,
            des=True,
        )
        row = table.rows[0]
        assert {"des", "mcc", "rfb", "agree_des_mcc"} <= set(table.columns)
        assert 0.0 <= row["des"] <= 1.0

    def test_rfb_mode_runs(self):
        table = run_churn(
            (6, 6), [3], pairs=6, epochs=2, churn=1, trials=1, seed=5,
            mode="rfb",
        )
        assert "model rfb" in table.title
        assert 0.0 <= table.rows[0]["delivered"] <= 1.0


class TestChurnSemantics:
    def test_fault_count_oscillates_not_drifts(self):
        # Alternating inject/repair of the same churn size keeps the
        # fault population around its seed value; with churn=2 over 4
        # epochs the count never drifts by more than 2.
        from repro.experiments.workloads import random_fault_mask
        from repro.online import OnlineRoutingService

        rng = np.random.default_rng(5)
        mask = random_fault_mask((6, 6, 6), 9, rng=rng)
        online = OnlineRoutingService(mask)
        start = int(online.fault_mask.sum())
        for epoch in range(4):
            current = online.fault_mask
            pool = np.argwhere(~current if epoch % 2 == 0 else current)
            picks = rng.choice(len(pool), size=2, replace=False)
            cells = [tuple(int(v) for v in pool[i]) for i in picks]
            if epoch % 2 == 0:
                online.inject(cells)
            else:
                online.repair(cells)
            assert abs(int(online.fault_mask.sum()) - start) <= 2
