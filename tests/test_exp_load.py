"""Tests for the T7 contended-link load sweep (exp_load)."""

import os

import numpy as np
import pytest

from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.exp_load import (
    MODES,
    poisson_schedule,
    run_load_sweep,
)
from repro.mesh.topology import Mesh2D

TINY = dict(
    shape=(6, 6),
    fault_counts=[2, 4],
    trials=2,
    rates=[0.3, 1.0],
    duration=12,
    seed=7,
)


@pytest.fixture(scope="module")
def tiny_table():
    return run_load_sweep(**TINY)


class TestPoissonSchedule:
    def test_deterministic_and_canonical(self):
        safe = np.ones((6, 6), dtype=bool)
        a = poisson_schedule(np.random.default_rng(3), 1.0, 20.0, safe)
        b = poisson_schedule(np.random.default_rng(3), 1.0, 20.0, safe)
        assert a == b
        assert len(a) > 0
        for t, s, d in a:
            assert 0.0 < t <= 20.0
            assert all(x <= y for x, y in zip(s, d, strict=True))
            assert s != d

    def test_arrival_times_increase(self):
        safe = np.ones((5, 5), dtype=bool)
        times = [t for t, _s, _d in poisson_schedule(np.random.default_rng(1), 2.0, 10.0, safe)]
        assert times == sorted(times)

    def test_rate_scales_arrivals(self):
        safe = np.ones((6, 6), dtype=bool)
        slow = poisson_schedule(np.random.default_rng(5), 0.2, 100.0, safe)
        fast = poisson_schedule(np.random.default_rng(5), 2.0, 100.0, safe)
        assert len(fast) > len(slow)


class TestLoadTable:
    def test_columns_and_shape(self, tiny_table):
        csv = tiny_table.to_csv()
        header = csv.splitlines()[0].split(",")
        for m in MODES:
            for col in (f"delivered_{m}", f"p50_{m}", f"p95_{m}", f"p99_{m}",
                        f"thr_{m}", f"qpeak_{m}", f"sat_{m}"):
                assert col in header
        for col in ("faults", "rate", "offered", "des_delivered", "des_p50",
                    "des_p99", "des_thr"):
            assert col in header
        # One row per (fault count, rate).
        assert len(csv.splitlines()) == 1 + len(TINY["fault_counts"]) * len(TINY["rates"])

    def test_saturation_is_max_throughput(self, tiny_table):
        rows = tiny_table.rows
        for m in MODES:
            for faults in TINY["fault_counts"]:
                group = [r for r in rows if r["faults"] == faults]
                assert group
                sats = {r[f"sat_{m}"] for r in group}
                assert len(sats) == 1
                assert sats.pop() == pytest.approx(
                    max(r[f"thr_{m}"] for r in group)
                )

    def test_offered_traffic_present(self, tiny_table):
        assert sum(r["offered"] for r in tiny_table.rows) > 0
        assert sum(r["des_delivered"] for r in tiny_table.rows) > 0


class TestInvariance:
    def test_shard_and_worker_invariance(self, tiny_table):
        base = tiny_table.to_csv()
        for shards in (2, 3):
            got = run_load_sweep(**TINY, workers=2, shards=shards).to_csv()
            assert got == base

    def test_checkpoint_resume_byte_identical(self, tiny_table, tmp_path):
        base = tiny_table.to_csv()
        ck = os.path.join(tmp_path, "t7.jsonl")
        assert run_load_sweep(**TINY, checkpoint=ck).to_csv() == base
        with open(ck) as fh:
            lines = fh.readlines()
        with open(ck, "w") as fh:
            fh.writelines(lines[:2])  # header + one pattern record
        assert run_load_sweep(**TINY, checkpoint=ck, workers=2).to_csv() == base


class TestSessionLatency:
    def _pipe(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        return DistributedMCCPipeline(Mesh2D(5), mask).build()

    def test_submit_at_delays_arrival(self):
        pipe = self._pipe()
        t0 = pipe.net.sim.now
        handle = pipe.submit((0, 0), (4, 4), at=5.0)
        pipe.drain()
        record = handle.result
        assert record["status"] == "delivered"
        assert record["started_at"] == pytest.approx(t0 + 5.0)
        assert record["latency"] == pytest.approx(
            record["completed_at"] - record["started_at"]
        )
        assert record["latency"] > 0

    def test_contended_sessions_match_uncontended_outcomes(self):
        """Queueing delays messages but never reorders one walker's
        decisions: statuses and paths are identical, latency grows."""
        mask = np.zeros((5, 5), dtype=bool)
        mask[1, 1] = True
        pairs = [((0, 0), (3, 3)), ((0, 1), (4, 4)), ((1, 0), (4, 2))]

        def run(capacity):
            pipe = DistributedMCCPipeline(Mesh2D(5), mask).build()
            pipe.net.set_link_capacity(capacity)
            handles = [pipe.submit(s, d, at=0.0) for s, d in pairs]
            pipe.drain()
            return [
                (h.result["status"], h.result["path"], h.result["latency"])
                for h in handles
            ]

        free = run(None)
        tight = run(1)
        assert [(s, p) for s, p, _l in free] == [(s, p) for s, p, _l in tight]
        assert all(
            lt >= lf for (_, _, lf), (_, _, lt) in zip(free, tight, strict=True)
        )

    def test_infinite_at_rejected(self):
        pipe = self._pipe()
        with pytest.raises(ValueError):
            pipe.submit((0, 0), (4, 4), at=float("nan"))
