"""Hypothesis lockstep suite: CalendarEventQueue == HeapEventQueue.

The calendar queue (the production ``EventQueue``) and the original
binary heap are driven through *identical* op sequences and must agree
on everything observable: pop order (including ``seq`` tie-breaking),
peeked times, cancel semantics (cancel-after-fire and double-cancel are
no-ops), ``__len__``/``__bool__`` accounting, and input validation.
Handles are opaque and intentionally differ in type between the two
implementations (heap: int, calendar: the entry list), so the driver
cancels through each queue's own returned handle.

Time distributions are chosen adversarially for a bucketed design:
all-equal bursts (one giant bucket), huge spreads (epoch heap does all
the work, epoch-cap clamping), and values clustered just either side of
bucket boundaries (floor sensitivity).  Separate deterministic tests
force the width-resize machinery both directions mid-drain.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit.event_queue import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
)
from repro.util.rng import make_rng

# ---------------------------------------------------------------------------
# Adversarial time distributions
# ---------------------------------------------------------------------------

# Dense, fractional times within a few bucket widths of zero.
_dense_times = st.floats(
    min_value=0.0, max_value=16.0, allow_nan=False, allow_infinity=False
)

# All-equal bursts: many events collapse onto one timestamp, so ordering
# is decided purely by the seq tie-break.
_equal_times = st.sampled_from([0.0, 1.0, 2.5])

# Huge spreads: exercises the epoch min-heap and the far-future epoch
# cap (times up to 1e30 overflow a width-1 epoch well past _EPOCH_CAP).
_spread_times = st.floats(
    min_value=0.0, max_value=1e30, allow_nan=False, allow_infinity=False
)

# Bucket-boundary clusters: integer epochs ± a hair, where a wrong
# floor() or an off-by-one bucket assignment would reorder events.
_boundary_times = st.builds(
    lambda k, eps: float(k) + eps,
    st.integers(min_value=0, max_value=8),
    st.sampled_from([0.0, 1e-9, 0.5, 1.0 - 1e-9]),
)

_times = st.one_of(_dense_times, _equal_times, _spread_times, _boundary_times)

# Op alphabet for the lockstep driver.  ``cancel`` carries an index into
# the list of handles issued so far (modulo its length), so it hits
# pending, already-fired, and already-cancelled handles alike.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.tuples(st.just("pop"), st.just(None)),
        st.tuples(st.just("peek"), st.just(None)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
        st.tuples(st.just("len"), st.just(None)),
    ),
    max_size=120,
)


def _run_lockstep(ops, cal=None):
    """Apply one op sequence to both queues, asserting agreement."""
    cal = CalendarEventQueue() if cal is None else cal
    heap = HeapEventQueue()
    cal_handles: list = []
    heap_handles: list = []
    tag = 0
    for op, arg in ops:
        if op == "push":
            # Actions are never called by the queues, so plain int tags
            # make pop results directly comparable across queues.
            cal_handles.append(cal.push(arg, tag))
            heap_handles.append(heap.push(arg, tag))
            tag += 1
        elif op == "pop":
            assert cal.pop_event() == heap.pop_event()
        elif op == "peek":
            assert cal.peek_time() == heap.peek_time()
        elif op == "cancel":
            if cal_handles:
                i = arg % len(cal_handles)
                cal.cancel(cal_handles[i])
                heap.cancel(heap_handles[i])
            else:
                # Unknown/foreign handles must be no-ops on both.
                cal.cancel(arg)
                heap.cancel(arg)
        elif op == "len":
            assert len(cal) == len(heap)
            assert bool(cal) == bool(heap)
    # Full drain: the complete remaining (time, seq, action) streams
    # must match, then both report empty.
    while True:
        a = cal.pop_event()
        b = heap.pop_event()
        assert a == b
        if a is None:
            break
    assert len(cal) == 0 and len(heap) == 0
    assert not cal and not heap


class TestLockstep:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_random_interleavings(self, ops):
        _run_lockstep(ops)

    @given(_ops, st.sampled_from([2.0**-8, 0.25, 1.0, 64.0]))
    @settings(max_examples=60, deadline=None)
    def test_width_independence(self, ops, width):
        # Pop order is a function of (time, seq) only; the bucket width
        # must never be observable.
        _run_lockstep(ops, cal=CalendarEventQueue(width=width))

    @given(st.lists(_equal_times, min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_equal_time_bursts_fifo(self, times):
        # Pure tie-break stress: every pop must come out in push order
        # within a timestamp.
        _run_lockstep([("push", t) for t in times])


class TestCancelSemantics:
    @given(_times, _times)
    @settings(max_examples=50, deadline=None)
    def test_cancel_after_fire_is_noop(self, t_fire, t_keep):
        cal = CalendarEventQueue()
        heap = HeapEventQueue()
        hc = [cal.push(t_fire, 0), cal.push(t_keep, 1)]
        hh = [heap.push(t_fire, 0), heap.push(t_keep, 1)]
        a = cal.pop_event()
        assert a == heap.pop_event()
        # Cancel whichever handle actually fired (the popped seq is its
        # index): the surviving event must be untouched on both queues.
        fired = a[1]
        cal.cancel(hc[fired])
        heap.cancel(hh[fired])
        assert len(cal) == len(heap) == 1
        assert cal.pop_event() == heap.pop_event()
        assert cal.pop_event() is None and heap.pop_event() is None

    def test_double_cancel_counts_once(self):
        cal = CalendarEventQueue()
        heap = HeapEventQueue()
        hc = cal.push(1.0, 0)
        hh = heap.push(1.0, 0)
        cal.push(2.0, 1)
        heap.push(2.0, 1)
        for _ in range(3):
            cal.cancel(hc)
            heap.cancel(hh)
            assert len(cal) == len(heap) == 1
        assert cal.pop_event() == heap.pop_event() == (2.0, 1, 1)

    def test_foreign_handles_are_noops(self):
        cal = CalendarEventQueue()
        heap = HeapEventQueue()
        cal.push(1.0, 0)
        heap.push(1.0, 0)
        # Junk plausible for either handle type: ints/None/str for both;
        # malformed lists only make sense against the calendar queue
        # (heap handles are ints and its cancel hashes them).
        for junk in (12345, -1, None, "handle"):
            cal.cancel(junk)
            heap.cancel(junk)
        for junk in ([1.0], [1.0, 0, None, 4], [1.0, 0, None]):
            cal.cancel(junk)
        assert len(cal) == len(heap) == 1

    def test_handle_from_another_queue_instance_is_noop(self):
        # The provenance tag makes cross-instance cancels true no-ops:
        # queue B must not null out an entry owned by queue A, and an
        # entry-shaped caller list must never be mutated.
        a = CalendarEventQueue()
        b = CalendarEventQueue()
        ha = a.push(1.0, 0)
        b.push(1.0, 0)
        b.cancel(ha)
        assert len(a) == 1
        assert a.pop_event() == (1.0, 0, 0)
        lookalike = [1.0, 0, "action", b]
        a.cancel(lookalike)
        assert lookalike[2] == "action"


class TestValidation:
    @pytest.mark.parametrize("bad", [float("nan"), -1.0, -1e-12, math.inf])
    def test_both_reject_bad_times(self, bad):
        cal = CalendarEventQueue()
        heap = HeapEventQueue()
        with pytest.raises(ValueError):
            cal.push(bad, 0)
        with pytest.raises(ValueError):
            heap.push(bad, 0)
        # A rejected push must leave no residue in either queue.
        assert len(cal) == len(heap) == 0
        assert cal.pop_event() is None and heap.pop_event() is None

    def test_calendar_rejects_bad_widths(self):
        for bad in (0.0, -1.0, float("nan"), math.inf):
            with pytest.raises(ValueError):
                CalendarEventQueue(width=bad)


class TestResize:
    def _lockstep_drain(self, cal, heap):
        while True:
            a = cal.pop_event()
            b = heap.pop_event()
            assert a == b
            if a is None:
                return

    def test_narrow_width_widens_mid_drain(self):
        # Width 2^-10 over integer-ish times -> chronically singleton
        # buckets with a big backlog: the widen heuristic must fire
        # (needs > _RESIZE_CHECK drained buckets and backlog > 64)
        # without disturbing the pop stream.
        rng = make_rng(2005)
        cal = CalendarEventQueue(width=2.0**-10)
        heap = HeapEventQueue()
        for tag in range(600):
            t = int(rng.integers(0, 4000)) * 0.25
            cal.push(t, tag)
            heap.push(t, tag)
        for _ in range(300):
            assert cal.pop_event() == heap.pop_event()
        assert cal._width > 2.0**-10  # heuristic actually fired
        # Keep pushing while draining: post-resize epochs must still
        # merge correctly with the new width.
        for tag in range(600, 900):
            t = int(rng.integers(0, 4000)) * 0.25
            cal.push(t, tag)
            heap.push(t, tag)
        self._lockstep_drain(cal, heap)

    def test_wide_width_narrows_mid_drain(self):
        # Width 2^10 over dense times -> hundreds of events per bucket:
        # the halve heuristic (avg > _MAX_AVG) must fire and compact
        # cancelled entries away while rebucketing.
        rng = make_rng(7)
        cal = CalendarEventQueue(width=2.0**10)
        heap = HeapEventQueue()
        cal_handles, heap_handles = [], []
        for tag in range(40_000):
            t = float(rng.random()) * 70_000.0
            cal_handles.append(cal.push(t, tag))
            heap_handles.append(heap.push(t, tag))
        for i in range(0, 40_000, 5):
            cal.cancel(cal_handles[i])
            heap.cancel(heap_handles[i])
        start_width = cal._width
        self._lockstep_drain(cal, heap)
        assert cal._width < start_width  # heuristic actually fired


def test_default_export_is_calendar():
    # The Simulator fast path type-checks ``type(queue) is EventQueue``;
    # this alias is the contract it rests on.
    assert EventQueue is CalendarEventQueue
