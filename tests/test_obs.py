"""Tests for :mod:`repro.obs`: tracer, metrics, exporters, integration.

The integration tests run the real T4-small sweep with ``trace=`` and
pin the acceptance properties: the Perfetto JSON validates against the
trace-event schema, spans cover at least four layers of the stack, the
**virtual** span stream is byte-identical across worker counts and
replays, result tables are unchanged by tracing, and a run with
tracing off records exactly zero spans.

Byte-identity across runs *in one process* requires equal cache state:
the content-addressed model caches are process-global, and a warm
cache legitimately skips work (fewer kernel spans).  Tests therefore
clear the caches before every compared run — fresh-process replays are
naturally cold.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.core.model_cache import clear_labelling_cache
from repro.experiments.exp_des_routing import run_des_routing
from repro.serve.service import MetricsSnapshot
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog
from repro.util.records import check_header, read_jsonl


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing uninstalled."""
    obs.uninstall()
    yield
    obs.uninstall()


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_entry_order_and_depth(self):
        tracer = obs.Tracer()
        with tracer.span("outer", cat="a"):
            with tracer.span("inner", cat="b", k=1) as sp:
                sp.set(done=True)
        names = [s.name for s in tracer.spans]
        assert names == ["outer", "inner"]
        outer, inner = tracer.spans
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.seq < inner.seq
        assert inner.attrs == {"k": 1, "done": True}
        assert outer.t1 >= outer.t0 >= 0.0

    def test_instant_has_zero_duration_kind(self):
        tracer = obs.Tracer()
        tracer.instant("tick", cat="x", n=3)
        (mark,) = tracer.spans
        assert mark.kind == obs.INSTANT
        assert mark.attrs == {"n": 3}

    def test_module_level_span_noop_when_uninstalled(self):
        assert not obs.enabled()
        with obs.span("anything", cat="x") as sp:
            sp.set(ignored=1)  # NULL_HANDLE swallows everything
            sp.set_vt(start=0.0, end=1.0)
        assert obs.instant("tick") is None
        assert sp is obs.NULL_HANDLE

    def test_install_routes_module_level_calls(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            assert obs.enabled()
            with obs.span("work", cat="x"):
                pass
            mark = obs.instant("tick")
            assert mark is not None
        assert not obs.enabled()
        assert [s.name for s in tracer.spans] == ["work", "tick"]

    def test_traced_decorator(self):
        tracer = obs.Tracer()

        @obs.traced("f", cat="x")
        def f(a, b):
            return a + b

        assert f(1, 2) == 3  # works with tracing off
        with obs.tracing(tracer):
            assert f(3, 4) == 7
        assert [s.name for s in tracer.spans] == ["f"]

    def test_absorb_reassigns_seq_in_arrival_order(self):
        worker = obs.Tracer(track="w0")
        with worker.span("a", cat="x"):
            pass
        with worker.span("b", cat="x"):
            pass
        merged = obs.Tracer()
        with merged.span("local", cat="x"):
            pass
        merged.absorb([s.to_dict() for s in worker.spans])
        assert [s.name for s in merged.spans] == ["local", "a", "b"]
        seqs = [s.seq for s in merged.spans]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3
        assert merged.spans[1].track == "w0"


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_histogram_percentile_matches_numpy_exactly(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(1.0, size=97).tolist()
        hist = obs.Histogram("lat")
        for v in values:
            hist.observe(v)
        for q in (50, 90, 99):
            assert hist.percentile(q) == float(
                np.percentile(np.asarray(values, dtype=float), q)
            )
        assert hist.max() == max(values)
        assert obs.Histogram("empty").percentile(50) == 0.0

    def test_registry_get_or_create_and_labels(self):
        reg = obs.MetricsRegistry()
        c1 = reg.counter("msgs", kind="probe")
        c1.inc(2)
        reg.counter("msgs", kind="probe").inc()
        assert c1.value == 3
        with pytest.raises(ValueError):
            c1.inc(-1)
        g = reg.gauge("depth")
        g.update_max(4.0)
        g.update_max(2.0)
        assert g.value == 4.0
        rows = reg.rows()
        assert {r["name"] for r in rows} == {"msgs", "depth"}
        assert {"kind": "probe"} in [r["labels"] for r in rows]

    def test_metrics_jsonl_round_trip(self, tmp_path):
        reg = obs.MetricsRegistry()
        reg.counter("msgs", kind="probe").inc(5)
        reg.histogram("lat").observe(0.25)
        out = tmp_path / "metrics.jsonl"
        obs.write_metrics_jsonl(out, reg, title="smoke")
        header, rows, _clean = read_jsonl(out)
        check_header(header, out, "repro.metrics", 1)
        assert header["title"] == "smoke"
        assert {r["name"] for r in rows} == {"msgs", "lat"}
        hist_row = next(r for r in rows if r["name"] == "lat")
        assert hist_row["count"] == 1 and hist_row["p50"] == 0.25


# -- exporters ---------------------------------------------------------------


def _collect_small_trace():
    tracer = obs.Tracer(track="main")
    with tracer.span("outer", cat="a", n=1):
        with tracer.span("inner", cat="b") as sp:
            sp.set_vt(start=0.0, end=2.5)
    tracer.instant("mark", cat="a")
    return tracer


class TestPerfettoExport:
    def test_event_schema(self):
        tracer = _collect_small_trace()
        events = obs.perfetto_events(tracer.spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1 and meta[0]["name"] == "thread_name"
        complete = [e for e in events if e["ph"] == "X"]
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "pid", "tid", "ts", "dur", "args"}
            assert e["ts"] >= 0 and e["dur"] >= 0
        inner = next(e for e in complete if e["name"] == "inner")
        assert inner["args"]["vt0"] == 0.0 and inner["args"]["vt1"] == 2.5
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t" and "dur" not in instant

    def test_write_perfetto_file_shape(self, tmp_path):
        tracer = _collect_small_trace()
        out = tmp_path / "trace.json"
        count = obs.write_perfetto(out, tracer.spans)
        doc = json.loads(out.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == count

    def test_virtual_stream_strips_wall_fields_only(self):
        tracer = _collect_small_trace()
        stream = obs.virtual_stream(tracer.spans)
        assert len(stream) == len(tracer.spans)
        for d in stream:
            assert "t0" not in d and "t1" not in d
            assert {"name", "cat", "track", "seq", "depth", "kind"} <= set(d)


# -- integration: traced T4-small run ----------------------------------------


T4_KWARGS = dict(queries=4, trials=1, seed=7)


def _traced_t4(tmp_path, tag, workers):
    clear_labelling_cache()
    out = tmp_path / f"{tag}.json"
    table = run_des_routing(
        (5, 5, 5), [2, 4], workers=workers, trace=str(out), **T4_KWARGS
    )
    doc = json.loads(out.read_text())
    return table, doc["traceEvents"]


class TestTracedSweep:
    def test_perfetto_covers_four_layers_and_validates(self, tmp_path):
        _table, events = _traced_t4(tmp_path, "w1", workers=1)
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert len(cats & {"routing", "kernel", "des", "distributed", "harness"}) >= 4
        for e in events:
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            if e["ph"] == "X":
                assert e["dur"] >= 0

    def test_virtual_stream_identical_across_workers_and_replay(self, tmp_path):
        streams = {}
        for tag, workers in (("w1", 1), ("w2", 2), ("replay", 1)):
            _table, events = _traced_t4(tmp_path, tag, workers=workers)
            # Wall-clock fields (ts/dur, from per-process perf_counter
            # epochs) are the only run-dependent part of the export.
            virtual = [
                {k: v for k, v in e.items() if k not in ("ts", "dur")}
                for e in events
            ]
            streams[tag] = json.dumps(virtual, sort_keys=True)
        assert streams["w1"] == streams["w2"] == streams["replay"]

    def test_tables_unchanged_by_tracing(self, tmp_path):
        clear_labelling_cache()
        untraced = run_des_routing((5, 5, 5), [2, 4], workers=1, **T4_KWARGS)
        traced, _events = _traced_t4(tmp_path, "traced", workers=1)
        assert traced.render() == untraced.render()

    def test_zero_spans_when_disabled(self):
        tracer = obs.Tracer()
        clear_labelling_cache()
        run_des_routing((5, 5, 5), [2], workers=1, **T4_KWARGS)
        assert len(tracer) == 0 and not obs.enabled()


# -- satellite fixes ---------------------------------------------------------


class TestTraceLogRing:
    def test_ring_keeps_newest_events(self):
        log = TraceLog(limit=3)
        for i in range(7):
            log.record(float(i), "K", (0, 0), (0, 1))
        assert len(log) == 3 and log.dropped == 4
        assert [e.time for e in log.events] == [4.0, 5.0, 6.0]
        assert "evicted" in log.render()

    def test_record_emits_obs_instant_with_virtual_time(self):
        tracer = obs.Tracer()
        log = TraceLog()
        with obs.tracing(tracer):
            log.record(3.5, "probe", (0, 0), (0, 1), note="hi")
        (mark,) = tracer.spans
        assert mark.kind == obs.INSTANT and mark.name == "probe"
        assert mark.vt0 == 3.5 and mark.attrs["note"] == "hi"

    def test_render_and_filter_still_work(self):
        log = TraceLog()
        log.record(1.0, "K", (0, 0), (0, 1), note="hello")
        assert "hello" in log.render()
        assert len(log.filter("K")) == 1


class TestStatsByQuery:
    def test_on_frame_attributes_latency_to_query(self):
        stats = StatsCollector()
        stats.on_frame(1.0, query=7)
        stats.on_frame(2.0, query=7)
        stats.on_frame(5.0, query=9)
        stats.on_frame(0.5)  # untagged: overall only
        assert stats.frame_latencies == [1.0, 2.0, 5.0, 0.5]
        assert dict(stats.frame_latencies_by_query) == {7: [1.0, 2.0], 9: [5.0]}
        stats.reset()
        assert not stats.frame_latencies_by_query

    def test_publish_bridges_to_registry(self):
        stats = StatsCollector()
        stats.on_send("probe", query=3)
        stats.on_send("probe")
        stats.on_frame(2.0, query=3)
        reg = obs.MetricsRegistry()
        stats.publish(reg)
        assert reg.counter("sim_messages", kind="probe").value == 2
        assert reg.counter("sim_query_messages", query=3).value == 1
        assert reg.histogram("sim_frame_latency").percentile(50) == 2.0
        assert reg.histogram("sim_frame_latency", query=3).count == 1


def test_metrics_snapshot_publish():
    snap = MetricsSnapshot(
        requests=4,
        completed=3,
        shed=1,
        events=0,
        batches=2,
        max_batch=2,
        mean_batch=1.5,
        p50_latency=0.1,
        p99_latency=0.2,
        max_latency=0.2,
        throughput=30.0,
        epoch_lag_mean=0.0,
        epoch_lag_max=0,
        cache_hit_rate=1.0,
        epoch=0,
        queue_depth=0,
    )
    reg = obs.MetricsRegistry()
    snap.publish(reg)
    assert reg.counter("serve_requests").value == 4
    assert reg.gauge("serve_p99_latency").value == 0.2
