"""Smoke tests: the example scripts run and produce their key output."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "minimal=True" in out
        assert "MCCs: 2 (paper: 2)" in out

    def test_paper_figures(self):
        out = run_example("paper_figures.py")
        assert "FIGURE 5" in out
        assert "MCC count (paper grouping): 2" in out
        assert "feasible=False" in out  # the NO detection case

    def test_distributed_protocol_demo(self):
        out = run_example("distributed_protocol_demo.py")
        assert "matches centralized labelling: True" in out
        assert "delivered" in out

    def test_serve_demo(self):
        out = run_example("serve_demo.py")
        # The whole serving pipeline is seeded: these numbers replay.
        assert "Served 247/247" in out
        assert "epoch=4" in out
        assert "T7s serve load sweep" in out

    def test_trace_demo(self):
        out = run_example("trace_demo.py")
        # Span counts and layer coverage are virtual-order facts and
        # replay exactly; wall durations are deliberately not printed.
        assert "Trace: 24 spans across the stack" in out
        for layer in ("des", "distributed", "harness", "kernel", "routing"):
            assert layer in out
        assert "Standalone spans: ['outer', 'inner']" in out
        assert '"p50": 2.5' in out
