"""Property P1: the MCC is the *ultimate minimal* fault region.

The paper's key claim (Section 3): "no non-faulty node contained in an
MCC will be useful in a minimal routing … If there exists no minimal
routing under the MCC model, there will be absolutely no minimal
routing."  Operationally: excluding unsafe (useless/can't-reach) nodes
never changes monotone reachability between *safe* endpoints.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rfb import rfb_unsafe
from repro.core.labelling import label_grid
from repro.routing.oracle import minimal_path_exists
from tests.conftest import random_mask


class TestUnsafeExclusionPreservesReachability:
    def _check_all_pairs(self, mask: np.ndarray) -> None:
        lab = label_grid(mask)
        open_faulty = ~lab.fault_mask
        open_safe = lab.safe_mask
        cells = list(np.argwhere(lab.safe_mask))
        for a in cells:
            for b in cells:
                s, d = tuple(int(x) for x in a), tuple(int(x) for x in b)
                if any(x > y for x, y in zip(s, d, strict=True)):
                    continue
                assert minimal_path_exists(open_faulty, s, d) == (
                    minimal_path_exists(open_safe, s, d)
                ), (s, d, np.argwhere(mask).tolist())

    @given(st.integers(0, 2**32 - 1), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_exhaustive_small_2d(self, seed, count):
        rng = np.random.default_rng(seed)
        self._check_all_pairs(random_mask(rng, (5, 5), count))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_exhaustive_small_3d(self, seed):
        rng = np.random.default_rng(seed)
        self._check_all_pairs(random_mask(rng, (3, 3, 3), int(rng.integers(1, 7))))

    def test_monte_carlo_larger_3d(self, rng):
        for _ in range(10):
            mask = random_mask(rng, (8, 8, 8), 30)
            lab = label_grid(mask)
            open_faulty = ~lab.fault_mask
            open_safe = lab.safe_mask
            safe_cells = np.argwhere(lab.safe_mask)
            for _ in range(40):
                i, j = rng.integers(0, safe_cells.shape[0], 2)
                s = tuple(int(c) for c in np.minimum(safe_cells[i], safe_cells[j]))
                d = tuple(int(c) for c in np.maximum(safe_cells[i], safe_cells[j]))
                if not (lab.safe_mask[s] and lab.safe_mask[d]):
                    continue
                assert minimal_path_exists(open_faulty, s, d) == (
                    minimal_path_exists(open_safe, s, d)
                )


class TestUselessNodesAreTrulyUseless:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_no_minimal_path_through_useless(self, seed):
        """Any monotone path entering a useless node dies before a safe d."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), int(rng.integers(2, 9)))
        lab = label_grid(mask)
        useless = np.argwhere(lab.useless_mask)
        for u in useless:
            u = tuple(int(c) for c in u)
            # Every positive in-mesh neighbor of a useless node is
            # faulty or useless — the inductive step of the claim.
            for axis in range(2):
                nxt = list(u)
                nxt[axis] += 1
                if nxt[axis] < 6:
                    assert lab.status[tuple(nxt)] in (1, 2)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cant_reach_cannot_be_entered(self, seed):
        """A safe node's positive neighbor is never can't-reach."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), int(rng.integers(2, 9)))
        lab = label_grid(mask)
        for u in np.argwhere(lab.cant_reach_mask):
            u = tuple(int(c) for c in u)
            for axis in range(2):
                prv = list(u)
                prv[axis] -= 1
                if prv[axis] >= 0:
                    assert lab.status[tuple(prv)] in (1, 3)


class TestMCCInsideRFB:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mcc_subset_of_rfb_2d(self, seed):
        """Property P5: the MCC region refines the rectangular blocks."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (8, 8), int(rng.integers(1, 12)))
        mcc = label_grid(mask).unsafe_mask
        rfb = rfb_unsafe(mask)
        assert (mcc <= rfb).all()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_mcc_subset_of_rfb_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(1, 12)))
        mcc = label_grid(mask).unsafe_mask
        rfb = rfb_unsafe(mask)
        assert (mcc <= rfb).all()
