"""Tests for the sharded sweep runner (repro.parallel.sharding).

The load-bearing property: the merged table is byte-identical for any
shard count and any worker count, because every pattern owns a
positionally derived seed and the reducer consumes records in global
task order.  Covers empty shards (more shards than tasks) and
single-pattern shards, plus the multiprocessing pool path itself.

Checkpointing extends the property across process lifetimes: a sweep
killed after any prefix of completed pattern records resumes from its
journal to the same bytes (TestCheckpointResume).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.exp_success_rate import run_success_rate
from repro.parallel.sharding import (
    CHECKPOINT_SCHEMA,
    EXPERIMENTS,
    PatternTaskError,
    SweepSpec,
    evaluate_shard,
    load_checkpoint,
    partition_tasks,
    plan_tasks,
    reduce_records,
    run_sweep,
)
from repro.util.records import (
    FingerprintMismatchError,
    ResultTable,
    SchemaVersionError,
    TablePersistenceError,
    json_line,
)


def small_spec(seed=7, **overrides):
    kwargs = dict(
        experiment="success_rate",
        shape=(6, 6),
        fault_counts=(2, 5),
        trials=3,
        seed=seed,
        params={"pairs": 12},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestPlanAndPartition:
    def test_plan_is_positional_and_deterministic(self):
        a = plan_tasks(small_spec())
        b = plan_tasks(small_spec())
        assert [t.index for t in a] == list(range(6))
        assert [(t.count_index, t.count, t.trial) for t in a] == [
            (0, 2, 0), (0, 2, 1), (0, 2, 2), (1, 5, 0), (1, 5, 1), (1, 5, 2),
        ]
        for x, y in zip(a, b, strict=True):
            assert x.seed.entropy == y.seed.entropy
            assert x.seed.spawn_key == y.seed.spawn_key
            assert np.array_equal(
                x.rng().integers(0, 1 << 30, 4), y.rng().integers(0, 1 << 30, 4)
            )

    def test_seed_sequence_input_is_replayable(self):
        # SeedSequence.spawn is stateful; the runner must copy the
        # sequence so repeated run_sweep calls replay the same patterns.
        seq = np.random.SeedSequence(7)
        spec = small_spec(seed=seq)
        first = run_sweep(spec, workers=1)
        second = run_sweep(spec, workers=1)
        assert first.to_csv() == second.to_csv()
        # And the caller's sequence still spawns from its own counter
        # deterministically relative to an untouched twin.
        assert seq.n_children_spawned == 0

    def test_partition_covers_each_task_once(self):
        tasks = plan_tasks(small_spec())
        for shards in (1, 2, 3, 4, 10):
            parts = partition_tasks(tasks, shards)
            assert len(parts) == shards
            flat = sorted(t.index for part in parts for t in part)
            assert flat == [t.index for t in tasks]
        # More shards than tasks -> some shards are empty, none lost.
        assert any(not part for part in partition_tasks(tasks, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec("nope", (4, 4), (1,), trials=1)
        with pytest.raises(ValueError):
            SweepSpec("success_rate", (4, 4), (1,), trials=0)
        with pytest.raises(ValueError):
            partition_tasks([], 0)
        with pytest.raises(ValueError):
            run_sweep(small_spec(), workers=0)


class TestShardInvariance:
    @given(
        seed=st.integers(0, 2**32 - 1),
        shards=st.integers(1, 9),
        experiment=st.sampled_from(["success_rate", "region_overhead"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_merge_equals_single_shard(self, seed, shards, experiment):
        """Merging per-shard tables == the single-shard table, bytewise.

        ``shards`` ranges past the task count (2 counts x 2 trials = 4
        tasks), so empty shards are exercised by construction.
        """
        spec = small_spec(
            seed=seed, experiment=experiment, trials=2, params={"pairs": 8}
        )
        baseline = run_sweep(spec, workers=1, shards=1)
        sharded = run_sweep(spec, workers=1, shards=shards)
        assert sharded.to_csv() == baseline.to_csv()
        assert sharded.title == baseline.title

    def test_single_pattern_shards(self):
        # One task total: every shard but one is empty.
        spec = small_spec(fault_counts=(3,), trials=1)
        baseline = run_sweep(spec, workers=1, shards=1)
        assert run_sweep(spec, workers=1, shards=5).to_csv() == baseline.to_csv()

    def test_reduce_is_order_insensitive(self):
        spec = small_spec()
        records = []
        for shard in partition_tasks(plan_tasks(spec), 3):
            records.extend(evaluate_shard(spec, shard))
        forward = reduce_records(spec, records)
        backward = reduce_records(spec, list(reversed(records)))
        assert forward.to_csv() == backward.to_csv()

    def test_worker_pool_matches_in_process(self):
        spec = small_spec(trials=2)
        assert (
            run_sweep(spec, workers=2).to_csv()
            == run_sweep(spec, workers=1, shards=2).to_csv()
        )


class TestPortedExperiments:
    def test_success_rate_workers_invariant(self):
        serial = run_success_rate((6, 6), [2, 5], pairs=10, trials=2, seed=9)
        parallel = run_success_rate(
            (6, 6), [2, 5], pairs=10, trials=2, seed=9, workers=2
        )
        assert serial.to_csv() == parallel.to_csv()

    def test_region_overhead_workers_invariant(self):
        serial = run_region_overhead((8, 8), [3, 6], trials=3, seed=11)
        parallel = run_region_overhead(
            (8, 8), [3, 6], trials=3, seed=11, workers=2, shards=3
        )
        assert serial.to_csv() == parallel.to_csv()

    def test_des_routing_workers_invariant(self):
        serial = run_des_routing((5, 5), [2], queries=6, trials=2, seed=13)
        parallel = run_des_routing(
            (5, 5), [2], queries=6, trials=2, seed=13, workers=2
        )
        assert serial.to_csv() == parallel.to_csv()
        assert serial.rows[0]["agreement"] >= 0.99

    def test_registry_names_resolve(self):
        # Every registered evaluator/reducer path imports cleanly.
        from repro.parallel.sharding import _resolve

        for evaluator_path, reducer_path in EXPERIMENTS.values():
            assert callable(_resolve(evaluator_path))
            assert callable(_resolve(reducer_path))

    def test_cli_registries_cover_all_experiments(self):
        # CLI_RUNNERS (dispatch + parser choices) and CLI_ALIASES must
        # track EXPERIMENTS: add an experiment, add its CLI runner.
        from repro.parallel.sharding import CLI_ALIASES, CLI_RUNNERS, _resolve

        assert set(CLI_RUNNERS) == set(EXPERIMENTS)
        assert set(CLI_ALIASES.values()) <= set(CLI_RUNNERS)
        for runner_path, workload_flags in CLI_RUNNERS.values():
            assert callable(_resolve(runner_path))
            assert set(workload_flags) <= {
                "pairs", "queries", "epochs", "churn", "mode", "des",
                "rates", "duration", "capacity",
            }


def journal_lines(path) -> list[str]:
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return fh.read().splitlines(keepends=True)


class TestCheckpointResume:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        spec = small_spec()
        plain = run_sweep(spec, workers=1)
        journal = tmp_path / "t2.jsonl"
        checkpointed = run_sweep(spec, workers=1, checkpoint=journal)
        assert checkpointed.to_csv() == plain.to_csv()
        # One header + one record per pattern, every index journalled.
        lines = journal_lines(journal)
        assert len(lines) == len(plan_tasks(spec)) + 1
        assert sorted(json.loads(ln)["_index"] for ln in lines[1:]) == list(
            range(len(lines) - 1)
        )

    @given(
        seed=st.integers(0, 2**32 - 1),
        k=st.integers(0, 4),
        shards=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_kill_and_resume_is_byte_identical(self, tmp_path_factory, seed, k, shards):
        """Truncate the journal after k of n records; resume; same bytes.

        ``k`` spans 0 (header only) through n (complete journal, nothing
        left to evaluate); the spec has n = 2 counts x 2 trials = 4.
        """
        spec = small_spec(seed=seed, trials=2, params={"pairs": 6})
        tmp = tmp_path_factory.mktemp("resume")
        journal = tmp / "sweep.jsonl"
        uninterrupted = run_sweep(spec, workers=1, checkpoint=journal)
        lines = journal_lines(journal)
        assert len(lines) == 5

        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(lines[: 1 + k])
        resumed = run_sweep(spec, workers=1, shards=shards, checkpoint=journal)
        assert resumed.to_csv() == uninterrupted.to_csv()
        assert resumed.render() == uninterrupted.render()
        a, b = tmp / "a.jsonl", tmp / "b.jsonl"
        resumed.save(a, fingerprint=spec.fingerprint())
        uninterrupted.save(b, fingerprint=spec.fingerprint())
        assert a.read_bytes() == b.read_bytes()

    def test_resume_skips_completed_patterns(self, tmp_path, monkeypatch):
        spec = small_spec(trials=2, params={"pairs": 6})
        journal = tmp_path / "sweep.jsonl"
        expect = run_sweep(spec, workers=1, checkpoint=journal)
        lines = journal_lines(journal)
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(lines[:3])  # header + records 0..1 complete

        evaluated = []
        real_evaluator = EXPERIMENTS[spec.experiment]

        def counting(spec_, task):
            evaluated.append(task.index)
            from repro.experiments.exp_success_rate import evaluate_pattern

            return evaluate_pattern(spec_, task)

        monkeypatch.setitem(
            EXPERIMENTS, spec.experiment, (counting, real_evaluator[1])
        )
        resumed = run_sweep(spec, workers=1, checkpoint=journal)
        assert resumed.to_csv() == expect.to_csv()
        done = {json.loads(ln)["_index"] for ln in lines[1:3]}
        assert sorted(evaluated) == [
            i for i in range(4) if i not in done
        ]
        # Complete journal: nothing evaluates at all.
        evaluated.clear()
        again = run_sweep(spec, workers=1, checkpoint=journal)
        assert again.to_csv() == expect.to_csv()
        assert evaluated == []

    def test_partial_final_line_is_dropped_and_repaired(self, tmp_path):
        spec = small_spec(trials=2, params={"pairs": 6})
        journal = tmp_path / "sweep.jsonl"
        expect = run_sweep(spec, workers=1, checkpoint=journal)
        lines = journal_lines(journal)
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(lines[:2])
            fh.write(lines[2][: len(lines[2]) // 2])  # killed mid-append
        resumed = run_sweep(spec, workers=2, checkpoint=journal)
        assert resumed.to_csv() == expect.to_csv()
        # The journal was repaired: all lines complete again.
        assert all(ln.endswith("\n") for ln in journal_lines(journal))

    def test_refuses_to_overwrite_a_foreign_file(self, tmp_path):
        # A mistyped --checkpoint pointing at an unrelated file (here a
        # newline-less one-liner) must not be clobbered.
        spec = small_spec()
        target = tmp_path / "notes.txt"
        target.write_text("precious data, no trailing newline")
        with pytest.raises(TablePersistenceError, match="refusing to overwrite"):
            run_sweep(spec, workers=1, checkpoint=target)
        assert target.read_text() == "precious data, no trailing newline"

    def test_partial_header_restarts_fresh(self, tmp_path):
        # Killed while the very first line was being written: the stub
        # (no newline yet) is replaced by a fresh journal, not rejected.
        from repro.parallel.sharding import _checkpoint_header

        spec = small_spec(trials=2, params={"pairs": 6})
        expect = run_sweep(spec, workers=1)
        journal = tmp_path / "sweep.jsonl"
        journal.write_text(json_line(_checkpoint_header(spec))[:22])
        restarted = run_sweep(spec, workers=1, checkpoint=journal)
        assert restarted.to_csv() == expect.to_csv()
        lines = journal_lines(journal)
        assert len(lines) == 5 and all(ln.endswith("\n") for ln in lines)

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(small_spec(seed=1), workers=1, checkpoint=journal)
        with pytest.raises(FingerprintMismatchError, match="different sweep"):
            run_sweep(small_spec(seed=2), workers=1, checkpoint=journal)
        # Same seed, different workload param: also a different sweep.
        with pytest.raises(FingerprintMismatchError):
            run_sweep(
                small_spec(seed=1, params={"pairs": 99}),
                workers=1,
                checkpoint=journal,
            )

    def test_unknown_schema_version_is_rejected(self, tmp_path):
        spec = small_spec()
        journal = tmp_path / "sweep.jsonl"
        run_sweep(spec, workers=1, checkpoint=journal)
        lines = journal_lines(journal)
        header = json.loads(lines[0])
        header["schema"] = CHECKPOINT_SCHEMA + 1
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.write(json_line(header) + "\n")
            fh.writelines(lines[1:])
        with pytest.raises(SchemaVersionError, match="schema version"):
            run_sweep(spec, workers=1, checkpoint=journal)
        with pytest.raises(SchemaVersionError):
            load_checkpoint(journal, spec)

    def test_generator_seed_cannot_checkpoint(self, tmp_path):
        spec = small_spec(seed=np.random.default_rng(3))
        with pytest.raises(TypeError, match="replayable seed"):
            run_sweep(spec, workers=1, checkpoint=tmp_path / "x.jsonl")

    def test_seed_sequence_fingerprint_is_stable(self):
        a = small_spec(seed=np.random.SeedSequence(42))
        b = small_spec(seed=np.random.SeedSequence(42))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != small_spec(seed=42).fingerprint()


class TestFailureSurfacing:
    def test_poisoned_pattern_reports_which_pattern_died(self, monkeypatch):
        def poison(spec, task):
            if task.index == 2:
                raise ValueError("boom in pattern fn")
            return {"x": 1}

        def reduce_(spec, records):
            table = ResultTable("poison")
            for record in records:
                table.add(x=record["x"])
            return table

        monkeypatch.setitem(EXPERIMENTS, "poisoned", (poison, reduce_))
        spec = SweepSpec("poisoned", (4, 4), (1, 2), trials=2, seed=77)
        with pytest.raises(PatternTaskError) as err:
            run_sweep(spec, workers=1)
        message = str(err.value)
        # Task 2 = fault count 2, trial 0: index, grid cell, and seed all
        # named, so the failing pattern is replayable from the message.
        assert "pattern task 2" in message
        assert "faults=2" in message and "trial=0" in message
        assert "entropy=77" in message and "spawn_key=" in message
        assert "ValueError: boom in pattern fn" in message
        assert isinstance(err.value.__cause__, ValueError)

    def test_healthy_patterns_before_poison_are_journalled(
        self, monkeypatch, tmp_path
    ):
        def poison(spec, task):
            if task.index == 3:
                raise ValueError("boom")
            return {"x": task.index}

        def reduce_(spec, records):
            table = ResultTable("poison")
            for record in records:
                table.add(x=record["x"])
            return table

        monkeypatch.setitem(EXPERIMENTS, "poisoned", (poison, reduce_))
        spec = SweepSpec("poisoned", (4, 4), (1, 2), trials=2, seed=5)
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(PatternTaskError):
            run_sweep(spec, workers=1, checkpoint=journal)
        # The crash kept the completed prefix: resume after "fixing" the
        # bug only needs the remaining pattern.
        done = load_checkpoint(journal, spec)
        assert sorted(done) == [0, 1, 2]


class TestCLI:
    def test_main_renders_table(self, capsys):
        from repro.parallel import sharding

        sharding.main(
            [
                "--experiment", "region_overhead",
                "--shape", "6", "6",
                "--fault-counts", "2",
                "--trials", "2",
                "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert "T1 region overhead" in out and "rfb_over_mcc" in out

    def test_main_csv(self, capsys):
        from repro.parallel import sharding

        sharding.main(
            [
                "--experiment", "success_rate",
                "--shape", "5", "5",
                "--fault-counts", "2",
                "--trials", "1",
                "--pairs", "5",
                "--csv",
            ]
        )
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("faults,")

    def test_main_accepts_paper_alias_checkpoint_and_save(self, capsys, tmp_path):
        from repro.parallel import sharding

        journal = tmp_path / "t3.jsonl"
        saved = tmp_path / "t3.table.jsonl"
        argv = [
            "t3",
            "--shape", "5", "5",
            "--fault-counts", "2",
            "--trials", "2",
            "--checkpoint", str(journal),
            "--save", str(saved),
            "--csv",
        ]
        sharding.main(argv)
        first = capsys.readouterr().out
        assert first.splitlines()[0].startswith("faults,")
        assert journal.exists() and saved.exists()
        # Re-running resumes from the complete journal: same output, and
        # the saved table loads back with a matching fingerprint.
        sharding.main(argv)
        assert capsys.readouterr().out == first
        loaded = ResultTable.load(saved)
        assert "per_node" in loaded.columns
        assert loaded.to_csv() + "\n" == first  # print() added the newline

    def test_main_requires_an_experiment(self, capsys):
        from repro.parallel import sharding

        with pytest.raises(SystemExit):
            sharding.main(["--shape", "5", "5"])
        assert "experiment" in capsys.readouterr().err

    def test_cli_and_python_api_share_fingerprints(self, tmp_path):
        # A checkpoint begun from the CLI must be resumable through the
        # Python wrapper (same spec -> same fingerprint) for T1's
        # default params.
        from repro.experiments.exp_region_overhead import run_region_overhead
        from repro.parallel import sharding

        journal = tmp_path / "t1.jsonl"
        sharding.main(
            [
                "t1",
                "--shape", "6", "6",
                "--fault-counts", "2",
                "--trials", "2",
                "--seed", "3",
                "--checkpoint", str(journal),
            ]
        )
        plain = run_region_overhead((6, 6), [2], trials=2, seed=3)
        resumed = run_region_overhead(
            (6, 6), [2], trials=2, seed=3, checkpoint=journal
        )
        assert resumed.to_csv() == plain.to_csv()
