"""Tests for the sharded sweep runner (repro.parallel.sharding).

The load-bearing property: the merged table is byte-identical for any
shard count and any worker count, because every pattern owns a
positionally derived seed and the reducer consumes records in global
task order.  Covers empty shards (more shards than tasks) and
single-pattern shards, plus the multiprocessing pool path itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.exp_success_rate import run_success_rate
from repro.parallel.sharding import (
    EXPERIMENTS,
    SweepSpec,
    evaluate_shard,
    partition_tasks,
    plan_tasks,
    reduce_records,
    run_sweep,
)


def small_spec(seed=7, **overrides):
    kwargs = dict(
        experiment="success_rate",
        shape=(6, 6),
        fault_counts=(2, 5),
        trials=3,
        seed=seed,
        params={"pairs": 12},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestPlanAndPartition:
    def test_plan_is_positional_and_deterministic(self):
        a = plan_tasks(small_spec())
        b = plan_tasks(small_spec())
        assert [t.index for t in a] == list(range(6))
        assert [(t.count_index, t.count, t.trial) for t in a] == [
            (0, 2, 0), (0, 2, 1), (0, 2, 2), (1, 5, 0), (1, 5, 1), (1, 5, 2),
        ]
        for x, y in zip(a, b):
            assert x.seed.entropy == y.seed.entropy
            assert x.seed.spawn_key == y.seed.spawn_key
            assert np.array_equal(
                x.rng().integers(0, 1 << 30, 4), y.rng().integers(0, 1 << 30, 4)
            )

    def test_seed_sequence_input_is_replayable(self):
        # SeedSequence.spawn is stateful; the runner must copy the
        # sequence so repeated run_sweep calls replay the same patterns.
        seq = np.random.SeedSequence(7)
        spec = small_spec(seed=seq)
        first = run_sweep(spec, workers=1)
        second = run_sweep(spec, workers=1)
        assert first.to_csv() == second.to_csv()
        # And the caller's sequence still spawns from its own counter
        # deterministically relative to an untouched twin.
        assert seq.n_children_spawned == 0

    def test_partition_covers_each_task_once(self):
        tasks = plan_tasks(small_spec())
        for shards in (1, 2, 3, 4, 10):
            parts = partition_tasks(tasks, shards)
            assert len(parts) == shards
            flat = sorted(t.index for part in parts for t in part)
            assert flat == [t.index for t in tasks]
        # More shards than tasks -> some shards are empty, none lost.
        assert any(not part for part in partition_tasks(tasks, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec("nope", (4, 4), (1,), trials=1)
        with pytest.raises(ValueError):
            SweepSpec("success_rate", (4, 4), (1,), trials=0)
        with pytest.raises(ValueError):
            partition_tasks([], 0)
        with pytest.raises(ValueError):
            run_sweep(small_spec(), workers=0)


class TestShardInvariance:
    @given(
        seed=st.integers(0, 2**32 - 1),
        shards=st.integers(1, 9),
        experiment=st.sampled_from(["success_rate", "region_overhead"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_merge_equals_single_shard(self, seed, shards, experiment):
        """Merging per-shard tables == the single-shard table, bytewise.

        ``shards`` ranges past the task count (2 counts x 2 trials = 4
        tasks), so empty shards are exercised by construction.
        """
        spec = small_spec(
            seed=seed, experiment=experiment, trials=2, params={"pairs": 8}
        )
        baseline = run_sweep(spec, workers=1, shards=1)
        sharded = run_sweep(spec, workers=1, shards=shards)
        assert sharded.to_csv() == baseline.to_csv()
        assert sharded.title == baseline.title

    def test_single_pattern_shards(self):
        # One task total: every shard but one is empty.
        spec = small_spec(fault_counts=(3,), trials=1)
        baseline = run_sweep(spec, workers=1, shards=1)
        assert run_sweep(spec, workers=1, shards=5).to_csv() == baseline.to_csv()

    def test_reduce_is_order_insensitive(self):
        spec = small_spec()
        records = []
        for shard in partition_tasks(plan_tasks(spec), 3):
            records.extend(evaluate_shard(spec, shard))
        forward = reduce_records(spec, records)
        backward = reduce_records(spec, list(reversed(records)))
        assert forward.to_csv() == backward.to_csv()

    def test_worker_pool_matches_in_process(self):
        spec = small_spec(trials=2)
        assert (
            run_sweep(spec, workers=2).to_csv()
            == run_sweep(spec, workers=1, shards=2).to_csv()
        )


class TestPortedExperiments:
    def test_success_rate_workers_invariant(self):
        serial = run_success_rate((6, 6), [2, 5], pairs=10, trials=2, seed=9)
        parallel = run_success_rate(
            (6, 6), [2, 5], pairs=10, trials=2, seed=9, workers=2
        )
        assert serial.to_csv() == parallel.to_csv()

    def test_region_overhead_workers_invariant(self):
        serial = run_region_overhead((8, 8), [3, 6], trials=3, seed=11)
        parallel = run_region_overhead(
            (8, 8), [3, 6], trials=3, seed=11, workers=2, shards=3
        )
        assert serial.to_csv() == parallel.to_csv()

    def test_des_routing_workers_invariant(self):
        serial = run_des_routing((5, 5), [2], queries=6, trials=2, seed=13)
        parallel = run_des_routing(
            (5, 5), [2], queries=6, trials=2, seed=13, workers=2
        )
        assert serial.to_csv() == parallel.to_csv()
        assert serial.rows[0]["agreement"] >= 0.99

    def test_registry_names_resolve(self):
        # Every registered evaluator/reducer path imports cleanly.
        from repro.parallel.sharding import _resolve

        for evaluator_path, reducer_path in EXPERIMENTS.values():
            assert callable(_resolve(evaluator_path))
            assert callable(_resolve(reducer_path))


class TestCLI:
    def test_main_renders_table(self, capsys):
        from repro.parallel import sharding

        sharding.main(
            [
                "--experiment", "region_overhead",
                "--shape", "6", "6",
                "--fault-counts", "2",
                "--trials", "2",
                "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert "T1 region overhead" in out and "rfb_over_mcc" in out

    def test_main_csv(self, capsys):
        from repro.parallel import sharding

        sharding.main(
            [
                "--experiment", "success_rate",
                "--shape", "5", "5",
                "--fault-counts", "2",
                "--trials", "1",
                "--pairs", "5",
                "--csv",
            ]
        )
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("faults,")
