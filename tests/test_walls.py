"""Tests for boundary walls and chain merging."""


from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.core.walls import (
    active_walls,
    build_walls,
    forbidden_mask_for_dest,
    merged_forbidden,
    walls_for,
)
from repro.mesh.regions import mask_of_cells
from tests.conftest import random_mask


def _walls(mask):
    lab = label_grid(mask)
    mccs = extract_mccs(lab)
    return lab, mccs, build_walls(mccs)


class TestSingleMCC:
    def test_wall_count(self, rng):
        mask = mask_of_cells([(3, 3)], (8, 8))
        _, mccs, walls = _walls(mask)
        assert len(walls) == len(mccs) * 2

    def test_singleton_regions(self):
        mask = mask_of_cells([(3, 3)], (8, 8))
        _, _, walls = _walls(mask)
        wy = next(w for w in walls if w.dim == 1)
        assert wy.forbidden[3, 0] and wy.forbidden[3, 2]
        assert not wy.forbidden[3, 4]
        assert wy.critical[3, 4] and not wy.critical[3, 3]
        # Y-wall record cells guard +X entries at column 2, rows < 3.
        assert wy.records[0][2, 0] and wy.records[0][2, 2]
        assert not wy.records[0][2, 3]
        assert wy.chain == (1,)

    def test_guards_accessor(self):
        mask = mask_of_cells([(3, 3)], (8, 8))
        _, _, walls = _walls(mask)
        wy = next(w for w in walls if w.dim == 1)
        assert wy.guards((2, 1), 0)
        assert not wy.guards((2, 5), 0)


class TestChainMerging:
    def test_obstructed_wall_merges(self):
        # M1 at (5,5); M2 at (4,2) sits exactly on M1's Y-wall column.
        mask = mask_of_cells([(5, 5), (4, 2)], (9, 9))
        lab, mccs, walls = _walls(mask)
        m1 = mccs.component_at((5, 5)).index
        wy = next(w for w in walls_for(walls, m1) if w.dim == 1)
        assert len(wy.chain) == 2
        # Merged forbidden covers M2's shadow too.
        assert wy.forbidden[4, 0] and wy.forbidden[4, 1]
        assert wy.forbidden[5, 0]

    def test_unobstructed_walls_do_not_merge(self):
        mask = mask_of_cells([(5, 5), (1, 1)], (9, 9))
        _, mccs, walls = _walls(mask)
        for w in walls:
            assert len(w.chain) == 1

    def test_merged_forbidden_direct(self):
        mask = mask_of_cells([(5, 5), (4, 2)], (9, 9))
        lab = label_grid(mask)
        mccs = extract_mccs(lab)
        m1 = mccs.component_at((5, 5)).index
        z, chain = merged_forbidden(mccs, m1, dim=1)
        assert set(chain) == {1, 2}
        assert z[4, 1] and z[5, 4]

    def test_chain_is_transitive(self):
        # Three stacked obstructions chain through each other.
        mask = mask_of_cells([(6, 7), (5, 4), (4, 1)], (10, 10))
        lab, mccs, walls = _walls(mask)
        top = mccs.component_at((6, 7)).index
        wy = next(w for w in walls_for(walls, top) if w.dim == 1)
        assert len(wy.chain) == 3

    def test_critical_not_merged(self):
        # Algorithm 5 step 4: only Q merges; Q' stays the owner's.
        mask = mask_of_cells([(5, 5), (4, 2)], (9, 9))
        lab, mccs, walls = _walls(mask)
        m1 = mccs.component_at((5, 5)).index
        wy = next(w for w in walls_for(walls, m1) if w.dim == 1)
        assert wy.critical[5, 7]
        assert not wy.critical[4, 7]  # above M2 only: not M1's critical


class TestDestFiltering:
    def test_active_walls(self):
        mask = mask_of_cells([(3, 3)], (8, 8))
        _, _, walls = _walls(mask)
        assert len(active_walls(walls, (3, 6))) == 1  # Y-critical only
        assert len(active_walls(walls, (6, 3))) == 1  # X-critical only
        assert len(active_walls(walls, (6, 6))) == 0  # diagonal: neither

    def test_forbidden_mask_for_dest(self, rng):
        mask = mask_of_cells([(3, 3)], (8, 8))
        _, _, walls = _walls(mask)
        fm = forbidden_mask_for_dest(walls, (3, 6), (8, 8))
        assert fm[3, 1] and not fm[1, 3]

    def test_records_on_safe_cells_only(self, rng):
        for _ in range(5):
            mask = random_mask(rng, (9, 9), 10)
            lab, _, walls = _walls(mask)
            for w in walls:
                for rec in w.records.values():
                    assert not (rec & lab.unsafe_mask).any()


class TestWalls3D:
    def test_three_walls_per_mcc(self, fig5_mask):
        lab = label_grid(fig5_mask)
        mccs = extract_mccs(lab)
        walls = build_walls(mccs)
        assert len(walls) == len(mccs) * 3

    def test_3d_shadow_membership(self, fig5_mask):
        lab = label_grid(fig5_mask)
        mccs = extract_mccs(lab)
        walls = build_walls(mccs)
        idx = mccs.component_at((7, 8, 4)).index
        wz = next(w for w in walls_for(walls, idx) if w.dim == 2)
        assert wz.forbidden[7, 8, 0] and wz.forbidden[7, 8, 3]
        assert not wz.forbidden[7, 8, 5]
        assert wz.critical[7, 8, 9]
