"""Seeded-violation tests for the three runtime sanitizers.

Each sanitizer gets a clean run over the real subsystem it guards
(asserting it actually checked something) plus at least one seeded
violation that must raise its dedicated error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import (
    CacheMutationError,
    DigestGuardedCache,
    EpochViolationError,
    SessionBleedError,
    SessionShadow,
    TieBreakHazardError,
    _ShadowStore,
    enabled,
    maybe_sanitize_network,
    maybe_sanitize_online_service,
    sanitize_network,
    sanitize_online_service,
    value_digest,
)
from repro.core.model_cache import cached_class_assets, cached_labelled
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.mesh.topology import Mesh
from repro.online.service import OnlineRoutingService


def small_mask() -> np.ndarray:
    mask = np.zeros((6, 6), dtype=bool)
    mask[2, 3] = True
    mask[3, 2] = True
    return mask


# -- enable flag -------------------------------------------------------------


def test_enabled_flag_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert enabled()


def test_maybe_hooks_are_noops_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    service = OnlineRoutingService(small_mask())
    assert maybe_sanitize_online_service(service) is None
    pipe = DistributedMCCPipeline(Mesh((5, 5)), small_mask()[:5, :5])
    assert maybe_sanitize_network(pipe.net) is None


# -- frozen-cache write barrier ----------------------------------------------


def test_value_digest_sees_nested_arrays():
    a = np.arange(6).reshape(2, 3)
    before = value_digest({"x": [a], "y": 1})
    a[0, 0] = 99
    assert value_digest({"x": [a], "y": 1}) != before


def test_digest_guarded_cache_clean_hits():
    cache = DigestGuardedCache(4, label="unit")
    cache.put("k", np.arange(4))
    assert cache.get("k") is not None
    assert cache.verified_hits == 1


def test_digest_guarded_cache_detects_alias_mutation():
    cache = DigestGuardedCache(4, label="unit")
    arr = np.arange(4)
    arr.setflags(write=False)
    cache.put("k", arr)
    alias = cache.get("k")
    alias.setflags(write=True)
    alias[0] = 99
    with pytest.raises(CacheMutationError):
        cache.get("k")


def test_digest_guarded_cache_prunes_digests_on_eviction():
    cache = DigestGuardedCache(2, label="unit")
    for i in range(5):
        cache.put(i, np.arange(i + 1))
    assert len(cache._digests) <= 2


def test_barrier_clean_on_real_labelling_cache(sanitized_cache_barrier):
    mask = small_mask()
    first = cached_labelled(mask)
    again = cached_labelled(mask)
    assert again is first
    cached_class_assets(mask)
    cached_class_assets(mask)
    assert sanitized_cache_barrier.cache.verified_hits >= 2


def test_barrier_catches_rewritable_alias_on_real_cache(
    sanitized_cache_barrier,
):
    mask = small_mask()
    labelled = cached_labelled(mask)
    alias = labelled.status
    alias.setflags(write=True)
    alias[0, 0] = 7
    with pytest.raises(CacheMutationError):
        cached_labelled(mask)


def test_frozen_assets_refuse_direct_writes(sanitized_cache_barrier):
    labelled, mccs, walls = cached_class_assets(small_mask())
    with pytest.raises(ValueError):
        labelled.status[0, 0] = 1
    with pytest.raises(ValueError):
        mccs.labels[0, 0] = 1
    assert all(not m.cells.flags.writeable for m in mccs.mccs)
    for wall in walls:
        assert not wall.forbidden.flags.writeable
        assert not wall.critical.flags.writeable


# -- DES session-isolation sanitizer -----------------------------------------


def run_query_batch(pipe: DistributedMCCPipeline, pairs) -> None:
    handles = [pipe.submit(s, d) for s, d in pairs]
    pipe.drain()
    for handle in handles:
        assert handle.result is not None


def test_session_sanitizer_clean_on_real_pipeline():
    mask = np.zeros((7, 7), dtype=bool)
    mask[3, 3] = True
    mask[3, 4] = True
    pipe = DistributedMCCPipeline(Mesh((7, 7)), mask).build()
    shadow = sanitize_network(pipe.net)
    assert sanitize_network(pipe.net) is shadow  # idempotent
    run_query_batch(
        pipe, [((0, 0), (6, 6)), ((1, 0), (6, 5)), ((0, 2), (5, 6))]
    )
    assert shadow.checked_accesses > 0


def test_session_bleed_raises():
    shadow = SessionShadow()
    store = _ShadowStore(shadow, (0, 0), {"queries": {1: "a", 2: "b"}})
    shadow.before_event(1.0)
    shadow.session = 1
    store["queries"][1]  # own session: fine
    with pytest.raises(SessionBleedError):
        store["queries"][2]


def test_tie_break_hazard_raises():
    """A session event and an unattributed protocol event racing on the
    same (node, query) state at one timestamp is order-dependent."""
    shadow = SessionShadow()
    store = _ShadowStore(shadow, (0, 0), {"queries": {1: "a", 2: "b"}})
    shadow.before_event(2.5)
    shadow.session = 1
    store["queries"][1] = "write"
    shadow.after_event()
    shadow.before_event(2.5)  # same virtual time, different event
    with pytest.raises(TieBreakHazardError):
        store["queries"].pop(1, None)


def test_same_session_same_timestamp_is_fine():
    shadow = SessionShadow()
    store = _ShadowStore(shadow, (0, 0), {"queries": {1: "a"}})
    shadow.before_event(2.5)
    shadow.session = 1
    store["queries"][1] = "w1"
    shadow.after_event()
    shadow.before_event(2.5)
    shadow.session = 1
    store["queries"][1] = "w2"
    shadow.after_event()


def test_new_timestamp_clears_conflict_window():
    shadow = SessionShadow()
    store = _ShadowStore(shadow, (0, 0), {"queries": {1: "a"}})
    shadow.before_event(1.0)
    shadow.session = 1
    store["queries"][1] = "w"
    shadow.after_event()
    shadow.before_event(2.0)  # later time: a genuine ordering exists
    store["queries"][1] = "w"
    shadow.after_event()


def test_accesses_outside_events_are_ignored():
    shadow = SessionShadow()
    store = _ShadowStore(shadow, (0, 0), {"queries": {1: "a"}})
    shadow.before_event(1.0)
    shadow.session = 2
    shadow.after_event()
    store["queries"][1]  # drain()-style bookkeeping between events
    assert shadow.checked_accesses == 0


def test_session_sanitizer_catches_seeded_bleed_in_network(monkeypatch):
    """A handler that writes to a foreign session's state must fail.

    Built with self-instrumentation off so the tampering sits *under*
    the sanitizer's wrappers, like real buggy protocol code would.
    """
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    mask = np.zeros((5, 5), dtype=bool)
    pipe = DistributedMCCPipeline(Mesh((5, 5)), mask).build()

    # The first query message lands on a neighbor of the source; make
    # both leak into a foreign session *before* the sanitizer wraps the
    # handlers, as real buggy protocol code would.
    def tamper(coord):
        node = pipe.net.nodes[coord]
        original = node.on_message

        def leaky(msg):
            if msg.payload.get("query") is not None:
                node.store.setdefault("queries", {})[-999] = "bleed"
            return original(msg)

        node.on_message = leaky

    tamper((1, 0))
    tamper((0, 1))
    sanitize_network(pipe.net)
    with pytest.raises(SessionBleedError):
        run_query_batch(pipe, [((0, 0), (4, 4))])


# -- epoch sanitizer ---------------------------------------------------------


def test_epoch_sanitizer_clean_run():
    service = OnlineRoutingService(small_mask())
    shadow = sanitize_online_service(service)
    assert sanitize_online_service(service) is shadow  # idempotent
    t1 = service.submit((0, 0), (5, 5))
    t2 = service.submit((5, 0), (0, 5))
    flushed = service.flush()
    assert set(flushed) == {t1, t2}
    assert shadow.checked_results == 2


def test_epoch_sanitizer_allows_flush_before_event_protocol():
    service = OnlineRoutingService(small_mask())
    shadow = sanitize_online_service(service)
    service.submit((0, 0), (5, 5))
    service.inject([(1, 1)])  # flushes first, then advances the epoch
    service.submit((5, 0), (0, 5))
    service.flush()
    assert shadow.checked_results == 2


def test_epoch_sanitizer_catches_unflushed_model_mutation():
    service = OnlineRoutingService(small_mask())
    sanitize_online_service(service)
    service.submit((0, 0), (5, 5))
    # Mutate the model directly, bypassing the flush-before-event path.
    event = service.model.inject([(1, 1)])
    service.router.apply_event(event)
    with pytest.raises(EpochViolationError):
        service.flush()
