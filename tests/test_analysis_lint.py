"""Seeded-violation tests for every ``repro-check`` rule.

Each rule gets at least one snippet that must trip it and one nearby
negative that must not, exercising the role scoping, the import-alias
canonicalization, and both suppression channels.

The disable-comment text is assembled by concatenation (``_DISABLE``)
so the linter's textual suppression scanner never mistakes this test
file's string literals for real suppressions of its own findings.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import Finding, lint_paths, lint_source, main, role_of
from repro.analysis.rules import RULES
from repro.analysis.suppressions import Whitelist, WhitelistError

_DISABLE = "# repro-check: " + "disable="


def ids(source: str, rel_path: str = "src/repro/pkg/mod.py", role=None):
    return [f.rule_id for f in lint_source(textwrap.dedent(source), rel_path, role)]


# -- rule catalog ------------------------------------------------------------


def test_rule_catalog_covers_required_families():
    assert len(RULES) >= 6
    for rid in ("D101", "D102", "D103", "C201", "C202", "C203", "P301", "P302"):
        assert rid in RULES
        assert RULES[rid].rationale


# -- D101: wall clock --------------------------------------------------------


def test_d101_wall_clock_in_src():
    src = """
        import time
        def f():
            return time.time()
    """
    assert ids(src) == ["D101"]


def test_d101_alias_and_from_import():
    src = """
        import time as t
        from time import perf_counter
        def f():
            return t.monotonic() + perf_counter()
    """
    assert ids(src) == ["D101", "D101"]


def test_d101_allowed_in_benchmarks():
    src = """
        import time
        def f():
            return time.perf_counter()
    """
    assert ids(src, "benchmarks/bench_x.py") == []


def test_d101_sanctioned_in_obs_clockio():
    src = """
        import time
        def wall_now():
            return time.perf_counter()
    """
    # The telemetry shim is the ONE library module allowed to read the
    # wall clock; everything else routes through it.
    assert ids(src, "src/repro/obs/clockio.py") == []
    assert ids(src, "src/repro/obs/tracer.py") == ["D101"]
    assert ids(src, "src/repro/serve/clock.py") == ["D101"]


# -- D102: global RNG state --------------------------------------------------


def test_d102_bare_random_module():
    src = """
        import random
        def f():
            return random.random() + random.randint(0, 3)
    """
    assert ids(src) == ["D102", "D102"]


def test_d102_legacy_numpy_random():
    src = """
        import numpy as np
        def f(xs):
            np.random.shuffle(xs)
            return np.random.rand(3)
    """
    assert ids(src) == ["D102", "D102"]


def test_d102_seed_sequence_api_allowed():
    src = """
        import numpy as np
        def f(seed):
            rng = np.random.default_rng(np.random.SeedSequence(seed))
            return rng.integers(0, 10)
    """
    assert ids(src) == []


def test_d102_active_in_tests_role():
    src = """
        import random
        def f():
            return random.random()
    """
    assert ids(src, "tests/test_x.py") == ["D102"]


# -- D103: set iteration feeding ordered results -----------------------------


def test_d103_list_of_set():
    assert ids("order = list({'a', 'b'})\n") == ["D103"]


def test_d103_listcomp_over_tracked_set_name():
    src = """
        def f(cells):
            faults = set(cells)
            return [c for c in faults]
    """
    assert ids(src) == ["D103"]


def test_d103_for_loop_appending_from_set():
    src = """
        def f(s):
            out = []
            for x in s | {1}:
                out.append(x)
            return out
    """
    assert ids(src) == ["D103"]


def test_d103_sorted_and_reductions_are_clean():
    src = """
        def f(cells):
            faults = set(cells)
            total = sum(faults)
            ordered = sorted(faults)
            for x in sorted(faults):
                ordered.append(x)
            return total, ordered
    """
    assert ids(src) == []


def test_d103_reassignment_clears_tracking():
    src = """
        def f(cells):
            faults = set(cells)
            faults = sorted(faults)
            return [c for c in faults]
    """
    assert ids(src) == []


# -- C201: unfreezing arrays -------------------------------------------------


def test_c201_setflags_write_true():
    src = """
        def f(arr):
            arr.setflags(write=True)
    """
    assert ids(src) == ["C201"]


def test_c201_flags_writeable_assignment():
    src = """
        def f(arr):
            arr.flags.writeable = True
    """
    assert ids(src) == ["C201"]


def test_c201_freezing_is_clean():
    src = """
        def f(arr):
            arr.setflags(write=False)
            arr.flags.writeable = False
    """
    assert ids(src) == []


# -- C202: direct label_grid -------------------------------------------------


def test_c202_direct_label_grid():
    src = """
        from repro.core.labelling import label_grid
        def f(mask):
            return label_grid(mask)
    """
    assert ids(src, "src/repro/experiments/exp_x.py") == ["C202"]


@pytest.mark.parametrize(
    "rel",
    [
        "src/repro/core/labelling.py",
        "src/repro/core/model_cache.py",
        "src/repro/online/service.py",
    ],
)
def test_c202_sanctioned_modules(rel):
    src = """
        from repro.core.labelling import label_grid
        def f(mask):
            return label_grid(mask)
    """
    assert ids(src, rel) == []


# -- C203: mutating cache-obtained objects -----------------------------------


def test_c203_method_mutation_of_cached_value():
    src = """
        from repro.core.model_cache import cached_labelled
        def f(mask):
            labelled = cached_labelled(mask)
            labelled.status.fill(0)
    """
    assert ids(src) == ["C203"]


def test_c203_subscript_write_through_tuple_unpack():
    src = """
        from repro.core.model_cache import cached_class_assets
        def f(mask):
            labelled, mccs, walls = cached_class_assets(mask)
            mccs.labels[0] = 9
    """
    assert ids(src) == ["C203"]


def test_c203_augmented_assignment():
    src = """
        from repro.core.model_cache import cached_labelled
        def f(mask):
            grid = cached_labelled(mask)
            grid.status[0] += 1
    """
    assert ids(src) == ["C203"]


def test_c203_copy_then_mutate_is_clean():
    src = """
        from repro.core.model_cache import cached_labelled
        def f(mask):
            status = cached_labelled(mask).status.copy()
            status.fill(0)
            return status
    """
    assert ids(src) == []


# -- P301: unpicklable pool work ---------------------------------------------


def test_p301_lambda_to_pool():
    src = """
        def run(pool, items):
            return pool.map(lambda x: x + 1, items)
    """
    assert ids(src) == ["P301"]


def test_p301_nested_function_to_pool():
    src = """
        def run(pool, items):
            def work(x):
                return x + 1
            return pool.imap_unordered(work, items)
    """
    assert ids(src) == ["P301"]


def test_p301_module_level_function_is_clean():
    src = """
        def work(x):
            return x + 1
        def run(pool, items):
            return pool.map(work, items)
    """
    assert ids(src) == []


# -- P302: worker reads module-global mutables -------------------------------


def test_p302_worker_reads_module_mutable():
    src = """
        registry = {}
        def evaluate_shard(task):
            return registry.get(task)
    """
    assert ids(src) == ["P302"]


def test_p302_global_statement_in_worker():
    src = """
        def _evaluate_shard_star(args):
            global hits
            hits = 1
    """
    assert ids(src) == ["P302"]


def test_p302_upper_case_constant_and_non_worker_clean():
    src = """
        REGISTRY = {}
        helpers = {}
        def evaluate_shard(task):
            return REGISTRY.get(task)
        def summarize(task):
            return helpers.get(task)
    """
    assert ids(src) == []


# -- suppressions ------------------------------------------------------------


def test_inline_justified_suppression_silences_finding():
    src = f"order = list({{'a', 'b'}})  {_DISABLE}D103 -- sink is a set again\n"
    assert ids(src) == []


def test_inline_unjustified_suppression_is_s001_and_keeps_finding():
    src = f"order = list({{'a', 'b'}})  {_DISABLE}D103\n"
    assert sorted(ids(src)) == ["D103", "S001"]


def test_inline_suppression_only_covers_named_rule():
    src = f"order = list({{'a', 'b'}})  {_DISABLE}C201 -- wrong rule named\n"
    assert ids(src) == ["D103"]


def test_syntax_error_reported_as_e999():
    assert ids("def broken(:\n") == ["E999"]


# -- whitelist ---------------------------------------------------------------


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_whitelist_allows_and_tracks_usage(tmp_path):
    allow = _write(
        tmp_path, "allow", "src/repro/viz/*.py D103 render order is cosmetic\n"
    )
    wl = Whitelist.load(allow)
    assert wl.allows("src/repro/viz/ascii_art.py", "D103")
    assert not wl.allows("src/repro/viz/ascii_art.py", "C201")
    assert not wl.allows("src/repro/core/labelling.py", "D103")
    assert wl.unused() == []


def test_whitelist_unjustified_entry_is_an_error(tmp_path):
    allow = _write(tmp_path, "allow", "src/*.py D103\n")
    with pytest.raises(WhitelistError):
        Whitelist.load(allow)


def test_lint_paths_applies_whitelist(tmp_path, monkeypatch):
    _write(
        tmp_path,
        "src/repro/viz/art.py",
        "order = list({'a', 'b'})\n",
    )
    allow = _write(
        tmp_path, "repro-check.allow", "*/viz/*.py D103 cosmetic ordering\n"
    )
    monkeypatch.chdir(tmp_path)
    assert [f.rule_id for f in lint_paths([str(tmp_path / "src")])] == ["D103"]
    wl = Whitelist.load(allow)
    assert lint_paths([str(tmp_path / "src")], wl) == []
    assert wl.unused() == []


# -- roles & CLI -------------------------------------------------------------


def test_role_inference():
    assert role_of("src/repro/core/labelling.py") == "src"
    assert role_of("tests/test_x.py") == "tests"
    assert role_of("benchmarks/bench_x.py") == "benchmarks"
    assert role_of("examples/demo.py") == "examples"


def test_cli_exit_codes(tmp_path, capsys):
    clean = _write(tmp_path, "src/clean.py", "def f():\n    return 1\n")
    dirty = _write(tmp_path, "src/dirty.py", "order = list({'a', 'b'})\n")
    assert main([str(clean), "--no-whitelist"]) == 0
    assert main([str(dirty), "--no-whitelist"]) == 1
    out = capsys.readouterr()
    assert "D103" in out.out


def test_cli_rejects_malformed_whitelist(tmp_path, capsys):
    target = _write(tmp_path, "src/clean.py", "def f():\n    return 1\n")
    allow = _write(tmp_path, "bad.allow", "src/*.py D103\n")
    assert main([str(target), "--whitelist", str(allow)]) == 2


def test_cli_reports_unused_whitelist_entries(tmp_path, capsys):
    target = _write(tmp_path, "src/clean.py", "def f():\n    return 1\n")
    allow = _write(tmp_path, "ok.allow", "nothing/*.py D103 stale entry\n")
    assert main([str(target), "--whitelist", str(allow)]) == 0
    assert "matched nothing" in capsys.readouterr().err


def test_repository_tree_lints_clean():
    """The gate the CI analysis job enforces, runnable locally."""
    findings = lint_paths(["src", "tests", "benchmarks"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_finding_render_format():
    f = Finding("src/x.py", 3, 7, "D101", "msg")
    assert f.render() == "src/x.py:3:7: D101 msg"
