"""Property tests for MCC geometry (Wang's shape theorems)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import extract_mccs
from repro.core.geometry import (
    axis_intervals,
    bounding_box,
    has_sw_corner_cell,
    is_orthogonally_convex,
    sections_along,
)
from repro.core.labelling import label_grid
from repro.mesh.regions import mask_of_cells
from tests.conftest import random_mask


class TestMonotonePolygonProperty:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 14))
    @settings(max_examples=50, deadline=None)
    def test_2d_mccs_are_orthogonally_convex(self, seed, count):
        """Wang [7]: every 2-D MCC is a rectilinear monotone polygon —
        each row/column intersection is one contiguous interval."""
        rng = np.random.default_rng(seed)
        lab = label_grid(random_mask(rng, (9, 9), count))
        for mcc in extract_mccs(lab):
            assert is_orthogonally_convex(mcc.mask(lab.shape))

    @given(st.integers(0, 2**32 - 1), st.integers(1, 14))
    @settings(max_examples=50, deadline=None)
    def test_2d_mccs_contain_sw_corner_cell(self, seed, count):
        """The SW-fill guarantees (xmin, ymin) ∈ MCC — what makes the
        initialization corner unique."""
        rng = np.random.default_rng(seed)
        lab = label_grid(random_mask(rng, (9, 9), count))
        for mcc in extract_mccs(lab):
            assert has_sw_corner_cell(mcc.mask(lab.shape))

    def test_3d_sections_may_have_holes(self, fig5_mask):
        """3-D sections are *not* convex (the paper's point in Fig. 5)."""
        lab = label_grid(fig5_mask)
        big = max(extract_mccs(lab, connectivity=2), key=lambda m: m.size)
        section_z5 = sections_along(big.mask(lab.shape), 2)[5]
        assert not is_orthogonally_convex(section_z5)


class TestHelpers:
    def test_axis_intervals(self):
        mask = mask_of_cells([(1, 1), (1, 3), (2, 2)], (5, 5))
        rows = axis_intervals(mask, axis=1)
        assert rows[(1,)] == (1, 3)
        assert rows[(2,)] == (2, 2)

    def test_is_orthogonally_convex_examples(self):
        assert is_orthogonally_convex(mask_of_cells([(1, 1), (1, 2)], (4, 4)))
        assert not is_orthogonally_convex(
            mask_of_cells([(1, 1), (1, 3)], (4, 4))
        )

    def test_sections_along(self, fig5_mask):
        lab = label_grid(fig5_mask)
        xy = sections_along(lab.unsafe_mask, 2)
        assert set(xy) == {4, 5, 6, 7}
        yz = sections_along(lab.unsafe_mask, 0)
        assert 5 in yz

    def test_bounding_box(self):
        mask = mask_of_cells([(1, 2), (3, 1)], (5, 5))
        assert bounding_box(mask).lo == (1, 1)
        assert bounding_box(mask).hi == (3, 2)
        assert bounding_box(np.zeros((3, 3), dtype=bool)) is None

    def test_empty_region_is_convex(self):
        assert is_orthogonally_convex(np.zeros((4, 4), dtype=bool))
        assert has_sw_corner_cell(np.zeros((4, 4), dtype=bool))
