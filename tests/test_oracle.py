"""Tests for the monotone-reachability oracle (vs references)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.oracle import (
    blocked_for_dest,
    forward_reachable,
    minimal_path_exists,
    monotone_flood,
    monotone_flood_reference,
    reverse_reachable,
)
from tests.conftest import random_mask


def nx_monotone_feasible(open_mask: np.ndarray, s, d) -> bool:
    """Third-party reference: DAG reachability via networkx."""
    g = nx.DiGraph()
    for cell in np.ndindex(open_mask.shape):
        if not open_mask[cell]:
            continue
        for axis in range(open_mask.ndim):
            nxt = list(cell)
            nxt[axis] += 1
            if nxt[axis] < open_mask.shape[axis] and open_mask[tuple(nxt)]:
                g.add_edge(cell, tuple(nxt))
    if s == d:
        return bool(open_mask[s])
    return g.has_node(s) and g.has_node(d) and nx.has_path(g, s, d)


class TestFloodCorrectness:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_reference_2d(self, seed, blocked):
        rng = np.random.default_rng(seed)
        open_mask = ~random_mask(rng, (7, 7), blocked)
        seeds = random_mask(rng, (7, 7), 3)
        assert np.array_equal(
            monotone_flood(open_mask, seeds),
            monotone_flood_reference(open_mask, seeds),
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matches_scalar_reference_3d(self, seed):
        rng = np.random.default_rng(seed)
        open_mask = ~random_mask(rng, (4, 4, 4), int(rng.integers(0, 16)))
        seeds = random_mask(rng, (4, 4, 4), 2)
        assert np.array_equal(
            monotone_flood(open_mask, seeds),
            monotone_flood_reference(open_mask, seeds),
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_feasibility_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        open_mask = ~random_mask(rng, (5, 5), int(rng.integers(0, 10)))
        s = (0, 0)
        d = tuple(int(v) for v in rng.integers(0, 5, 2))
        if not (open_mask[s] and open_mask[d]):
            return
        assert minimal_path_exists(open_mask, s, d) == nx_monotone_feasible(
            open_mask, s, d
        )

    def test_1d(self):
        open_mask = np.array([True, True, False, True])
        reach = forward_reachable(open_mask, (0,))
        assert reach.tolist() == [True, True, False, False]


class TestSemantics:
    def test_blocked_seed(self):
        open_mask = np.ones((3, 3), dtype=bool)
        open_mask[0, 0] = False
        assert not forward_reachable(open_mask, (0, 0)).any()

    def test_requires_canonical_frame(self):
        with pytest.raises(ValueError):
            minimal_path_exists(np.ones((3, 3), dtype=bool), (2, 2), (0, 0))

    def test_trivial_same_node(self):
        assert minimal_path_exists(np.ones((3, 3), dtype=bool), (1, 1), (1, 1))

    def test_wall_blocks(self):
        open_mask = np.ones((5, 5), dtype=bool)
        open_mask[:, 2] = False  # full horizontal wall
        assert not minimal_path_exists(open_mask, (0, 0), (4, 4))

    def test_gap_in_wall_passes(self):
        open_mask = np.ones((5, 5), dtype=bool)
        open_mask[:, 2] = False
        open_mask[3, 2] = True
        assert minimal_path_exists(open_mask, (0, 0), (4, 4))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_forward_reverse_duality(self, seed):
        rng = np.random.default_rng(seed)
        open_mask = ~random_mask(rng, (6, 6), 8)
        d = (5, 5)
        rev = reverse_reachable(open_mask, d)
        for cell in np.ndindex(open_mask.shape):
            if open_mask[cell] and all(c <= t for c, t in zip(cell, d, strict=True)):
                fwd = forward_reachable(open_mask, cell)
                assert bool(rev[cell]) == bool(fwd[d])

    def test_blocked_for_dest_complements_reverse(self, rng):
        open_mask = ~random_mask(rng, (6, 6), 6)
        d = (5, 5)
        assert np.array_equal(
            blocked_for_dest(open_mask, d), ~reverse_reachable(open_mask, d)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            monotone_flood(np.ones((3, 3), dtype=bool), np.ones((2, 2), dtype=bool))
