"""Tests for the experiment harness: schemas and expected shapes."""

import numpy as np
import pytest

from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_fidelity import run_fidelity
from repro.experiments.exp_protocol_overhead import run_protocol_overhead
from repro.experiments.exp_region_overhead import (
    region_overhead_once,
    run_region_overhead,
)
from repro.experiments.exp_success_rate import run_success_rate
from repro.experiments import figures
from repro.util.records import ParamSweep, ResultTable


class TestRegionOverhead:
    def test_once(self):
        # An NE-diagonal pair costs the MCC model nothing (it blocks no
        # monotone path) but the RFB closure glues it into a 2x2 block;
        # the anti-diagonal pair costs both models two filler nodes.
        mask = np.zeros((10, 10), dtype=bool)
        for cell in [(2, 2), (3, 3), (6, 2), (7, 1)]:
            mask[cell] = True
        mcc, rfb = region_overhead_once(mask)
        assert 0 < mcc < rfb
        assert mcc == 2 and rfb == 4

    def test_table_shape_t1(self):
        table = run_region_overhead((10, 10), [2, 8], trials=4, seed=1)
        assert len(table) == 2
        assert {"faults", "mcc_nonfaulty", "rfb_nonfaulty", "rfb_over_mcc"} <= set(
            table.columns
        )
        # Reproduction target: MCC captures fewer non-faulty nodes.
        for row in table.rows:
            assert row["mcc_nonfaulty"] <= row["rfb_nonfaulty"]

    def test_3d_gap_grows_with_faults(self):
        table = run_region_overhead((8, 8, 8), [4, 32], trials=6, seed=2)
        low, high = table.rows
        assert high["rfb_nonfaulty"] > low["rfb_nonfaulty"]
        assert high["rfb_nonfaulty"] >= high["mcc_nonfaulty"]

    def test_clustered_variant(self):
        table = run_region_overhead(
            (10, 10), [6], trials=4, seed=3, clustered=True
        )
        assert len(table) == 1


class TestSuccessRate:
    def test_ordering_oracle_mcc_rfb_ecube(self):
        table = run_success_rate((8, 8, 8), [8, 30], pairs=40, trials=3, seed=4)
        for row in table.rows:
            # MCC == oracle (the paper's exactness), RFB below, e-cube lowest-ish.
            assert row["mcc"] == pytest.approx(row["oracle"], abs=1e-9)
            assert row["rfb"] <= row["oracle"] + 1e-9
            assert row["ecube"] <= row["oracle"] + 1e-9

    def test_success_degrades_with_faults(self):
        table = run_success_rate((8, 8), [2, 20], pairs=60, trials=3, seed=5)
        assert table.rows[0]["oracle"] >= table.rows[1]["oracle"]


class TestProtocolOverhead:
    def test_schema_and_scaling(self):
        table = run_protocol_overhead((8, 8), [2, 10], trials=2, seed=6)
        assert {"label", "ident", "wall", "total"} <= set(table.columns)
        assert table.rows[1]["total"] >= table.rows[0]["total"]


class TestDESRouting:
    def test_schema_and_agreement(self):
        table = run_des_routing((6, 6), [2, 5], queries=8, trials=2, seed=7)
        for row in table.rows:
            assert row["agreement"] >= 0.99  # P4: distributed == oracle
            assert row["minimal_of_delivered"] == pytest.approx(1.0)


class TestFidelity:
    def test_perfect_agreement_small(self):
        table = run_fidelity((6, 6), [4], pairs=25, trials=3, seed=8)
        row = table.rows[0]
        assert row["cond_agree"] == pytest.approx(1.0)
        assert row["detect_agree"] == pytest.approx(1.0)
        assert row["router_complete"] == pytest.approx(1.0)


class TestFigures:
    def test_figure1_text(self):
        text = figures.figure1()
        assert "rectangular faulty block" in text
        assert "#" in text and "u" in text

    def test_figure5_reproduces_paper_facts(self):
        text = figures.figure5()
        assert "2 = useless" in text
        assert "3 = can't-reach" in text
        assert "MCC count (paper grouping): 2" in text

    def test_figure3_has_merged_chain(self):
        text = figures.figure3_walls()
        assert "merged chains" in text

    def test_figure4_7(self):
        text2 = figures.figure4_7_detection(three_d=False)
        assert "YES" in text2 and "NO" in text2
        text3 = figures.figure4_7_detection(three_d=True)
        assert "feasible=True" in text3

    def test_figure8(self):
        text = figures.figure8_routing()
        assert "delivered=True" in text


class TestRecords:
    def test_param_sweep(self):
        sweep = ParamSweep({"a": [1, 2], "b": "xy"})
        assert len(sweep) == 4
        assert {"a": 1, "b": "x"} in list(sweep)

    def test_result_table_render_and_csv(self):
        table = ResultTable("demo")
        table.add(x=1, y=0.5)
        table.add(x=2, z="w")
        text = table.render()
        assert "demo" in text and "x" in text and "-" in text
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "x,y,z"
        assert table.column("y") == [0.5, None]


class TestExperimentSpec:
    def test_alias_resolution_and_validation(self):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec("t2", (8, 8), (4,), workload={"pairs": 10})
        assert spec.resolved == "success_rate"
        with pytest.raises(ValueError, match="unknown experiment"):
            ExperimentSpec("t99", (8, 8), (4,))
        with pytest.raises(ValueError, match="workload knobs"):
            ExperimentSpec("t2", (8, 8), (4,), workload={"queries": 10})
        with pytest.raises(ValueError, match="mode="):
            ExperimentSpec("t1", (8, 8), (4,)).run(mode="rfb")

    def test_run_matches_direct_entry_point(self, tmp_path):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            "t2", (8, 8), (4, 8), trials=2, seed=3, workload={"pairs": 12}
        )
        saved = tmp_path / "t2.jsonl"
        via_spec = spec.run(save=str(saved))
        direct = run_success_rate((8, 8), [4, 8], pairs=12, trials=2, seed=3)
        assert via_spec.rows == direct.rows
        assert via_spec.fingerprint == direct.fingerprint
        # The shared save= kwarg wrote the durable JSONL table.
        assert ResultTable.load(str(saved)).rows == direct.rows

    def test_shared_kwargs_contract_is_universal(self):
        import inspect

        from repro.experiments import harness
        from repro.parallel.sharding import CLI_RUNNERS, _resolve

        for name, (runner_path, _flags) in CLI_RUNNERS.items():
            params = inspect.signature(_resolve(runner_path)).parameters
            for kwarg in ("workers", "shards", "checkpoint", "save", "trace"):
                assert kwarg in params, f"{name} run_* lacks {kwarg}="
        assert harness.SHARED_KWARGS == (
            "workers", "shards", "checkpoint", "save", "trace", "mode",
        )
