"""Property P4 (identification): ring walks assemble true shapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.distributed.ringwalk import (
    column_bottoms,
    column_tops,
    fill_interior,
    initial_heading,
    ring_step,
)
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D, Mesh3D
from tests.conftest import random_mask


class TestRingwalkPrimitives:
    def test_initial_headings(self):
        assert initial_heading(True) == (0, 1)
        assert initial_heading(False) == (1, 0)

    def test_ring_step_hugs_rectangle(self):
        region = {(2, 2), (2, 3), (3, 2), (3, 3)}

        def passable(c):
            return 0 <= c[0] < 7 and 0 <= c[1] < 7 and tuple(c) not in region

        # The protocol forces the first hop out of the corner; the
        # follower takes over with wall contact established.
        pos, heading = (1, 2), (0, 1)
        visited = [(1, 1), pos]
        for _ in range(14):
            pos, heading = ring_step(pos, heading, True, 0, 1, passable)
            visited.append(pos)
            if pos == (1, 1):
                break
        # The clockwise ring: 12 cells around the 2x2 block.
        assert len(set(visited)) == 12
        assert (4, 4) in visited and (2, 4) in visited and (4, 1) in visited

    def test_ring_step_boxed_in(self):
        assert ring_step((0, 0), (0, 1), True, 0, 1, lambda c: False) is None

    def test_fill_interior_closed(self):
        ring = {(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 2), (3, 3)}
        interior = fill_interior(ring, (1, 1), (6, 6))
        assert interior == {(2, 2)}

    def test_fill_interior_broken_at_border(self):
        # Region {(4,8)} at the mesh top border: chain is an open arc
        # from the corner (3,7) around the in-mesh side.
        chain = {(3, 7), (3, 8), (4, 7), (5, 7), (5, 8)}
        interior = fill_interior(chain, (3, 7), (9, 9), closed=False)
        assert interior == {(4, 8)}

    def test_fill_interior_no_seeds_discards(self):
        chain = {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert fill_interior(chain, (0, 0), (6, 6), closed=False) == set()

    def test_tops_bottoms(self):
        cells = {(1, 1), (1, 3), (2, 2)}
        assert column_tops(cells) == {1: 3, 2: 2}
        assert column_bottoms(cells) == {1: 1, 2: 2}


class TestSectionIdentification2D:
    def _sections(self, mask):
        pipe = DistributedMCCPipeline(Mesh2D(*mask.shape), mask).build()
        return pipe.identified_sections()

    def test_singleton(self):
        secs = self._sections(mask_of_cells([(4, 4)], (9, 9)))
        assert frozenset({(4, 4)}) in set(secs.values())

    def test_rectangle(self):
        cells = [(3, 3), (3, 4), (4, 3), (4, 4)]
        secs = self._sections(mask_of_cells(cells, (9, 9)))
        assert frozenset(cells) in set(secs.values())

    def test_staircase_with_fills(self):
        mask = mask_of_cells([(3, 5), (4, 4), (5, 3)], (9, 9))
        expected = frozenset(map(tuple, np.argwhere(label_grid(mask).unsafe_mask)))
        secs = self._sections(mask)
        assert expected in set(secs.values())

    def test_high_border_component_recovered(self):
        # Fault on the mesh top border: broken ring, IDENT_BACK assembly.
        secs = self._sections(mask_of_cells([(4, 8)], (9, 9)))
        assert frozenset({(4, 8)}) in set(secs.values())

    def test_low_border_component_has_no_corner(self):
        # A fault on the mesh floor has its initialization corner
        # off-mesh: no identification — and none needed, because its
        # negative shadow is empty (nothing lies below it).
        secs = self._sections(mask_of_cells([(4, 0)], (9, 9)))
        assert frozenset({(4, 0)}) not in set(secs.values())

    @given(st.integers(0, 2**32 - 1), st.integers(1, 9))
    @settings(max_examples=10, deadline=None)
    def test_interior_components_covered(self, seed, count):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (9, 9), count)
        lab = label_grid(mask)
        pipe = DistributedMCCPipeline(Mesh2D(9), mask).build()
        covered = set()
        for shape in pipe.identified_sections().values():
            covered |= set(map(tuple, shape))
        for mcc in extract_mccs(lab):
            cells = set(map(tuple, mcc.cells.tolist()))
            touches_border = any(
                c == 0 or c == 8 for cell in cells for c in cell
            )
            corner = mcc.initialization_corner()
            corner_ok = (
                lab.safe_mask[corner]
                if all(0 <= c < 9 for c in corner)
                else False
            )
            if not touches_border and corner_ok:
                assert cells <= covered, sorted(cells - covered)


class TestSectionIdentification3D:
    def test_fig5_sections_cover_unsafe(self, fig5_mask):
        lab = label_grid(fig5_mask)
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask).build()
        covered = set()
        for shape in pipe.identified_sections().values():
            covered |= set(map(tuple, shape))
        unsafe = set(map(tuple, np.argwhere(lab.unsafe_mask)))
        assert unsafe <= covered

    def test_sections_are_plane_confined(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask).build()
        for (plane, _corner), shape in pipe.identified_sections().items():
            fixed_axes = [a for a in range(3) if a not in plane]
            for axis in fixed_axes:
                values = {c[axis] for c in shape}
                assert len(values) == 1
