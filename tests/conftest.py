"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.orientation import Orientation
from repro.routing.oracle import minimal_path_exists


def random_mask(rng: np.random.Generator, shape, count) -> np.ndarray:
    """A random fault mask with exactly ``count`` faults."""
    size = int(np.prod(shape))
    count = min(count, size)
    mask = np.zeros(shape, dtype=bool)
    idx = rng.choice(size, count, replace=False)
    mask[np.unravel_index(idx, shape)] = True
    return mask


def oracle_feasible(fault_mask: np.ndarray, source, dest) -> bool:
    """Ground truth: monotone path avoiding faulty nodes (any pair)."""
    orientation = Orientation.for_pair(source, dest, fault_mask.shape)
    return minimal_path_exists(
        orientation.to_canonical(~fault_mask),
        orientation.map_coord(source),
        orientation.map_coord(dest),
    )


@pytest.fixture(scope="session", autouse=True)
def _sanitize_cache_barrier():
    """Digest-verify the labelling cache for the whole run when
    ``REPRO_SANITIZE=1`` (the DES/online sanitizers self-install; the
    cache barrier is process-wide state, so the suite owns it)."""
    from repro.analysis.sanitize import enabled, install_cache_barrier

    if not enabled():
        yield None
        return
    handle = install_cache_barrier()
    yield handle
    handle.uninstall()


@pytest.fixture
def sanitized_cache_barrier():
    """An unconditionally installed cache barrier (sanitizer tests)."""
    from repro.analysis.sanitize import install_cache_barrier
    from repro.core.model_cache import clear_labelling_cache

    handle = install_cache_barrier()
    yield handle
    handle.uninstall()
    clear_labelling_cache()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20050610)


@pytest.fixture
def fig5_mask() -> np.ndarray:
    """The paper's Figure 5 fault pattern in a 10^3 mesh."""
    mask = np.zeros((10, 10, 10), dtype=bool)
    for cell in [
        (5, 5, 6), (6, 5, 5), (5, 6, 5), (6, 7, 5),
        (7, 6, 5), (5, 4, 7), (4, 5, 7), (7, 8, 4),
    ]:
        mask[cell] = True
    return mask
