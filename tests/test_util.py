"""Tests for util helpers (rng, validation)."""

import numpy as np
import pytest

from repro.util.rng import (
    as_seed_sequence,
    iter_seeds,
    make_rng,
    sample_distinct,
    shuffled,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.util.validation import (
    check_index,
    check_positive,
    check_probability,
    check_shape_member,
)


class TestRng:
    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_seeded_reproducible(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_reproducible(self):
        xs = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        ys = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        assert xs == ys

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_spawn_rngs_seed_sequence_stays_stateful(self):
        # Successive calls on ONE sequence must keep yielding fresh
        # independent streams (the pre-existing contract).
        seq = np.random.SeedSequence(3)
        first = [g.integers(10**9) for g in spawn_rngs(seq, 2)]
        second = [g.integers(10**9) for g in spawn_rngs(seq, 2)]
        assert first != second

    def test_spawn_seed_sequences_is_replayable(self):
        # The sharded sweep runner's derivation is positional: the same
        # input sequence always spawns the same children.
        seq = np.random.SeedSequence(3)
        a = spawn_seed_sequences(seq, 3)
        b = spawn_seed_sequences(seq, 3)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert seq.n_children_spawned == 0  # caller's sequence untouched

    def test_as_seed_sequence_copies_without_advancing(self):
        seq = np.random.SeedSequence(9)
        copy = as_seed_sequence(seq)
        assert copy is not seq
        assert copy.entropy == seq.entropy
        assert copy.spawn_key == seq.spawn_key

    def test_sample_distinct(self):
        rng = make_rng(0)
        draw = sample_distinct(rng, 10, 10)
        assert sorted(draw.tolist()) == list(range(10))
        with pytest.raises(ValueError):
            sample_distinct(rng, 3, 4)
        with pytest.raises(ValueError):
            sample_distinct(rng, 3, -1)

    def test_iter_seeds(self):
        rngs = iter_seeds(3, ["a", "b"])
        assert set(rngs) == {"a", "b"}

    def test_shuffled_preserves_input(self):
        items = [1, 2, 3, 4]
        out = shuffled(make_rng(0), items)
        assert sorted(out) == items and items == [1, 2, 3, 4]


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_index(self):
        check_index("i", 2, 3)
        with pytest.raises(IndexError):
            check_index("i", 3, 3)

    def test_check_shape_member(self):
        check_shape_member("c", (1, 2), (3, 3))
        with pytest.raises(ValueError):
            check_shape_member("c", (1,), (3, 3))
        with pytest.raises(IndexError):
            check_shape_member("c", (3, 0), (3, 3))
