"""Tests for util helpers (rng, validation)."""

import numpy as np
import pytest

from repro.util.rng import (
    as_seed_sequence,
    iter_seeds,
    make_rng,
    sample_distinct,
    shuffled,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.util.validation import (
    check_index,
    check_positive,
    check_probability,
    check_shape_member,
)


class TestRng:
    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_seeded_reproducible(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_reproducible(self):
        xs = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        ys = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        assert xs == ys

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_spawn_rngs_seed_sequence_stays_stateful(self):
        # Successive calls on ONE sequence must keep yielding fresh
        # independent streams (the pre-existing contract).
        seq = np.random.SeedSequence(3)
        first = [g.integers(10**9) for g in spawn_rngs(seq, 2)]
        second = [g.integers(10**9) for g in spawn_rngs(seq, 2)]
        assert first != second

    def test_spawn_seed_sequences_is_replayable(self):
        # The sharded sweep runner's derivation is positional: the same
        # input sequence always spawns the same children.
        seq = np.random.SeedSequence(3)
        a = spawn_seed_sequences(seq, 3)
        b = spawn_seed_sequences(seq, 3)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert seq.n_children_spawned == 0  # caller's sequence untouched

    def test_as_seed_sequence_copies_without_advancing(self):
        seq = np.random.SeedSequence(9)
        copy = as_seed_sequence(seq)
        assert copy is not seq
        assert copy.entropy == seq.entropy
        assert copy.spawn_key == seq.spawn_key

    def test_sample_distinct(self):
        rng = make_rng(0)
        draw = sample_distinct(rng, 10, 10)
        assert sorted(draw.tolist()) == list(range(10))
        with pytest.raises(ValueError):
            sample_distinct(rng, 3, 4)
        with pytest.raises(ValueError):
            sample_distinct(rng, 3, -1)

    def test_iter_seeds(self):
        rngs = iter_seeds(3, ["a", "b"])
        assert set(rngs) == {"a", "b"}

    def test_shuffled_preserves_input(self):
        items = [1, 2, 3, 4]
        out = shuffled(make_rng(0), items)
        assert sorted(out) == items and items == [1, 2, 3, 4]


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_index(self):
        check_index("i", 2, 3)
        with pytest.raises(IndexError):
            check_index("i", 3, 3)

    def test_check_shape_member(self):
        check_shape_member("c", (1, 2), (3, 3))
        with pytest.raises(ValueError):
            check_shape_member("c", (1,), (3, 3))
        with pytest.raises(IndexError):
            check_shape_member("c", (3, 0), (3, 3))


class TestLRUCacheEviction:
    def test_pop_removes_without_counting_eviction(self):
        from repro.util.caching import LRUCache

        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None  # absent now
        assert cache.pop("never") is None
        assert cache.evictions == 0
        assert len(cache) == 1 and "b" in cache

    def test_keys_snapshot_is_lru_ordered_and_safe_to_mutate_over(self):
        from repro.util.caching import LRUCache

        cache = LRUCache(8)
        for k in "abc":
            cache.put(k, k)
        cache.get("a")  # refresh: order becomes b, c, a
        assert cache.keys() == ["b", "c", "a"]
        for k in cache.keys():  # popping while iterating the snapshot
            cache.pop(k)
        assert len(cache) == 0


class TestMaskDigest:
    def test_content_addressing(self):
        import numpy as np

        from repro.util.caching import mask_digest

        a = np.zeros((4, 5), dtype=bool)
        b = np.zeros((4, 5), dtype=bool)
        assert mask_digest(a) == mask_digest(b)
        b[1, 2] = True
        assert mask_digest(a) != mask_digest(b)

    def test_shape_disambiguates_same_bits(self):
        import numpy as np

        from repro.util.caching import mask_digest

        a = np.zeros((2, 8), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        assert mask_digest(a) != mask_digest(b)

    def test_noncontiguous_views_hash_by_content(self):
        import numpy as np

        from repro.util.caching import mask_digest

        base = np.zeros((5, 5), dtype=bool)
        base[1, 3] = True
        flipped = np.flip(base, axis=(0, 1))
        direct = flipped.copy()
        assert mask_digest(flipped) == mask_digest(direct)
