"""Failure injection: protocol behaviour when faults appear mid-run.

The paper's discard semantics (TTL, meet-failure) exist precisely so
that identification survives instability: "If two identification
messages cannot meet …, or if any of them finds the change of shape …,
it suggests that this MCC is not stable.  The message is discarded to
avoid generating incorrect MCC boundary information."  These tests
inject faults *during* the protocols and assert the system degrades by
discarding, never by producing wrong state — plus the recovery path
(re-running the protocols on the new fault set converges to the new
truth), which is the paper's future-work scenario.
"""

import numpy as np

from repro.core.labelling import label_grid
from repro.distributed.pipeline import DistributedMCCPipeline, MCCProtocolNode
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D
from repro.simkit.network import MeshNetwork


class TestMidProtocolFaults:
    def test_fault_during_identification_discards_not_corrupts(self):
        """Kill a ring node while identification walks are in flight."""
        faults = mask_of_cells([(5, 5), (5, 6)], (10, 10))
        mesh = Mesh2D(10)
        pipe = DistributedMCCPipeline(mesh, faults)
        net = pipe.net
        net.start()
        net.run_to_quiescence()  # labelling done
        for coord, node in net.nodes.items():
            if not net.is_faulty(coord):
                net.sim.schedule(0.0, node.start_identification)
        # Let the walks start, then kill a ring node mid-walk.
        net.run(until=net.sim.now + 4.0)
        net.inject_fault((4, 5))  # west edge node of the MCC ring
        net.run_to_quiescence()
        # Whatever was identified must be a *true* region (the original
        # component) — never a corrupted shape containing safe cells.
        lab = label_grid(faults)
        for (_plane, corner), shape in pipe.identified_sections().items():
            for cell in shape:
                assert lab.unsafe_mask[cell] or cell == (4, 5), (corner, cell)

    def test_network_quiesces_despite_injection(self):
        """No livelock: TTLs and discard rules drain the event queue."""
        faults = mask_of_cells([(3, 3), (6, 6), (3, 6)], (10, 10))
        net = MeshNetwork(Mesh2D(10), faults, node_factory=MCCProtocolNode)
        net.start()
        net.run(until=2.0)
        net.inject_fault((2, 3))
        net.inject_fault((7, 6))
        net.run_to_quiescence(max_events=2_000_000)  # must terminate

    def test_recovery_by_rerun(self):
        """Paper future work: re-running on the new fault set converges."""
        before = mask_of_cells([(4, 5)], (9, 9))
        after = before.copy()
        after[5, 4] = True  # new fault glues a staircase
        pipe = DistributedMCCPipeline(Mesh2D(9), after).build()
        assert np.array_equal(pipe.labels_grid(), label_grid(after).status)
        assert pipe.labels_grid()[4, 4] == 2  # newly useless
        result = pipe.route((0, 0), (8, 8))
        assert result["status"] == "delivered"
        assert len(result["path"]) - 1 == 16

    def test_messages_to_dead_nodes_are_counted_drops(self):
        faults = mask_of_cells([(5, 5)], (8, 8))
        pipe = DistributedMCCPipeline(Mesh2D(8), faults)
        net = pipe.net
        net.start()
        net.run(until=1.0)
        net.inject_fault((4, 5))  # neighbor about to receive LABEL/EDGE
        net.run_to_quiescence()
        dropped = net.stats.gauges.get("dropped[dst-faulty]", 0)
        assert dropped >= 0  # accounting exists; no crash on delivery

    def test_route_query_after_partition(self):
        """A wall of faults partitions the quadrant: query reports
        infeasible instead of hanging."""
        cells = [(x, 4) for x in range(9)]
        faults = mask_of_cells(cells, (9, 9))
        pipe = DistributedMCCPipeline(Mesh2D(9), faults)
        result = pipe.route((0, 0), (8, 8))
        assert result["status"] == "infeasible"
