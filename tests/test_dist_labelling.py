"""Property P4 (labelling): the gossip protocol equals Algorithm 1/4."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import label_grid
from repro.distributed.labelling_proto import (
    labels_as_grid,
    run_distributed_labelling,
)
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D, Mesh3D
from tests.conftest import random_mask


class TestEquivalence:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 14))
    @settings(max_examples=15, deadline=None)
    def test_matches_centralized_2d(self, seed, count):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (8, 8), count)
        net = run_distributed_labelling(Mesh2D(8), mask)
        assert np.array_equal(labels_as_grid(net), label_grid(mask).status)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_matches_centralized_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(0, 16)))
        net = run_distributed_labelling(Mesh3D(5), mask)
        assert np.array_equal(labels_as_grid(net), label_grid(mask).status)

    def test_fig5_scene(self, fig5_mask):
        net = run_distributed_labelling(Mesh3D(10), fig5_mask)
        grid = labels_as_grid(net)
        assert grid[5, 5, 5] == 2  # useless
        assert grid[5, 5, 7] == 3  # can't-reach
        assert grid[6, 6, 5] == 0  # the hole stays safe


class TestProtocolBehaviour:
    def test_no_faults_no_messages(self):
        net = run_distributed_labelling(Mesh2D(6), np.zeros((6, 6), dtype=bool))
        # Nothing to announce: labels only change near faults.
        assert net.stats.total_messages == 0

    def test_message_count_scales_with_region_not_mesh(self):
        small_mesh = run_distributed_labelling(
            Mesh2D(8), mask_of_cells([(3, 4), (4, 3)], (8, 8))
        )
        big_mesh = run_distributed_labelling(
            Mesh2D(16), mask_of_cells([(3, 4), (4, 3)], (16, 16))
        )
        assert small_mesh.stats.total_messages > 0
        # Same fault cluster, 4x the nodes: message cost grows far less.
        assert (
            big_mesh.stats.total_messages
            <= small_mesh.stats.total_messages * 2
        )

    def test_neighbors_know_each_other(self, rng):
        mask = random_mask(rng, (6, 6), 6)
        net = run_distributed_labelling(Mesh2D(6), mask)
        lab = label_grid(mask)
        for coord, node in net.nodes.items():
            if net.is_faulty(coord):
                continue
            for n, known in node.store["known_labels"].items():
                assert known == lab.status[n], (coord, n)

    def test_relabelling_after_dynamic_fault(self, rng):
        """Future-work scenario: a new fault appears; re-running the
        protocol from current knowledge converges to the new truth."""
        mask = mask_of_cells([(3, 4)], (8, 8))
        run_distributed_labelling(Mesh2D(8), mask)
        # Inject a second fault and restart the protocol on the union.
        mask2 = mask.copy()
        mask2[4, 3] = True
        net2 = run_distributed_labelling(Mesh2D(8), mask2)
        assert np.array_equal(labels_as_grid(net2), label_grid(mask2).status)
        assert labels_as_grid(net2)[3, 3] == 2  # now useless
