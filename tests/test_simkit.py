"""Tests for the discrete-event simulation kit."""

import numpy as np
import pytest

from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D
from repro.simkit.event_queue import EventQueue
from repro.simkit.message import Message
from repro.simkit.network import MeshNetwork
from repro.simkit.node import NodeProcess
from repro.simkit.simulator import Simulator
from repro.simkit.stats import StatsCollector
from repro.simkit.trace import TraceLog


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        out = []
        q.push(3.0, lambda: out.append("c"))
        q.push(1.0, lambda: out.append("a"))
        q.push(2.0, lambda: out.append("b"))
        while q:
            _, action = q.pop()
            action()
        assert out == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        q = EventQueue()
        out = []
        for i in range(5):
            q.push(1.0, lambda i=i: out.append(i))
        while q:
            q.pop()[1]()
        assert out == [0, 1, 2, 3, 4]

    def test_cancel(self):
        q = EventQueue()
        out = []
        handle = q.push(1.0, lambda: out.append("x"))
        q.push(2.0, lambda: out.append("y"))
        q.cancel(handle)
        assert len(q) == 1
        while q:
            q.pop()[1]()
        assert out == ["y"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda: None)

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def first():
            out.append("first")
            sim.schedule(1.0, lambda: out.append("second"))

        sim.schedule(1.0, first)
        sim.run_to_quiescence()
        assert out == ["first", "second"]
        assert sim.now == 2.0

    def test_until_limit(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: out.append(1))
        sim.schedule(5.0, lambda: out.append(5))
        sim.run(until=2.0)
        assert out == [1]
        assert not sim.idle

    def test_runaway_protocol_detected(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_to_quiescence(max_events=100)

    def test_cancel_via_simulator(self):
        sim = Simulator()
        out = []
        handle = sim.schedule(1.0, lambda: out.append(1))
        sim.cancel(handle)
        sim.run()
        assert out == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.5, lambda: None)

    def test_reentrant_peek_keeps_short_delay_schedules_in_order(self):
        # Regression: an action that peeks the queue (``sim.idle``)
        # after its own epoch drained promotes a *future* bucket to the
        # drain stack; a short-delay schedule issued right after must
        # still fire in (time, seq) order — not behind the promoted
        # epoch at a wrong virtual time.
        sim = Simulator()
        fired = []

        def first():
            assert not sim.idle  # reentrant peek loads second's bucket
            sim.schedule(0.1, lambda: fired.append(("between", sim.now)))
            fired.append(("first", sim.now))

        sim.schedule(0.5, first)
        sim.schedule(5.5, lambda: fired.append(("second", sim.now)))
        sim.run_to_quiescence()
        assert fired == [("first", 0.5), ("between", 0.5 + 0.1), ("second", 5.5)]


class _Echo(NodeProcess):
    """Test node: replies PONG to PING once."""

    def on_start(self):
        self.store["got"] = []
        if self.coord == (0, 0):
            self.send((0, 1), "PING")

    def on_message(self, msg):
        self.store["got"].append(msg.kind)
        if msg.kind == "PING":
            self.send(msg.src, "PONG")


class TestNetwork:
    def test_ping_pong(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool), _Echo)
        net.start()
        net.run_to_quiescence()
        assert net.nodes[(0, 1)].store["got"] == ["PING"]
        assert net.nodes[(0, 0)].store["got"] == ["PONG"]
        assert net.stats.by_kind() == {"PING": 1, "PONG": 1}

    def test_non_neighbor_send_rejected(self):
        net = MeshNetwork(Mesh2D(3), np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError):
            net.transmit(Message("X", (0, 0), (2, 0)))

    def test_faulty_nodes_neither_send_nor_receive(self):
        faults = mask_of_cells([(0, 1)], (2, 2))
        net = MeshNetwork(Mesh2D(2), faults, _Echo)
        net.start()
        net.run_to_quiescence()
        assert net.stats.gauges["dropped[dst-faulty]"] == 1
        assert net.nodes[(0, 0)].store["got"] == []

    def test_ttl_expiry_drops(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool))
        msg = Message("HOP", (0, 0), (0, 1), ttl=0, hops=1)
        net.transmit(msg)
        net.run_to_quiescence()
        assert net.stats.gauges["dropped[ttl]"] == 1

    def test_trace_records_deliveries(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool), _Echo, trace=True)
        net.start()
        net.run_to_quiescence()
        assert len(net.trace) == 2
        assert net.trace.filter("PING")[0].dst == (0, 1)

    def test_deterministic_replay(self):
        def run():
            net = MeshNetwork(Mesh2D(3), np.zeros((3, 3), dtype=bool), _Echo)
            net.start()
            net.run_to_quiescence()
            return net.sim.now, net.stats.total_messages

        assert run() == run()

    def test_inject_fault_mid_run(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool), _Echo)
        net.start()
        net.inject_fault((0, 1))
        net.run_to_quiescence()
        assert net.nodes[(0, 0)].store["got"] == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork(Mesh2D(3), np.zeros((2, 2), dtype=bool))

    def test_repair_revives_node(self):
        faults = mask_of_cells([(0, 1)], (2, 2))
        net = MeshNetwork(Mesh2D(2), faults, _Echo)
        net.repair((0, 1))
        assert not net.is_faulty((0, 1))
        net.start()
        net.run_to_quiescence()
        assert net.nodes[(0, 1)].store["got"] == ["PING"]

    def test_query_tagged_sends_attributed(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool))
        net.transmit(Message("A", (0, 0), (0, 1), payload={"query": 7}))
        net.transmit(Message("B", (0, 1), (0, 0), payload={"query": 7}))
        net.transmit(Message("C", (0, 0), (1, 0), payload={"query": 9}))
        net.transmit(Message("D", (1, 0), (0, 0)))
        net.run_to_quiescence()
        assert net.stats.query_messages[7] == 2
        assert net.stats.query_messages[9] == 1
        assert net.stats.total_messages == 4


class TestStatsAndTrace:
    def test_stats_summary(self):
        stats = StatsCollector()
        stats.on_send("A")
        stats.on_send("A")
        stats.on_send("B")
        stats.bump("x", 2.5)
        summary = stats.summary()
        assert summary["msgs[A]"] == 2
        assert summary["msgs[total]"] == 3
        assert summary["x"] == 2.5
        stats.reset()
        assert stats.total_messages == 0

    def test_trace_bounded(self):
        trace = TraceLog(limit=2)
        for i in range(5):
            trace.record(float(i), "K", (0, 0), (0, 1))
        assert len(trace) == 2 and trace.dropped == 3

    def test_trace_render(self):
        trace = TraceLog()
        trace.record(1.0, "K", (0, 0), (0, 1), note="hello")
        text = trace.render()
        assert "K" in text and "hello" in text


class TestCancelAccounting:
    """EventQueue len/bool stay exact through dead-handle cancels."""

    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0
        q.cancel(handle)  # already fired: must not corrupt accounting
        assert len(q) == 0
        assert not q
        q.push(2.0, lambda: None)
        assert len(q) == 1 and bool(q)

    def test_double_cancel(self):
        q = EventQueue()
        keep = q.push(1.0, lambda: None)
        handle = q.push(2.0, lambda: None)
        q.cancel(handle)
        q.cancel(handle)
        assert len(q) == 1
        assert q.pop()[0] == 1.0
        assert len(q) == 0
        del keep

    def test_unknown_handle_cancel_is_noop(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.cancel(12345)
        assert len(q) == 1 and bool(q)

    def test_len_never_negative_through_sequences(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(3)]
        q.pop()
        for h in handles:
            q.cancel(h)
            q.cancel(h)
        assert len(q) == 0
        assert q.pop() is None
        assert len(q) == 0

    def test_cancel_then_peek_then_len(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(first)
        assert q.peek_time() == 2.0
        assert len(q) == 1


class TestNonFiniteTimes:
    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), lambda: None)

    def test_inf_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("inf"), lambda: None)

    def test_nan_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(float("nan"), lambda: None)

    def test_inf_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(float("-inf"), lambda: None)


class TestForwardedPayloadIsolation:
    def test_forwarded_copy_does_not_alias(self):
        msg = Message("ROUTE", (0, 0), (0, 1), payload={"trail": "a", "n": 1})
        hop = msg.forwarded((0, 2))
        hop.payload["n"] = 2
        hop.payload["extra"] = True
        assert msg.payload == {"trail": "a", "n": 1}

    def test_forwarded_keeps_identity_and_hops(self):
        msg = Message("ROUTE", (0, 0), (0, 1), payload={"q": 1}, hops=3, ttl=9)
        hop = msg.forwarded((1, 1))
        assert hop.msg_id == msg.msg_id
        assert hop.hops == 4 and hop.ttl == 9
        assert hop.src == (0, 1) and hop.dst == (1, 1)
        assert hop.payload == msg.payload and hop.payload is not msg.payload

    def test_clear_writes_through_on_owned_view(self):
        # An owned view behaves exactly like the old plain-dict payload:
        # a caller that kept a reference to the dict it passed in sees
        # the clear and every later write.
        d = {"a": 1}
        msg = Message("ROUTE", (0, 0), (0, 1), payload=d)
        msg.payload.clear()
        assert d == {}
        msg.payload["b"] = 2
        assert d == {"b": 2}

    def test_clear_on_shared_view_stays_isolated(self):
        msg = Message("ROUTE", (0, 0), (0, 1), payload={"a": 1})
        hop = msg.forwarded((0, 2))
        hop.payload.clear()
        assert msg.payload == {"a": 1}
        assert hop.payload == {}


class TestContendedLinks:
    def _net(self, capacity, shape=(2, 2)):
        return MeshNetwork(
            Mesh2D(shape[0]), np.zeros(shape, dtype=bool), link_capacity=capacity
        )

    def test_uncontended_default_delivers_in_parallel(self):
        net = self._net(None)
        seen = []
        net.nodes[(0, 1)].on_message = lambda m: seen.append(net.sim.now)
        net.transmit(Message("A", (0, 0), (0, 1)))
        net.transmit(Message("B", (0, 0), (0, 1)))
        net.run_to_quiescence()
        assert seen == [1.0, 1.0]

    def test_capacity_one_serializes_fifo(self):
        net = self._net(1)
        seen = []
        net.nodes[(0, 1)].on_message = lambda m: seen.append((m.kind, net.sim.now))
        for kind in ("A", "B", "C"):
            net.transmit(Message(kind, (0, 0), (0, 1)))
        net.run_to_quiescence()
        assert seen == [("A", 1.0), ("B", 2.0), ("C", 3.0)]
        assert net.stats.link_peak_depth[((0, 0), (0, 1))] == 3
        assert net.stats.gauges["link_peak_depth"] == 3
        assert net.stats.gauges["link_wait_total"] == 3.0  # 0 + 1 + 2

    def test_capacity_two_carries_pairs(self):
        net = self._net(2)
        seen = []
        net.nodes[(0, 1)].on_message = lambda m: seen.append(net.sim.now)
        for _ in range(4):
            net.transmit(Message("A", (0, 0), (0, 1)))
        net.run_to_quiescence()
        assert seen == [1.0, 1.0, 2.0, 2.0]

    def test_directed_links_are_independent(self):
        net = self._net(1)
        times = {}
        net.nodes[(0, 1)].on_message = lambda m: times.setdefault("fwd", net.sim.now)
        net.nodes[(0, 0)].on_message = lambda m: times.setdefault("rev", net.sim.now)
        net.transmit(Message("A", (0, 0), (0, 1)))
        net.transmit(Message("B", (0, 1), (0, 0)))
        net.run_to_quiescence()
        assert times == {"fwd": 1.0, "rev": 1.0}

    def test_set_link_capacity_requires_idle(self):
        net = self._net(None)
        net.transmit(Message("A", (0, 0), (0, 1)))
        with pytest.raises(RuntimeError):
            net.set_link_capacity(1)
        net.run_to_quiescence()
        net.set_link_capacity(1)
        assert net.link_capacity == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            self._net(0)

    def test_contended_run_is_deterministic(self):
        def run():
            net = self._net(1, shape=(3, 3))
            for i in range(5):
                net.transmit(Message(f"M{i}", (0, 0), (0, 1)))
                net.transmit(Message(f"N{i}", (0, 1), (0, 2)))
            net.run_to_quiescence()
            return net.sim.now, net.stats.total_messages, dict(net.stats.gauges)

        assert run() == run()


class TestFrames:
    def test_frame_latency_uncontended(self):
        net = MeshNetwork(Mesh2D(3), np.zeros((3, 3), dtype=bool))
        net.inject_frame([(0, 0), (0, 1), (0, 2)])
        net.run_to_quiescence()
        assert net.stats.frame_latencies == [2.0]
        assert net.stats.frames_delivered == 1

    def test_frame_latency_queues_behind_contention(self):
        net = MeshNetwork(
            Mesh2D(3), np.zeros((3, 3), dtype=bool), link_capacity=1
        )
        net.inject_frame([(0, 0), (0, 1), (0, 2)])
        net.inject_frame([(0, 0), (0, 1), (0, 2)])
        net.run_to_quiescence()
        # Second frame waits one slot on the first link, then one more on
        # the second: head-of-line blocking carries through the path.
        assert net.stats.frame_latencies == [2.0, 3.0]

    def test_frame_into_faulty_node_lost(self):
        faults = mask_of_cells([(0, 1)], (3, 3))
        net = MeshNetwork(Mesh2D(3), faults)
        net.inject_frame([(0, 0), (0, 1), (0, 2)])
        net.run_to_quiescence()
        assert net.stats.frames_delivered == 0
        assert net.stats.gauges["frames[lost]"] == 1

    def test_zero_hop_frame(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool))
        net.inject_frame([(0, 0)])
        assert net.stats.frame_latencies == [0.0]

    def test_send_frame_validates_origin(self):
        net = MeshNetwork(Mesh2D(2), np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            net.nodes[(0, 0)].send_frame([(0, 1), (0, 0)])
        net.nodes[(0, 0)].send_frame([(0, 0), (0, 1)])
        net.run_to_quiescence()
        assert net.stats.frames_delivered == 1

    def test_frame_counts_as_messages(self):
        net = MeshNetwork(Mesh2D(3), np.zeros((3, 3), dtype=bool))
        net.inject_frame([(0, 0), (0, 1), (0, 2)], query=42)
        net.run_to_quiescence()
        assert net.stats.messages_sent["FRAME"] == 2
        assert net.stats.query_messages[42] == 2
