"""Tests for MCC extraction."""

import numpy as np
import pytest

from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.mesh.regions import mask_of_cells
from tests.conftest import random_mask


class TestExtraction2D:
    def test_two_separate_faults_two_mccs(self):
        lab = label_grid(mask_of_cells([(1, 1), (5, 5)], (8, 8)))
        mccs = extract_mccs(lab)
        assert len(mccs) == 2
        assert all(m.size == 1 and m.fault_count == 1 for m in mccs)

    def test_glued_staircase_single_mcc(self):
        lab = label_grid(mask_of_cells([(2, 4), (3, 3), (4, 2)], (8, 8)))
        mccs = extract_mccs(lab)
        assert len(mccs) == 1
        mcc = mccs[1]
        assert mcc.fault_count == 3
        assert mcc.nonfaulty_count == mcc.size - 3

    def test_labels_grid_consistency(self, rng):
        lab = label_grid(random_mask(rng, (10, 10), 12))
        mccs = extract_mccs(lab)
        assert (mccs.labels > 0).sum() == lab.unsafe_mask.sum()
        for mcc in mccs:
            assert (mccs.labels[tuple(mcc.cells.T)] == mcc.index).all()

    def test_component_at(self, rng):
        lab = label_grid(mask_of_cells([(3, 3)], (6, 6)))
        mccs = extract_mccs(lab)
        assert mccs.component_at((3, 3)).index == 1
        assert mccs.component_at((0, 0)) is None

    def test_corners(self):
        lab = label_grid(mask_of_cells([(3, 3), (3, 4), (4, 3), (4, 4)], (8, 8)))
        mcc = extract_mccs(lab)[1]
        assert mcc.initialization_corner() == (2, 2)
        assert mcc.opposite_corner() == (5, 5)

    def test_indexing_errors(self, rng):
        mccs = extract_mccs(label_grid(mask_of_cells([(3, 3)], (6, 6))))
        with pytest.raises(IndexError):
            mccs[0]
        with pytest.raises(IndexError):
            mccs[2]

    def test_totals(self, rng):
        mask = random_mask(rng, (10, 10), 15)
        lab = label_grid(mask)
        mccs = extract_mccs(lab)
        assert mccs.total_unsafe == int(lab.unsafe_mask.sum())
        assert mccs.total_nonfaulty == int(lab.unsafe_mask.sum() - mask.sum())


class TestExtraction3D:
    def test_fig5_face_connectivity_counts(self, fig5_mask):
        lab = label_grid(fig5_mask)
        mccs = extract_mccs(lab)
        # Face connectivity: the big blob splits into the 7-cell core
        # plus (6,7,5), (7,6,5) singletons, plus (7,8,4).
        assert sorted(m.size for m in mccs) == [1, 1, 1, 7]

    def test_fig5_paper_connectivity_two_mccs(self, fig5_mask):
        # The paper groups edge-adjacent cells: exactly two MCCs, one
        # being the lone fault (7,8,4) (Section 4, Figure 5).
        lab = label_grid(fig5_mask)
        mccs = extract_mccs(lab, connectivity=2)
        assert len(mccs) == 2
        sizes = sorted(m.size for m in mccs)
        assert sizes == [1, 9]
        singleton = next(m for m in mccs if m.size == 1)
        assert tuple(singleton.cells[0]) == (7, 8, 4)

    def test_masks_partition_unsafe(self, rng, fig5_mask):
        lab = label_grid(fig5_mask)
        mccs = extract_mccs(lab)
        union = np.zeros(lab.shape, dtype=bool)
        for mcc in mccs:
            m = mcc.mask(lab.shape)
            assert not (union & m).any()  # disjoint
            union |= m
        assert np.array_equal(union, lab.unsafe_mask)

    def test_bounding_boxes(self, fig5_mask):
        lab = label_grid(fig5_mask)
        for mcc in extract_mccs(lab):
            for cell in mcc.cells:
                assert mcc.box.contains(tuple(int(c) for c in cell))
