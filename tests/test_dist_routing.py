"""Property P4 (routing): the DES routing agrees with the oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import SAFE, label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.mesh.coords import is_monotone_path, manhattan
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D, Mesh3D
from repro.routing.oracle import minimal_path_exists
from tests.conftest import random_mask


class TestRouting2D:
    def test_clear_mesh_minimal(self):
        pipe = DistributedMCCPipeline(Mesh2D(8), np.zeros((8, 8), dtype=bool))
        result = pipe.route((1, 1), (6, 5))
        assert result["status"] == "delivered"
        path = result["path"]
        assert path[0] == (1, 1) and path[-1] == (6, 5)
        assert len(path) - 1 == 9
        assert is_monotone_path(path)

    def test_same_node_trivially_delivered(self):
        pipe = DistributedMCCPipeline(Mesh2D(5), np.zeros((5, 5), dtype=bool))
        assert pipe.route((2, 2), (2, 2))["status"] == "delivered"

    def test_infeasible_detected(self):
        mask = mask_of_cells([(2, 3)], (6, 6))
        pipe = DistributedMCCPipeline(Mesh2D(6), mask)
        result = pipe.route((2, 0), (2, 5))  # column trapped
        assert result["status"] == "infeasible"

    def test_route_around_block(self):
        mask = mask_of_cells([(3, 3), (3, 4), (4, 3), (4, 4)], (9, 9))
        pipe = DistributedMCCPipeline(Mesh2D(9), mask)
        result = pipe.route((0, 0), (8, 8))
        assert result["status"] == "delivered"
        assert len(result["path"]) - 1 == 16
        assert not any(mask[c] for c in result["path"])

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_matches_oracle_random(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (9, 9), int(rng.integers(1, 10)))
        lab = label_grid(mask)
        if lab.status[0, 0] != SAFE:
            return
        pipe = DistributedMCCPipeline(Mesh2D(9), mask).build()
        for _ in range(6):
            d = tuple(int(v) for v in rng.integers(0, 9, 2))
            if lab.status[d] != SAFE:
                continue
            want = minimal_path_exists(~mask, (0, 0), d)
            result = pipe.route((0, 0), d)
            assert (result["status"] == "delivered") == want, (d, result)
            if want:
                assert len(result["path"]) - 1 == manhattan((0, 0), d)


class TestRouting3D:
    def test_backtracks_out_of_section_trap(self):
        # Regression (fuzz-found): routing (0,0,0) -> (1,5,3) exhausts
        # the x axis after one hop; inside the remaining x=1 plane the
        # faults (1,3,0) and (1,2,1) merge diagonally, a trap no
        # per-MCC-section boundary record expresses.  The walker used
        # to die at (1,2,0); it must backtrack and deliver minimally.
        mask = mask_of_cells(
            [(0, 1, 0), (0, 1, 5), (0, 4, 3), (1, 1, 4), (1, 2, 1),
             (1, 3, 0), (2, 4, 4), (3, 1, 1)],
            (6, 6, 6),
        )
        assert minimal_path_exists(~mask, (0, 0, 0), (1, 5, 3))
        pipe = DistributedMCCPipeline(Mesh3D(6), mask).build()
        result = pipe.route((0, 0, 0), (1, 5, 3))
        assert result["status"] == "delivered"
        path = result["path"]
        assert len(path) - 1 == manhattan((0, 0, 0), (1, 5, 3))
        assert is_monotone_path(path)
        assert not any(mask[c] for c in path)

    def test_degenerate_axis_query_not_misreported_infeasible(self):
        # Regression (review-found): a degenerate-axis pair used to run
        # the three 3-D surface floods, which can drain without reaching
        # their targets inside the collapsed RMP, timing out into a
        # false "infeasible".  Reduced pairs now run in-plane walks with
        # advisory failure semantics.
        mask = mask_of_cells(
            [(0, 3, 3), (0, 3, 4), (1, 2, 1), (1, 2, 4), (1, 4, 0),
             (2, 4, 0), (2, 4, 2), (3, 4, 2), (4, 0, 2), (4, 1, 1),
             (4, 2, 4), (4, 3, 0)],
            (5, 5, 5),
        )
        s, d = (4, 0, 0), (4, 3, 4)
        assert minimal_path_exists(~mask, s, d)
        pipe = DistributedMCCPipeline(Mesh3D(5), mask).build()
        result = pipe.route(s, d)
        assert result["status"] == "delivered"
        assert len(result["path"]) - 1 == manhattan(s, d)

    def test_fig5_routes_minimally(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask)
        result = pipe.route((0, 0, 0), (9, 9, 9))
        assert result["status"] == "delivered"
        assert len(result["path"]) - 1 == 27
        assert not any(fig5_mask[c] for c in result["path"])

    def test_through_the_thick_of_it(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask)
        result = pipe.route((4, 4, 4), (8, 8, 8))
        assert result["status"] == "delivered"
        assert len(result["path"]) - 1 == 12

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=4, deadline=None)
    def test_matches_oracle_random_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6, 6), int(rng.integers(2, 10)))
        lab = label_grid(mask)
        if lab.status[0, 0, 0] != SAFE:
            return
        pipe = DistributedMCCPipeline(Mesh3D(6), mask).build()
        for _ in range(4):
            d = tuple(int(v) for v in rng.integers(0, 6, 3))
            if lab.status[d] != SAFE:
                continue
            want = minimal_path_exists(~mask, (0, 0, 0), d)
            result = pipe.route((0, 0, 0), d)
            assert (result["status"] == "delivered") == want, (d, result)
            if want:
                assert len(result["path"]) - 1 == manhattan((0, 0, 0), d)


class TestPipelinePlumbing:
    def test_non_canonical_rejected(self):
        pipe = DistributedMCCPipeline(Mesh2D(5), np.zeros((5, 5), dtype=bool))
        try:
            pipe.route((3, 3), (1, 1))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_unsafe_source_rejected(self):
        mask = mask_of_cells([(0, 0)], (5, 5))
        pipe = DistributedMCCPipeline(Mesh2D(5), mask)
        try:
            pipe.route((0, 0), (4, 4))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_message_counts_phased(self, fig5_mask):
        pipe = DistributedMCCPipeline(Mesh3D(10), fig5_mask).build()
        counts = pipe.message_counts()
        assert counts["phase[labelling]"] > 0
        assert counts["phase[identification+boundaries]"] > 0

    def test_multiple_queries_reuse_network(self):
        pipe = DistributedMCCPipeline(Mesh2D(6), np.zeros((6, 6), dtype=bool))
        r1 = pipe.route((0, 0), (5, 5))
        r2 = pipe.route((1, 0), (4, 4))
        assert r1["status"] == r2["status"] == "delivered"
