"""Tests for the operational feasibility detection (Algorithms 3/6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import detect_canonical, detection_feasible
from repro.core.labelling import label_grid
from repro.mesh.regions import mask_of_cells
from tests.conftest import oracle_feasible, random_mask


class TestDetectionRegressions:
    """Pinned counterexamples found by the oracle-agreement fuzzing."""

    def test_degenerate_axis_reduces_to_slice(self):
        # s and d share x=0: the RMP is a 2-D slice, where the faults
        # cut every monotone path.  The 3-D surface messages each verify
        # only a 1-D projection here and used to report feasible.
        mask = mask_of_cells(
            [(0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 0, 0), (2, 1, 1),
             (2, 1, 4), (3, 0, 3), (3, 1, 2), (3, 1, 4), (4, 1, 1),
             (4, 2, 1)],
            (5, 5, 5),
        )
        s, d = (0, 2, 2), (0, 0, 0)
        assert not oracle_feasible(mask, s, d)
        assert not detection_feasible(mask, s, d)

    def test_three_reachable_faces_but_no_corner_path(self):
        # All three RMP faces are individually reachable, yet a diagonal
        # barrier cuts every single s->d path: the surface-message
        # conjunction alone is not sufficient in 3-D.
        mask = mask_of_cells(
            [(0, 0, 0), (0, 2, 0), (0, 4, 2), (1, 3, 3), (1, 4, 2),
             (2, 1, 2), (2, 2, 1), (2, 3, 0), (3, 3, 1), (4, 0, 1),
             (4, 1, 0)],
            (5, 5, 5),
        )
        s, d = (1, 4, 3), (2, 1, 0)
        assert not oracle_feasible(mask, s, d)
        assert not detection_feasible(mask, s, d)

    def test_degenerate_line_and_point_pairs(self):
        mask = mask_of_cells([(2, 2, 2)], (5, 5, 5))
        # Two degenerate axes: a fault on the connecting segment.
        assert not detection_feasible(mask, (2, 2, 0), (2, 2, 4))
        assert detection_feasible(mask, (2, 0, 2), (2, 1, 2))
        # Source == destination.
        assert detection_feasible(mask, (1, 1, 1), (1, 1, 1))


class TestWalks2D:
    def test_fault_free_trivially_feasible(self):
        lab = label_grid(np.zeros((8, 8), dtype=bool))
        report = detect_canonical(lab.unsafe_mask, (0, 0), (7, 7))
        assert report.feasible
        assert set(report.messages.values()) == {True}

    def test_trails_recorded(self):
        lab = label_grid(mask_of_cells([(0, 4)], (8, 8)))
        report = detect_canonical(lab.unsafe_mask, (0, 0), (7, 7))
        trail = report.trails["+Y along x=xs"]
        assert trail[0] == (0, 0)
        # The +Y walk detours +X around the fault at (0,4).
        assert (1, 3) in trail or (1, 4) in trail

    def test_barrier_returns_no(self):
        cells = [(0, 6), (1, 5), (2, 4)]
        lab = label_grid(mask_of_cells(cells, (9, 9)))
        assert not lab.unsafe_mask[0, 0] and not lab.unsafe_mask[2, 8]
        report = detect_canonical(lab.unsafe_mask, (0, 0), (2, 8))
        assert not report.feasible

    def test_unsafe_endpoint_rejected(self):
        lab = label_grid(mask_of_cells([(0, 0)], (5, 5)))
        with pytest.raises(ValueError):
            detect_canonical(lab.unsafe_mask, (0, 0), (4, 4))

    def test_non_canonical_rejected(self):
        lab = label_grid(np.zeros((5, 5), dtype=bool))
        with pytest.raises(ValueError):
            detect_canonical(lab.unsafe_mask, (3, 3), (0, 0))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_oracle_2d(self, seed):
        """The two greedy walks decide exactly minimal-path existence."""
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (7, 7), int(rng.integers(1, 12)))
        for _ in range(8):
            s = tuple(int(v) for v in rng.integers(0, 7, 2))
            d = tuple(int(v) for v in rng.integers(0, 7, 2))
            if mask[s] or mask[d]:
                continue
            from repro.mesh.orientation import Orientation

            o = Orientation.for_pair(s, d, (7, 7))
            lab_o = label_grid(mask, o)
            cs, cd = o.map_coord(s), o.map_coord(d)
            if lab_o.unsafe_mask[cs] or lab_o.unsafe_mask[cd]:
                continue
            assert detection_feasible(mask, s, d) == oracle_feasible(mask, s, d)


class TestFloods3D:
    def test_fig5_feasible(self, fig5_mask):
        assert detection_feasible(fig5_mask, (0, 0, 0), (9, 9, 9))

    def test_column_trap_detected(self):
        mask = mask_of_cells([(2, 2, 3)], (6, 6, 6))
        assert not detection_feasible(mask, (2, 2, 0), (2, 2, 5))

    def test_three_surfaces_reported(self):
        lab = label_grid(np.zeros((5, 5, 5), dtype=bool))
        report = detect_canonical(lab.unsafe_mask, (0, 0, 0), (4, 4, 4))
        assert set(report.messages) == {
            "(-X)-surface", "(-Y)-surface", "(-Z)-surface"
        }

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_oracle_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5, 5), int(rng.integers(1, 14)))
        for _ in range(6):
            s = tuple(int(v) for v in rng.integers(0, 5, 3))
            d = tuple(int(v) for v in rng.integers(0, 5, 3))
            if mask[s] or mask[d]:
                continue
            from repro.mesh.orientation import Orientation

            o = Orientation.for_pair(s, d, (5, 5, 5))
            lab_o = label_grid(mask, o)
            if lab_o.unsafe_mask[o.map_coord(s)] or lab_o.unsafe_mask[o.map_coord(d)]:
                continue
            assert detection_feasible(mask, s, d) == oracle_feasible(mask, s, d), (
                s, d, np.argwhere(mask).tolist()
            )

    def test_unsupported_dimension(self):
        lab = label_grid(np.zeros((3, 3, 3, 3), dtype=bool))
        with pytest.raises(NotImplementedError):
            detect_canonical(lab.unsafe_mask, (0,) * 4, (2,) * 4)


class TestDetectionBatch:
    """The batched detection pass is pair-for-pair identical."""

    @given(st.integers(0, 2**32 - 1), st.sampled_from([(6, 6), (7, 4), (4, 4, 4)]))
    @settings(max_examples=30, deadline=None)
    def test_matches_per_pair(self, seed, shape):
        from repro.core.detection import detection_feasible_batch

        rng = np.random.default_rng(seed)
        n = int(np.prod(shape))
        mask = random_mask(rng, shape, int(rng.integers(0, n // 4 + 1)))
        cells = np.argwhere(~mask)
        pairs = []
        for _ in range(20):
            i, j = rng.integers(0, len(cells), size=2)
            pairs.append(
                (
                    tuple(int(v) for v in cells[i]),
                    tuple(int(v) for v in cells[j]),
                )
            )
        got = detection_feasible_batch(mask, pairs)
        assert got.dtype == bool and got.shape == (len(pairs),)
        for verdict, (s, d) in zip(got, pairs, strict=True):
            assert bool(verdict) == detection_feasible(mask, s, d), (s, d)

    def test_faulty_endpoint_raises_like_per_pair(self):
        from repro.core.detection import detection_feasible_batch

        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        with pytest.raises(ValueError):
            detection_feasible_batch(mask, [((1, 1), (3, 3))])

    def test_empty_batch(self):
        from repro.core.detection import detection_feasible_batch

        out = detection_feasible_batch(np.zeros((3, 3), dtype=bool), [])
        assert out.shape == (0,)
