"""Unit tests for the mesh topology."""

import pytest

from repro.mesh.coords import Direction
from repro.mesh.topology import Mesh, Mesh2D, Mesh3D


class TestConstruction:
    def test_kn_nodes(self):
        # k-ary n-D mesh has k^n nodes (Section 2)
        assert Mesh3D(4).size == 64
        assert Mesh2D(5).size == 25

    def test_diameter(self):
        # diameter (k-1) * n (Section 2)
        assert Mesh3D(4).diameter == 9
        assert Mesh((3, 5)).diameter == 6

    def test_rectangular_extents(self):
        mesh = Mesh((2, 3, 4))
        assert mesh.size == 24
        assert mesh.shape == (2, 3, 4)

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ValueError):
            Mesh(())
        with pytest.raises(ValueError):
            Mesh((0, 3))

    def test_mesh3d_partial_extents_rejected(self):
        with pytest.raises(ValueError):
            Mesh3D(3, 4)

    def test_equality_and_hash(self):
        assert Mesh3D(4) == Mesh((4, 4, 4))
        assert hash(Mesh3D(4)) == hash(Mesh((4, 4, 4)))
        assert Mesh2D(4) != Mesh3D(4)


class TestQueries:
    def test_contains(self):
        mesh = Mesh3D(3)
        assert mesh.contains((0, 0, 0))
        assert mesh.contains((2, 2, 2))
        assert not mesh.contains((3, 0, 0))
        assert not mesh.contains((0, -1, 0))
        assert not mesh.contains((0, 0))

    def test_degree(self):
        mesh = Mesh3D(3)
        assert mesh.degree((1, 1, 1)) == 6
        assert mesh.degree((0, 0, 0)) == 3
        assert mesh.degree((0, 1, 1)) == 5

    def test_neighbors_linear_array_structure(self):
        # nodes along each dimension form a linear array (Section 2)
        mesh = Mesh((4, 1))
        assert mesh.neighbors((0, 0)) == [(1, 0)]
        assert set(mesh.neighbors((1, 0))) == {(2, 0), (0, 0)}

    def test_neighbor_along_direction(self):
        mesh = Mesh2D(4)
        assert mesh.neighbor((1, 1), Direction(0, 1)) == (2, 1)
        assert mesh.neighbor((3, 1), Direction(0, 1)) is None

    def test_require_validates(self):
        mesh = Mesh2D(4)
        with pytest.raises(IndexError):
            mesh.require((4, 0))
        with pytest.raises(ValueError):
            mesh.require((1, 1, 1))

    def test_distance(self):
        assert Mesh3D(10).distance((0, 0, 0), (9, 9, 9)) == 27


class TestIndexing:
    def test_roundtrip(self):
        mesh = Mesh((3, 4, 5))
        for idx in (0, 17, mesh.size - 1):
            assert mesh.index_of(mesh.coord_of(idx)) == idx

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            Mesh2D(3).coord_of(9)

    def test_nodes_iteration_covers_all(self):
        mesh = Mesh((2, 3))
        nodes = list(mesh.nodes())
        assert len(nodes) == 6
        assert len(set(nodes)) == 6

    def test_array_helpers(self):
        mesh = Mesh2D(3)
        assert mesh.zeros().shape == (3, 3)
        assert mesh.full(7)[2, 2] == 7
