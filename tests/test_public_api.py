"""Integration tests through the top-level public API."""

import numpy as np

import repro


class TestEndToEnd:
    def test_quickstart_from_docstring(self):
        faults = np.zeros((10, 10, 10), dtype=bool)
        faults[5, 5, 5] = True
        router = repro.AdaptiveRouter(faults, mode="mcc")
        result = router.route((0, 0, 0), (9, 9, 9))
        assert result.delivered and result.is_minimal()

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_full_pipeline_composes(self):
        mesh = repro.Mesh3D(8)
        faults = repro.FaultSet(mesh, [(4, 4, 4), (4, 5, 4), (5, 4, 4)])
        labelled = repro.label_grid(faults.mask)
        mccs = repro.extract_mccs(labelled)
        walls = repro.build_walls(mccs)
        assert len(walls) == len(mccs) * 3
        assert repro.minimal_path_exists_lemma1(walls, (0, 0, 0), (7, 7, 7), labelled)

    def test_theorem_vs_oracle_via_api(self):
        faults = np.zeros((6, 6), dtype=bool)
        faults[2, 3] = True
        assert repro.minimal_path_exists_theorem(faults, (0, 0), (5, 5))
        assert not repro.minimal_path_exists_theorem(faults, (2, 0), (2, 5))

    def test_distributed_pipeline_via_api(self):
        faults = np.zeros((6, 6), dtype=bool)
        faults[3, 3] = True
        pipe = repro.DistributedMCCPipeline(repro.Mesh2D(6), faults)
        assert pipe.route((0, 0), (5, 5))["status"] == "delivered"

    def test_orientation_roundtrip_via_api(self):
        o = repro.Orientation.for_pair((5, 1), (2, 4), (6, 6))
        assert o.signs == (-1, 1)
        assert o.unmap_coord(o.map_coord((5, 1))) == (5, 1)

    def test_baselines_via_api(self):
        faults = np.zeros((5, 5), dtype=bool)
        faults[2, 0] = True
        assert not repro.ecube_succeeds(faults, (0, 0), (4, 0))
        blocks = repro.rfb_blocks(faults)
        assert len(blocks) == 1
        ok, path = repro.greedy_route(faults, (0, 0), (4, 4))
        assert ok
