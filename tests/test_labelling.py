"""Tests for the unsafe-node labelling (Algorithms 1 and 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import (
    CANT_REACH,
    FAULTY,
    SAFE,
    USELESS,
    _closure,
    _closure_reference,
    label_grid,
    label_mesh,
    unsafe_mask,
)
from repro.mesh.orientation import Orientation
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D
from tests.conftest import random_mask


class TestRules2D:
    def test_fault_free_all_safe(self):
        lab = label_grid(np.zeros((6, 6), dtype=bool))
        assert (lab.status == SAFE).all()

    def test_single_fault_no_fill(self):
        lab = label_grid(mask_of_cells([(3, 3)], (7, 7)))
        assert lab.unsafe_mask.sum() == 1

    def test_sw_diagonal_pair_glues_via_useless(self):
        # Faults at (3,4),(4,3): node (3,3) has +X and +Y blocked.
        lab = label_grid(mask_of_cells([(3, 4), (4, 3)], (7, 7)))
        assert lab.status[3, 3] == USELESS

    def test_ne_diagonal_pair_glues_via_cant_reach(self):
        lab = label_grid(mask_of_cells([(3, 4), (4, 3)], (7, 7)))
        assert lab.status[4, 4] == CANT_REACH

    def test_ne_diagonal_pair_does_not_glue(self):
        # (3,3),(4,4): no node has both + (or both -) neighbors blocked.
        lab = label_grid(mask_of_cells([(3, 3), (4, 4)], (7, 7)))
        assert lab.unsafe_mask.sum() == 2

    def test_staircase_fills_recursively(self):
        # Anti-diagonal staircase: the SW pocket fills layer by layer.
        lab = label_grid(mask_of_cells([(2, 4), (3, 3), (4, 2)], (7, 7)))
        assert lab.status[2, 3] == USELESS
        assert lab.status[3, 2] == USELESS
        assert lab.status[2, 2] == USELESS
        assert lab.status[3, 4] == CANT_REACH
        assert lab.status[4, 3] == CANT_REACH
        assert lab.status[4, 4] == CANT_REACH

    def test_mesh_border_is_not_blocking(self):
        # DESIGN interpretation 1: otherwise (0,0) would be can't-reach.
        lab = label_grid(mask_of_cells([(5, 5)], (7, 7)))
        assert lab.status[0, 0] == SAFE
        assert lab.status[6, 6] == SAFE

    def test_c_shape_pocket_closes(self):
        # An east-opening C: the pocket is can't-reach-filled.
        cells = [(5, 4), (5, 5), (5, 6), (6, 4), (6, 6)]
        lab = label_grid(mask_of_cells(cells, (9, 9)))
        assert lab.status[6, 5] == CANT_REACH


class TestRules3D:
    def test_fig5_labels(self, fig5_mask):
        # Section 4: "(5,5,5) becomes useless and (5,5,7) becomes
        # can't-reach in our labelling process."
        lab = label_grid(fig5_mask)
        assert lab.status[5, 5, 5] == USELESS
        assert lab.status[5, 5, 7] == CANT_REACH

    def test_fig5_hole_stays_safe(self, fig5_mask):
        # "A section ... shows a hole at (6,6,5) in the MCC region."
        lab = label_grid(fig5_mask)
        assert lab.status[6, 6, 5] == SAFE

    def test_2d_blocker_not_useless_in_3d(self):
        # A node with only +X and +Y blocked can still route +Z
        # (Section 4, first paragraph).
        mask = mask_of_cells([(4, 3, 3), (3, 4, 3)], (6, 6, 6))
        lab = label_grid(mask)
        assert lab.status[3, 3, 3] == SAFE

    def test_three_blockers_make_useless(self):
        mask = mask_of_cells([(4, 3, 3), (3, 4, 3), (3, 3, 4)], (6, 6, 6))
        lab = label_grid(mask)
        assert lab.status[3, 3, 3] == USELESS


class TestFixedPoint:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_reference_2d(self, seed, count):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), count)
        for sign in (+1, -1):
            fast = _closure(mask, sign)
            slow = _closure_reference(mask, sign)
            assert np.array_equal(fast, slow)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_vectorized_matches_reference_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (4, 4, 4), int(rng.integers(0, 10)))
        for sign in (+1, -1):
            assert np.array_equal(
                _closure(mask, sign), _closure_reference(mask, sign)
            )

    def test_idempotent(self, rng):
        # Labelling the unsafe set again adds nothing new.
        mask = random_mask(rng, (8, 8), 10)
        lab = label_grid(mask)
        lab2 = label_grid(lab.unsafe_mask)
        assert np.array_equal(lab2.unsafe_mask, lab.unsafe_mask)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_faults(self, seed):
        # More faults => superset of unsafe nodes.
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (7, 7), 6)
        bigger = mask.copy()
        bigger[tuple(rng.integers(0, 7, 2))] = True
        small = label_grid(mask).unsafe_mask
        large = label_grid(bigger).unsafe_mask
        assert (small <= large).all()

    def test_faults_always_unsafe(self, rng):
        mask = random_mask(rng, (6, 6, 6), 15)
        lab = label_grid(mask)
        assert (lab.status[mask] == FAULTY).all()


class TestOrientationHandling:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_direction_class_symmetry(self, seed):
        # Labelling a flipped grid == flipping the labelled grid.
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), 8)
        for o in Orientation.all_classes((6, 6)):
            direct = label_grid(mask, o).status
            manual = label_grid(o.to_canonical(mask)).status
            assert np.array_equal(direct, manual)

    def test_label_mesh_picks_pair_class(self, rng):
        mesh = Mesh2D(8)
        mask = random_mask(rng, (8, 8), 6)
        lab = label_mesh(mesh, mask, source=(7, 7), dest=(0, 0))
        assert lab.orientation.signs == (-1, -1)

    def test_label_mesh_shape_check(self):
        with pytest.raises(ValueError):
            label_mesh(Mesh2D(4), np.zeros((5, 5), dtype=bool))


class TestAccessors:
    def test_counts(self, rng):
        mask = random_mask(rng, (8, 8), 12)
        lab = label_grid(mask)
        counts = lab.counts()
        assert counts["faulty"] == 12
        assert sum(counts.values()) == 64

    def test_masks_partition(self, rng):
        mask = random_mask(rng, (8, 8), 12)
        lab = label_grid(mask)
        total = (
            lab.safe_mask.sum()
            + lab.fault_mask.sum()
            + lab.useless_mask.sum()
            + lab.cant_reach_mask.sum()
        )
        assert total == 64
        assert np.array_equal(lab.unsafe_mask, ~lab.safe_mask)

    def test_unsafe_mask_shorthand(self, rng):
        mask = random_mask(rng, (6, 6), 5)
        assert np.array_equal(unsafe_mask(mask), label_grid(mask).unsafe_mask)


class TestClosureRegionBoxes:
    """Property checks of the dirty-box sweep against the full closure.

    The slab-extension arithmetic (one frozen layer toward the neighbor
    side, clipped at the mesh border) is exercised directly: full-grid
    boxes, boxes flush against every border, single-cell and degenerate
    boxes — each compared with ``_closure`` ground truth.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(st.integers(3, 7), st.integers(3, 7)),
        st.integers(0, 2**32 - 1),
        st.sampled_from([+1, -1]),
    )
    def test_full_grid_box_matches_closure(self, shape, seed, sign):
        from repro.core.labelling import closure_region

        rng = np.random.default_rng(seed)
        mask = random_mask(rng, shape, int(rng.integers(0, 8)))
        blocked = mask.copy()
        grown = closure_region(
            blocked, sign, (0,) * len(shape), tuple(k - 1 for k in shape)
        )
        want = _closure(mask, sign) | mask
        np.testing.assert_array_equal(blocked, want)
        assert grown == int(want.sum()) - int(mask.sum())

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.sampled_from([+1, -1]),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
    )
    def test_partial_box_is_sound_and_scoped(self, seed, sign, a, b):
        """A partial box only grows inside itself and stays within the
        full closure; cells outside the box are bitwise frozen."""
        from repro.core.labelling import closure_region

        shape = (5, 5)
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, shape, int(rng.integers(0, 7)))
        lo = tuple(min(x, y) for x, y in zip(a, b, strict=True))
        hi = tuple(max(x, y) for x, y in zip(a, b, strict=True))
        blocked = mask.copy()
        before = blocked.copy()
        closure_region(blocked, sign, lo, hi)
        full = _closure(mask, sign) | mask
        # Sound: never blocks a cell the full closure leaves open.
        assert not (blocked & ~full).any()
        # Scoped: outside the box nothing changed.
        box = np.zeros(shape, dtype=bool)
        box[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1] = True
        np.testing.assert_array_equal(blocked[~box], before[~box])

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.sampled_from([+1, -1]),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
    )
    def test_partial_then_full_reaches_fixed_point(self, seed, sign, a, b):
        """Monotone restart: any partial sweep followed by a full-grid
        sweep lands exactly on the full closure (the dirty-region
        soundness argument in the docstring)."""
        from repro.core.labelling import closure_region

        shape = (5, 5)
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, shape, int(rng.integers(0, 7)))
        lo = tuple(min(x, y) for x, y in zip(a, b, strict=True))
        hi = tuple(max(x, y) for x, y in zip(a, b, strict=True))
        blocked = mask.copy()
        closure_region(blocked, sign, lo, hi)
        closure_region(blocked, sign, (0, 0), (4, 4))
        np.testing.assert_array_equal(blocked, _closure(mask, sign) | mask)

    @pytest.mark.parametrize("sign", [+1, -1])
    @pytest.mark.parametrize(
        "cell", [(0, 0), (0, 3), (3, 0), (3, 3), (1, 2)]
    )
    def test_single_cell_box_matches_scalar_rule(self, sign, cell):
        """A 1x1 box (borders and interior) applies exactly the scalar
        rule: blocked iff every sign-direction neighbor is blocked, with
        the mesh border non-blocking."""
        from repro.core.labelling import closure_region

        shape = (4, 4)
        rng = np.random.default_rng(hash((sign, cell)) % (2**32))
        for _ in range(10):
            mask = random_mask(rng, shape, int(rng.integers(0, 8)))
            blocked = mask.copy()
            grown = closure_region(blocked, sign, cell, cell)
            if mask[cell]:
                want = True  # already blocked; sweep cannot change it
            else:
                neighbor_blocked = []
                for axis in range(2):
                    n = list(cell)
                    n[axis] += sign
                    n = tuple(n)
                    inside = all(0 <= v < k for v, k in zip(n, shape, strict=True))
                    neighbor_blocked.append(inside and bool(mask[n]))
                want = all(neighbor_blocked)
            assert bool(blocked[cell]) == want
            assert grown == int(want and not mask[cell])

    def test_border_hugging_slabs(self):
        """Boxes flush with each mesh border exercise both clip branches
        of the slab extension (min(b+2, k) and max(a-1, 0))."""
        from repro.core.labelling import closure_region

        shape = (5, 5)
        rng = np.random.default_rng(9)
        for _ in range(20):
            mask = random_mask(rng, shape, int(rng.integers(2, 10)))
            full = _closure(mask, +1) | mask
            for lo, hi in [
                ((0, 0), (0, 4)),  # top row
                ((4, 0), (4, 4)),  # bottom row
                ((0, 0), (4, 0)),  # left column
                ((0, 4), (4, 4)),  # right column
            ]:
                blocked = mask.copy()
                closure_region(blocked, +1, lo, hi)
                assert not (blocked & ~full).any()
                closure_region(blocked, +1, (0, 0), (4, 4))
                np.testing.assert_array_equal(blocked, full)

    def test_empty_box_returns_zero(self):
        from repro.core.labelling import closure_region

        blocked = np.zeros((3, 3), dtype=bool)
        assert closure_region(blocked, +1, (2, 2), (1, 1)) == 0
        assert not blocked.any()
