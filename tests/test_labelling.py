"""Tests for the unsafe-node labelling (Algorithms 1 and 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import (
    CANT_REACH,
    FAULTY,
    SAFE,
    USELESS,
    _closure,
    _closure_reference,
    label_grid,
    label_mesh,
    unsafe_mask,
)
from repro.mesh.orientation import Orientation
from repro.mesh.regions import mask_of_cells
from repro.mesh.topology import Mesh2D
from tests.conftest import random_mask


class TestRules2D:
    def test_fault_free_all_safe(self):
        lab = label_grid(np.zeros((6, 6), dtype=bool))
        assert (lab.status == SAFE).all()

    def test_single_fault_no_fill(self):
        lab = label_grid(mask_of_cells([(3, 3)], (7, 7)))
        assert lab.unsafe_mask.sum() == 1

    def test_sw_diagonal_pair_glues_via_useless(self):
        # Faults at (3,4),(4,3): node (3,3) has +X and +Y blocked.
        lab = label_grid(mask_of_cells([(3, 4), (4, 3)], (7, 7)))
        assert lab.status[3, 3] == USELESS

    def test_ne_diagonal_pair_glues_via_cant_reach(self):
        lab = label_grid(mask_of_cells([(3, 4), (4, 3)], (7, 7)))
        assert lab.status[4, 4] == CANT_REACH

    def test_ne_diagonal_pair_does_not_glue(self):
        # (3,3),(4,4): no node has both + (or both -) neighbors blocked.
        lab = label_grid(mask_of_cells([(3, 3), (4, 4)], (7, 7)))
        assert lab.unsafe_mask.sum() == 2

    def test_staircase_fills_recursively(self):
        # Anti-diagonal staircase: the SW pocket fills layer by layer.
        lab = label_grid(mask_of_cells([(2, 4), (3, 3), (4, 2)], (7, 7)))
        assert lab.status[2, 3] == USELESS
        assert lab.status[3, 2] == USELESS
        assert lab.status[2, 2] == USELESS
        assert lab.status[3, 4] == CANT_REACH
        assert lab.status[4, 3] == CANT_REACH
        assert lab.status[4, 4] == CANT_REACH

    def test_mesh_border_is_not_blocking(self):
        # DESIGN interpretation 1: otherwise (0,0) would be can't-reach.
        lab = label_grid(mask_of_cells([(5, 5)], (7, 7)))
        assert lab.status[0, 0] == SAFE
        assert lab.status[6, 6] == SAFE

    def test_c_shape_pocket_closes(self):
        # An east-opening C: the pocket is can't-reach-filled.
        cells = [(5, 4), (5, 5), (5, 6), (6, 4), (6, 6)]
        lab = label_grid(mask_of_cells(cells, (9, 9)))
        assert lab.status[6, 5] == CANT_REACH


class TestRules3D:
    def test_fig5_labels(self, fig5_mask):
        # Section 4: "(5,5,5) becomes useless and (5,5,7) becomes
        # can't-reach in our labelling process."
        lab = label_grid(fig5_mask)
        assert lab.status[5, 5, 5] == USELESS
        assert lab.status[5, 5, 7] == CANT_REACH

    def test_fig5_hole_stays_safe(self, fig5_mask):
        # "A section ... shows a hole at (6,6,5) in the MCC region."
        lab = label_grid(fig5_mask)
        assert lab.status[6, 6, 5] == SAFE

    def test_2d_blocker_not_useless_in_3d(self):
        # A node with only +X and +Y blocked can still route +Z
        # (Section 4, first paragraph).
        mask = mask_of_cells([(4, 3, 3), (3, 4, 3)], (6, 6, 6))
        lab = label_grid(mask)
        assert lab.status[3, 3, 3] == SAFE

    def test_three_blockers_make_useless(self):
        mask = mask_of_cells([(4, 3, 3), (3, 4, 3), (3, 3, 4)], (6, 6, 6))
        lab = label_grid(mask)
        assert lab.status[3, 3, 3] == USELESS


class TestFixedPoint:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_reference_2d(self, seed, count):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), count)
        for sign in (+1, -1):
            fast = _closure(mask, sign)
            slow = _closure_reference(mask, sign)
            assert np.array_equal(fast, slow)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_vectorized_matches_reference_3d(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (4, 4, 4), int(rng.integers(0, 10)))
        for sign in (+1, -1):
            assert np.array_equal(
                _closure(mask, sign), _closure_reference(mask, sign)
            )

    def test_idempotent(self, rng):
        # Labelling the unsafe set again adds nothing new.
        mask = random_mask(rng, (8, 8), 10)
        lab = label_grid(mask)
        lab2 = label_grid(lab.unsafe_mask)
        assert np.array_equal(lab2.unsafe_mask, lab.unsafe_mask)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_faults(self, seed):
        # More faults => superset of unsafe nodes.
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (7, 7), 6)
        bigger = mask.copy()
        bigger[tuple(rng.integers(0, 7, 2))] = True
        small = label_grid(mask).unsafe_mask
        large = label_grid(bigger).unsafe_mask
        assert (small <= large).all()

    def test_faults_always_unsafe(self, rng):
        mask = random_mask(rng, (6, 6, 6), 15)
        lab = label_grid(mask)
        assert (lab.status[mask] == FAULTY).all()


class TestOrientationHandling:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_direction_class_symmetry(self, seed):
        # Labelling a flipped grid == flipping the labelled grid.
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (6, 6), 8)
        for o in Orientation.all_classes((6, 6)):
            direct = label_grid(mask, o).status
            manual = label_grid(o.to_canonical(mask)).status
            assert np.array_equal(direct, manual)

    def test_label_mesh_picks_pair_class(self, rng):
        mesh = Mesh2D(8)
        mask = random_mask(rng, (8, 8), 6)
        lab = label_mesh(mesh, mask, source=(7, 7), dest=(0, 0))
        assert lab.orientation.signs == (-1, -1)

    def test_label_mesh_shape_check(self):
        with pytest.raises(ValueError):
            label_mesh(Mesh2D(4), np.zeros((5, 5), dtype=bool))


class TestAccessors:
    def test_counts(self, rng):
        mask = random_mask(rng, (8, 8), 12)
        lab = label_grid(mask)
        counts = lab.counts()
        assert counts["faulty"] == 12
        assert sum(counts.values()) == 64

    def test_masks_partition(self, rng):
        mask = random_mask(rng, (8, 8), 12)
        lab = label_grid(mask)
        total = (
            lab.safe_mask.sum()
            + lab.fault_mask.sum()
            + lab.useless_mask.sum()
            + lab.cant_reach_mask.sum()
        )
        assert total == 64
        assert np.array_equal(lab.unsafe_mask, ~lab.safe_mask)

    def test_unsafe_mask_shorthand(self, rng):
        mask = random_mask(rng, (6, 6), 5)
        assert np.array_equal(unsafe_mask(mask), label_grid(mask).unsafe_mask)
