"""Concurrent query sessions and churn-aware DES re-stabilization.

Two pillars of the concurrent simulation core:

* **Session parity** — a batch of queries submitted as interleaved
  sessions and resolved by one ``drain()`` yields delivery verdicts,
  paths, hop counts, and per-query message costs element-wise identical
  to blocking per-query ``route()`` calls (property-tested over random
  meshes and fault patterns).
* **Churn exactness** — ``apply_event`` re-stabilizes incrementally:
  labels converge byte-identical to a from-scratch ``label_grid`` of
  the mutated mask, routing after arbitrary inject/repair histories
  stays exact against the reachability oracle, and drained results are
  stamped with the epoch they completed under.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import SAFE, label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.mesh.topology import Mesh, Mesh2D
from repro.routing.oracle import minimal_path_exists
from tests.conftest import random_mask


def sample_canonical_pairs(rng, lab, count):
    """Random safe canonical-frame pairs for a labelled pattern."""
    cells = np.argwhere(lab == SAFE)
    pairs = []
    tries = 0
    while len(pairs) < count and tries < 50 * count:
        tries += 1
        i, j = rng.integers(0, len(cells), size=2)
        s = tuple(int(v) for v in np.minimum(cells[i], cells[j]))
        d = tuple(int(v) for v in np.maximum(cells[i], cells[j]))
        if lab[s] == SAFE and lab[d] == SAFE and s != d:
            pairs.append((s, d))
    return pairs


class TestSessionParity:
    @given(st.integers(0, 2**32 - 1), st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_serial_elementwise(self, seed, three_d):
        rng = np.random.default_rng(seed)
        shape = (5, 5, 5) if three_d else (8, 8)
        mask = random_mask(rng, shape, int(rng.integers(1, 9)))
        lab = label_grid(mask).status
        pairs = sample_canonical_pairs(rng, lab, 10)
        if not pairs:
            return
        serial_pipe = DistributedMCCPipeline(Mesh(shape), mask).build()
        serial = []
        for s, d in pairs:
            before = serial_pipe.net.stats.total_messages
            record = serial_pipe.route(s, d)
            # The payload-tag attribution equals the historical
            # before/after delta for a blocking query.
            assert record["msgs"] == (
                serial_pipe.net.stats.total_messages - before
            )
            serial.append(record)
        batch_pipe = DistributedMCCPipeline(Mesh(shape), mask).build()
        handles = [batch_pipe.submit(s, d) for s, d in pairs]
        batch = batch_pipe.drain()
        assert [h.result for h in handles] == batch
        for one, many in zip(serial, batch, strict=True):
            assert one["status"] == many["status"]
            assert one["path"] == many["path"]
            assert one["msgs"] == many["msgs"]

    def test_drain_orders_results_by_submission(self):
        pipe = DistributedMCCPipeline(Mesh2D(6), np.zeros((6, 6), dtype=bool))
        h2 = pipe.submit((0, 0), (5, 5))
        h1 = pipe.submit((1, 1), (2, 2))
        results = pipe.drain()
        assert [r["query_id"] for r in results] == [h2.query_id, h1.query_id]
        assert results[0]["status"] == results[1]["status"] == "delivered"

    def test_drain_empty_is_noop(self):
        pipe = DistributedMCCPipeline(Mesh2D(4), np.zeros((4, 4), dtype=bool))
        assert pipe.drain() == []

    def test_route_still_rejects_bad_sources(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        pipe = DistributedMCCPipeline(Mesh2D(5), mask)
        with pytest.raises(ValueError):
            pipe.route((0, 0), (4, 4))
        with pytest.raises(ValueError):
            pipe.route((3, 3), (1, 1))

    def test_lenient_submit_resolves_bad_endpoints(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        pipe = DistributedMCCPipeline(Mesh2D(5), mask).build()
        dead_src = pipe.submit((0, 0), (3, 3), strict=False)
        dead_dst = pipe.submit((1, 1), (4, 4), strict=False)
        results = pipe.drain()
        assert [r["status"] for r in results] == ["infeasible", "infeasible"]
        assert dead_src.result["reason"] == "source unsafe"
        assert dead_dst.result["reason"] == "dest unsafe"
        assert dead_src.result["msgs"] == 0


class TestChurnAwareDES:
    @given(st.integers(0, 2**32 - 1), st.booleans())
    @settings(max_examples=6, deadline=None)
    def test_labels_and_routing_exact_after_churn(self, seed, three_d):
        rng = np.random.default_rng(seed)
        shape = (5, 5, 5) if three_d else (7, 7)
        mask = random_mask(rng, shape, int(rng.integers(2, 8)))
        pipe = DistributedMCCPipeline(Mesh(shape), mask.copy()).build()
        for epoch in range(4):
            current = pipe.fault_mask
            pool = np.argwhere(~current if epoch % 2 == 0 else current)
            if len(pool) == 0:
                continue
            k = min(2, len(pool))
            picks = rng.choice(len(pool), size=k, replace=False)
            cells = [tuple(int(v) for v in pool[i]) for i in picks]
            info = pipe.apply_event(
                "inject" if epoch % 2 == 0 else "repair", cells
            )
            assert info["epoch"] == pipe.epoch == epoch + 1
            # Incremental labels == from-scratch labelling of the mask.
            want = label_grid(pipe.fault_mask).status
            assert np.array_equal(pipe.labels_grid(), want)
            # Delivery stays exact against the oracle.
            for s, d in sample_canonical_pairs(rng, want, 4):
                record = pipe.route(s, d)
                assert (record["status"] == "delivered") == (
                    minimal_path_exists(~pipe.fault_mask, s, d)
                ), (s, d, record["status"])
                assert record["epoch"] == pipe.epoch

    def test_event_flushes_inflight_at_submission_epoch(self):
        mask = np.zeros((6, 6), dtype=bool)
        pipe = DistributedMCCPipeline(Mesh2D(6), mask).build()
        pipe.submit((0, 0), (4, 4))
        pipe.submit((1, 0), (3, 3))
        info = pipe.apply_event("inject", [(5, 5)])
        flushed = info["flushed"]
        assert [r["status"] for r in flushed] == ["delivered", "delivered"]
        # Queries completed under the pre-event epoch.
        assert all(r["epoch"] == 0 for r in flushed)
        assert pipe.epoch == 1
        assert pipe.drain() == []

    def test_repaired_node_is_fresh(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, 2] = True
        pipe = DistributedMCCPipeline(Mesh2D(6), mask).build()
        pipe.apply_event("repair", [(2, 2)])
        assert not pipe.net.is_faulty((2, 2))
        assert pipe.labels_grid()[2, 2] == SAFE
        # The healed node routes like any safe node.
        record = pipe.route((2, 2), (5, 5))
        assert record["status"] == "delivered"
        assert len(record["path"]) - 1 == 6

    def test_event_rejects_wrong_state_and_duplicates(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1, 1] = True
        pipe = DistributedMCCPipeline(Mesh2D(5), mask).build()
        with pytest.raises(ValueError, match="faulty"):
            pipe.apply_event("inject", [(1, 1)])
        with pytest.raises(ValueError, match="healthy"):
            pipe.apply_event("repair", [(0, 0)])
        with pytest.raises(ValueError, match="twice"):
            pipe.apply_event("inject", [(2, 2), (2, 2)])
        with pytest.raises(ValueError, match="unknown event"):
            pipe.apply_event("explode", [(2, 2)])

    def test_repair_restores_records_of_distant_sections(self):
        # Review-found regression: a healed node had its store cleared
        # but wall records deposited by a *distant, unaffected* section
        # (whose labels never changed) were never re-deposited.  The
        # lost owners must force that section to re-identify.
        mask = np.zeros((12, 12), dtype=bool)
        for cell in [(2, 9), (3, 9), (2, 10)]:
            mask[cell] = True
        victim = (1, 0)
        pipe = DistributedMCCPipeline(Mesh2D(12), mask.copy()).build()
        want = {
            (r["plane"], r["owner"], r["shadow_axis"], r["guard_axis"])
            for r in pipe.records_at(victim)
        }
        assert want, "scenario must deposit a record at the victim node"
        pipe.apply_event("inject", [victim])
        pipe.apply_event("repair", [victim])
        got = {
            (r["plane"], r["owner"], r["shadow_axis"], r["guard_axis"])
            for r in pipe.records_at(victim)
        }
        assert got == want

    def test_drain_releases_session_state(self):
        pipe = DistributedMCCPipeline(Mesh2D(6), np.zeros((6, 6), dtype=bool))
        handle = pipe.submit((0, 0), (5, 5))
        pipe.drain()
        assert handle.result["status"] == "delivered"
        assert handle.query_id not in pipe.net.nodes[(0, 0)].store["queries"]
        assert handle.query_id not in pipe.net.stats.query_messages

    def test_restabilization_is_scoped(self):
        # A far-corner event must not re-run identification for an
        # untouched region at the opposite corner.
        mask = np.zeros((12, 12), dtype=bool)
        for cell in [(2, 2), (2, 3), (3, 2)]:
            mask[cell] = True
        pipe = DistributedMCCPipeline(Mesh2D(12), mask).build()
        sections_before = pipe.identified_sections()
        info = pipe.apply_event("inject", [(10, 10)])
        assert info["region_cells"] < 144 / 2
        # The old region's sections survived untouched; the new fault's
        # section was identified by the scoped restart.
        sections_after = pipe.identified_sections()
        assert set(sections_before) <= set(sections_after)
        want = label_grid(pipe.fault_mask).status
        assert np.array_equal(pipe.labels_grid(), want)
