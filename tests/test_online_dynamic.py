"""Tests for the online dynamic-fault subsystem (repro.online).

The load-bearing property: after ANY sequence of inject/repair events,
the incrementally maintained labels are byte-identical to a
from-scratch ``label_grid`` of the current mask in every direction
class, and the online routing service answers exactly like a cold
static service built on the current mask — which is precisely the
statement that the warm-started fixed points are sound and that scoped
cache invalidation never keeps a stale reach mask.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labelling import _closure, closure_region, label_grid
from repro.mesh.orientation import Orientation
from repro.online import DynamicFaultModel, OnlineRoutingService
from repro.online.dynamic_model import _DynamicClass
from repro.routing.batch import RoutingService


def apply_script(target, script, on_event=None):
    """Drive a model or service through a normalized event script.

    ``target`` is anything with ``fault_mask``/``inject``/``repair``
    (a :class:`DynamicFaultModel` or an :class:`OnlineRoutingService`).
    ``script`` is a list of (kind_bit, cell_seeds); cells are resolved
    against the *current* mask so every event is valid, and duplicate
    draws collapse.
    """
    for kind_bit, seeds in script:
        current = target.fault_mask
        pool = np.argwhere(~current) if kind_bit else np.argwhere(current)
        if not len(pool):
            continue
        cells = sorted(
            {tuple(int(v) for v in pool[s % len(pool)]) for s in seeds}
        )
        event = (
            target.inject(cells) if kind_bit else target.repair(cells)
        )
        if on_event is not None:
            on_event(event, cells)
    return target


def mask_strategy(max_dim=3):
    """(shape, mask) for small 2-D/3-D meshes with random faults."""

    @st.composite
    def build(draw):
        ndim = draw(st.integers(2, max_dim))
        shape = tuple(
            draw(st.integers(2, 5 if ndim == 3 else 7)) for _ in range(ndim)
        )
        n = int(np.prod(shape))
        flats = draw(
            st.lists(st.integers(0, n - 1), max_size=max(1, n // 3))
        )
        mask = np.zeros(shape, dtype=bool)
        for f in flats:
            mask.flat[f] = True
        return shape, mask

    return build()


def script_strategy():
    return st.lists(
        st.tuples(
            st.booleans(),  # True = inject, False = repair
            st.lists(st.integers(0, 10_000), min_size=1, max_size=3),
        ),
        min_size=1,
        max_size=8,
    )


class TestClosureRegion:
    def test_full_box_matches_closure(self):
        rng = np.random.default_rng(5)
        for shape in [(6, 7), (4, 5, 4)]:
            mask = rng.random(shape) < 0.3
            for sign in (+1, -1):
                want = _closure(mask, sign) | mask
                got = mask.copy()
                closure_region(
                    got, sign, (0,) * len(shape), tuple(k - 1 for k in shape)
                )
                assert np.array_equal(want, got)

    def test_restricted_box_freezes_outside(self):
        blocked = np.zeros((5, 5), dtype=bool)
        blocked[4, 4] = True
        # Box excludes (3, 4)/(4, 3): nothing inside [0,2]^2 can change.
        grown = closure_region(blocked, +1, (0, 0), (2, 2))
        assert grown == 0
        assert blocked.sum() == 1

    def test_empty_box_is_noop(self):
        blocked = np.zeros((4, 4), dtype=bool)
        assert closure_region(blocked, +1, (2, 2), (1, 1)) == 0

    def test_returns_newly_blocked_count(self):
        # A full +corner pocket: (3,3) fault with neighbors (3,4),(4,3)
        # faulty makes... use a 2x2 notch: faults at (0,1),(1,0) and
        # (1,1) leave (0,0) useless.
        blocked = np.zeros((2, 2), dtype=bool)
        blocked[0, 1] = blocked[1, 0] = blocked[1, 1] = True
        grown = closure_region(blocked, +1, (0, 0), (1, 1))
        assert grown == 1 and blocked[0, 0]


class TestIncrementalLabels:
    @settings(max_examples=60, deadline=None)
    @given(mask_strategy(), script_strategy(), st.integers(0, 3))
    def test_byte_identical_to_from_scratch(self, shape_mask, script, lazy_at):
        """Incremental labels == label_grid after every event, all classes."""
        shape, mask = shape_mask
        model = DynamicFaultModel(mask)
        orients = Orientation.all_classes(shape)
        # Instantiate one class up front; the rest join mid-sequence to
        # cover lazily built classes receiving later events.
        model.labelled_for(orients[0])
        epochs = [model.epoch]
        step = [0]

        def check(event, cells):
            epochs.append(event.epoch)
            if step[0] == lazy_at:
                for o in orients:
                    model.labelled_for(o)
            step[0] += 1
            for signs, cls in model._classes.items():
                o = Orientation(signs, shape)
                want = label_grid(model.fault_mask, o)
                assert np.array_equal(want.status, cls.status), (
                    f"class {signs} diverged at epoch {event.epoch}"
                )
                assert want.status.dtype == cls.status.dtype
                # label_count bookkeeping stays exact (it gates the
                # repair fast path).
                assert cls.label_count[+1] == int(
                    (cls.useless_blocked & ~cls.faults).sum()
                )
                assert cls.label_count[-1] == int(
                    (cls.cant_blocked & ~cls.faults).sum()
                )

        apply_script(model, script, on_event=check)
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)

    @settings(max_examples=25, deadline=None)
    @given(mask_strategy(), script_strategy())
    def test_full_recompute_fallback_agrees(self, shape_mask, script):
        """fraction=0 forces the fallback; results must not change."""
        shape, mask = shape_mask
        always_full = DynamicFaultModel(mask, full_recompute_fraction=0.0)
        for o in Orientation.all_classes(shape)[:2]:
            always_full.labelled_for(o)

        def check(event, cells):
            for signs, cls in always_full._classes.items():
                want = label_grid(
                    always_full.fault_mask, Orientation(signs, shape)
                )
                assert np.array_equal(want.status, cls.status)

        apply_script(always_full, script, on_event=check)

    def test_epoch_and_stats_accounting(self):
        model = DynamicFaultModel(np.zeros((4, 4), dtype=bool))
        model.labelled_for()
        e1 = model.inject([(1, 1), (2, 2)])
        e2 = model.repair([(1, 1)])
        assert (e1.epoch, e2.epoch) == (1, 2)
        assert model.epoch == 2
        assert model.stats["events"] == 2
        assert model.stats["injects"] == 1
        assert model.stats["repairs"] == 1
        assert model.fault_count() == 1

    def test_invalid_events_raise(self):
        model = DynamicFaultModel(np.zeros((4, 4), dtype=bool))
        model.inject([(1, 1)])
        with pytest.raises(ValueError):
            model.inject([(1, 1)])  # already faulty
        with pytest.raises(ValueError):
            model.repair([(0, 0)])  # healthy
        with pytest.raises(ValueError):
            model.inject([(9, 9)])  # outside mesh
        with pytest.raises(ValueError):
            model.inject([(0, 0), (0, 0)])  # duplicate
        with pytest.raises(ValueError):
            model.inject([])  # empty
        assert model.epoch == 1  # failed events do not advance the epoch

    def test_useless_cell_surviving_repair_stays_labelled(self):
        # Faults on all + neighbors of (0,0) in 2-D: (0,1) and (1,0);
        # (0,0) is USELESS.  Repairing (0,1) with (1,1) also faulty
        # keeps (0,1) itself SAFE but leaves labels consistent.
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 1] = mask[1, 0] = mask[1, 1] = True
        model = DynamicFaultModel(mask)
        labelled = model.labelled_for()
        assert labelled.status[0, 0] == 2  # USELESS
        model.repair([(0, 1)])
        want = label_grid(model.fault_mask)
        assert np.array_equal(want.status, model.labelled_for().status)


class TestOnlineRoutingService:
    @settings(max_examples=20, deadline=None)
    @given(
        mask_strategy(),
        script_strategy(),
        st.sampled_from(["mcc", "rfb", "oracle", "blind"]),
        st.randoms(use_true_random=False),
    )
    def test_parity_with_cold_service(self, shape_mask, script, mode, pyrng):
        """Warm caches + events + scoped invalidation == cold rebuild."""
        shape, mask = shape_mask
        online = OnlineRoutingService(mask.copy(), mode=mode, reach_cache_size=4)
        cells = [tuple(c) for c in np.ndindex(shape)]

        def pairs():
            return [
                (pyrng.choice(cells), pyrng.choice(cells)) for _ in range(10)
            ]

        def check(event, _cells):
            batch = pairs()
            got = online.route_batch(batch)
            cold = RoutingService(
                online.fault_mask.copy(), mode=mode, label_cache=False
            ).route_batch(batch)
            for g, c in zip(got, cold, strict=True):
                assert (g.delivered, g.path, g.feasible, g.stuck_at, g.reason) == (
                    c.delivered, c.path, c.feasible, c.stuck_at, c.reason
                )
                assert g.epoch == online.epoch
                assert c.epoch is None  # static services don't stamp

        check(None, None)  # warm the caches before the first event
        apply_script(online, script, on_event=check)

    def test_submit_flush_answers_at_submission_epoch(self):
        mask = np.zeros((5, 5), dtype=bool)
        online = OnlineRoutingService(mask)
        t1 = online.submit((0, 0), (4, 4))
        t2 = online.submit((4, 4), (0, 0))
        event = online.inject([(2, 2)])  # flushes the queue first
        t3 = online.submit((0, 0), (4, 4))
        flushed = online.flush()
        assert set(flushed) == {t3}
        done = online.take_completed()
        assert set(done) == {t1, t2, t3}
        assert done[t1].epoch == 0 and done[t2].epoch == 0
        assert done[t3].epoch == event.epoch == 1
        assert online.take_completed() == {}
        assert online.flush() == {}

    def test_route_is_stamped_and_live(self):
        mask = np.zeros((4, 4), dtype=bool)
        online = OnlineRoutingService(mask)
        before = online.route((0, 0), (3, 3))
        assert before.delivered and before.epoch == 0
        # Wall off the destination corner: (3,3) becomes unreachable.
        online.inject([(2, 3), (3, 2)])
        after = online.route((0, 0), (3, 3))
        assert not after.delivered and after.epoch == 1
        online.repair([(2, 3)])
        healed = online.route((0, 0), (3, 3))
        assert healed.delivered and healed.epoch == 2

    def test_rfb_mode_served_incrementally(self):
        # The baseline model now has a block-local incremental form:
        # mode "rfb" serves routing across events instead of raising.
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        online = OnlineRoutingService(mask, mode="rfb")
        assert online.route((0, 0), (4, 4)).delivered
        online.inject([(2, 3)])
        assert online.epoch == 1
        result = online.route((0, 0), (4, 4))
        assert result.epoch == 1

    def test_feasible_batch_tracks_events(self):
        mask = np.zeros((4, 4), dtype=bool)
        online = OnlineRoutingService(mask)
        batch = [((0, 0), (3, 3)), ((3, 0), (0, 3))]
        assert online.feasible_batch(batch).all()
        online.inject([(2, 3), (3, 2)])
        got = online.feasible_batch(batch)
        assert not got[0] and got[1]

    def test_scoped_invalidation_retains_disjoint_cones(self):
        # A reach mask floods [0, dest] only: a cached low destination
        # survives an injection at the high corner of the same class,
        # while the cached high destination (whose cone contains the
        # event) is dropped.
        mask = np.zeros((6, 6), dtype=bool)
        online = OnlineRoutingService(mask)
        online.route((0, 0), (2, 2))  # identity class, dest (2, 2)
        online.route((0, 0), (5, 5))  # identity class, dest (5, 5)
        evicted_before = online.router.evicted
        online.inject([(5, 5)])
        assert online.router.retained > 0
        assert online.router.evicted > evicted_before
        model = online.router._models[(1, 1)]
        assert (2, 2) in model._reach and (5, 5) not in model._reach
        # And correctness after partial retention:
        cold = RoutingService(online.fault_mask.copy(), label_cache=False)
        for pair in [((0, 0), (4, 4)), ((4, 4), (0, 0)), ((1, 0), (0, 5))]:
            g = online.route(*pair)
            c = cold.route(*pair)
            assert (g.delivered, g.path, g.reason) == (
                c.delivered, c.path, c.reason
            )


class TestDynamicClassInternals:
    def test_arrays_alias_router_models(self):
        mask = np.zeros((4, 4), dtype=bool)
        online = OnlineRoutingService(mask)
        online.route((0, 0), (3, 3))
        signs = (1, 1)
        cls = online.model._classes[signs]
        model = online.router._models[signs]
        assert model._blocked is cls.useless_blocked
        assert model._open is cls.open
        assert model.labelled.status is cls.status

    def test_dynamic_class_open_is_complement(self):
        rng = np.random.default_rng(3)
        mask = rng.random((5, 5)) < 0.25
        cls = _DynamicClass(Orientation.identity((5, 5)), mask)
        assert np.array_equal(cls.open, ~cls.useless_blocked)
        assert np.array_equal(cls.unsafe, cls.status != 0)
